//! The PSPACE-hardness machinery in action (paper Section 3, Figures 1–2):
//! encode the execution of a linear bounded automaton as the input of the LCL
//! `Π_{M_B}`, solve the problem with the O(B·T) algorithm of §3.3, then
//! corrupt one tape cell and watch the solver justify the corruption with an
//! `Error²` chain.
//!
//! Run with `cargo run --example lba_hardness`.

use lcl_paths::hardness::{solve_pi_mb, PiInput, PiMb, Secret};
use lcl_paths::lba::{machines, TapeSymbol};

fn render<T: std::fmt::Display>(items: &[T], limit: usize) -> String {
    let shown: Vec<String> = items.iter().take(limit).map(|x| x.to_string()).collect();
    let suffix = if items.len() > limit { " …" } else { "" };
    format!("{}{}", shown.join(" "), suffix)
}

fn main() {
    let tape_size = 5;
    let machine = machines::unary_counter();
    println!("machine: {machine}, tape size B = {tape_size}");
    let problem = PiMb::new(machine, tape_size);

    // Figure 1: a good input encoding the whole execution.
    let good = problem
        .good_input(Secret::A, 4)
        .expect("the unary counter halts");
    println!("good input ({} nodes = 1 + t·(B+1) + padding):", good.len());
    println!("  {}", render(&good, 26));

    let output = solve_pi_mb(&problem, &good);
    assert!(problem.is_valid(&good, &output));
    println!("solver output on the good input (everyone reveals the secret):");
    println!("  {}", render(&output, 26));

    // Figure 2: corrupt a copied tape cell in the second block.
    let mut corrupted = good.clone();
    let pos = 1 + (tape_size + 1) + 2; // a non-head cell of the second block
    if let PiInput::Tape {
        content,
        state,
        head,
    } = corrupted[pos]
    {
        let flipped = if content == TapeSymbol::Zero {
            TapeSymbol::One
        } else {
            TapeSymbol::Zero
        };
        corrupted[pos] = PiInput::Tape {
            content: flipped,
            state,
            head,
        };
    }
    println!("\ncorrupting the copied tape cell at position {pos} (Figure 2):");
    let output = solve_pi_mb(&problem, &corrupted);
    assert!(problem.is_valid(&corrupted, &output));
    println!("  {}", render(&output, 26));
    let chain: Vec<String> = output
        .iter()
        .enumerate()
        .filter(|(_, o)| o.error_family() == Some(2))
        .map(|(i, o)| format!("node {i}: {o}"))
        .collect();
    println!("the Error² chain proving the corruption:");
    for line in chain {
        println!("  {line}");
    }

    // Theorem 4 flavour: the binary counter's good input length grows like
    // 2^Θ(B), which is exactly the 2^Ω(β) constant of the theorem.
    println!("\nTheorem 4: good-input length of the binary counter vs tape size");
    for b in 3..=8usize {
        let p = PiMb::new(machines::binary_counter(), b);
        let len = p.good_input_length().expect("binary counter halts");
        println!("  B = {b}: T' = {len}");
    }
}
