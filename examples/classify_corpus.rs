//! Classify the whole problem corpus and compare the verdicts against the
//! known ground-truth complexities (the decidability result of Theorems 8–9
//! in action).
//!
//! Run with `cargo run --example classify_corpus`.

use lcl_paths::classifier::{classify, Complexity};
use lcl_paths::problems::{corpus, KnownComplexity};
use std::time::Instant;

fn agrees(expected: KnownComplexity, got: &Complexity) -> bool {
    matches!(
        (expected, got),
        (KnownComplexity::Unsolvable, Complexity::Unsolvable)
            | (KnownComplexity::Constant, Complexity::Constant)
            | (KnownComplexity::LogStar, Complexity::LogStar)
            | (KnownComplexity::Linear, Complexity::Linear)
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<22} {:>12} {:>12} {:>7} {:>9} {:>9}",
        "problem", "expected", "classified", "types", "pump", "time"
    );
    let mut all_agree = true;
    for entry in corpus() {
        let start = Instant::now();
        let verdict = classify(&entry.problem)?;
        let elapsed = start.elapsed();
        let ok = agrees(entry.expected, &verdict.complexity());
        all_agree &= ok;
        println!(
            "{:<22} {:>12} {:>12} {:>7} {:>9} {:>8.2?} {}",
            entry.problem.name(),
            format!("{:?}", entry.expected),
            verdict.complexity().to_string(),
            verdict.num_types(),
            verdict.pump_threshold(),
            elapsed,
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }
    println!();
    if all_agree {
        println!("every verdict matches the known complexity ✓");
    } else {
        println!("MISMATCHES FOUND — see above");
    }
    Ok(())
}
