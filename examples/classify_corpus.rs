//! Classify the whole problem corpus with one parallel `classify_many` batch
//! and compare the verdicts against the known ground-truth complexities (the
//! decidability result of Theorems 8–9 in action).
//!
//! Run with `cargo run --example classify_corpus`.

use lcl_paths::classifier::Complexity;
use lcl_paths::problems::{corpus, KnownComplexity};
use lcl_paths::Engine;
use std::time::Instant;

fn agrees(expected: KnownComplexity, got: &Complexity) -> bool {
    matches!(
        (expected, got),
        (KnownComplexity::Unsolvable, Complexity::Unsolvable)
            | (KnownComplexity::Constant, Complexity::Constant)
            | (KnownComplexity::LogStar, Complexity::LogStar)
            | (KnownComplexity::Linear, Complexity::Linear)
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    let entries = corpus();
    let problems: Vec<_> = entries.iter().map(|e| e.problem.clone()).collect();

    // One batch: the engine fans the corpus out over its worker threads and
    // returns verdicts in input order.
    let start = Instant::now();
    let verdicts = engine.classify_many(&problems);
    let batch_time = start.elapsed();

    println!(
        "{:<22} {:>12} {:>12} {:>7} {:>9}",
        "problem", "expected", "classified", "types", "pump"
    );
    let mut all_agree = true;
    for (entry, result) in entries.iter().zip(&verdicts) {
        let verdict = result.clone()?;
        let ok = agrees(entry.expected, &verdict.complexity());
        all_agree &= ok;
        println!(
            "{:<22} {:>12} {:>12} {:>7} {:>9} {}",
            entry.problem.name(),
            format!("{:?}", entry.expected),
            verdict.complexity().to_string(),
            verdict.num_types(),
            verdict.pump_threshold(),
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }

    let stats = engine.cache_stats();
    println!();
    println!(
        "classified {} problems in {batch_time:.2?} on {} threads ({} cache entries)",
        problems.len(),
        engine.parallelism(),
        stats.entries
    );

    // A second pass over the same corpus is pure cache hits.
    let before = engine.cache_stats();
    let start = Instant::now();
    let _ = engine.classify_many(&problems);
    let cached_time = start.elapsed();
    let after = engine.cache_stats();
    println!(
        "second pass in {cached_time:.2?} ({} hits / {} misses)",
        after.hits - before.hits,
        after.misses - before.misses
    );

    println!();
    if all_agree {
        println!("every verdict matches the known complexity ✓");
    } else {
        println!("MISMATCHES FOUND — see above");
    }
    Ok(())
}
