//! Start the NDJSON classification service in-process on a loopback port,
//! classify the whole corpus through the blocking client, and print the
//! verdicts plus the server's own statistics.
//!
//! ```sh
//! cargo run --example service_roundtrip
//! ```

use lcl_paths::problems::corpus;
use lcl_paths::Engine;
use lcl_server::{Client, Server, Service};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A 4-worker engine: the pool threads are spawned once, here.
    let service = Arc::new(Service::new(Engine::builder().parallelism(4).build()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0")?;
    let handle = server.start()?;
    println!("serving on {}\n", handle.addr());

    let mut client = Client::connect(handle.addr())?;

    // One classify_many request carries the whole corpus; verdicts come
    // back in input order.
    let specs: Vec<_> = corpus().iter().map(|e| e.problem.to_spec()).collect();
    for verdict in client.classify_many(&specs)? {
        match verdict {
            Ok(verdict) => println!("  {verdict}"),
            Err(error) => println!("  error: {error}"),
        }
    }

    // A second sweep, one problem per request — but pipelined: a window of
    // requests in flight on the one connection (0 = the default window),
    // replies in request order. All cache hits now.
    let outcomes = client.classify_many_pipelined(&specs, 0)?;
    assert!(outcomes.iter().all(Result::is_ok));

    let stats = client.stats()?;
    println!(
        "\nserver cache: {}",
        stats.require("cache")?.require("summary")?.as_str()?
    );
    println!(
        "server pool:  {}",
        stats.require("pool")?.require("summary")?.as_str()?
    );
    println!(
        "requests served: {}",
        stats
            .require("server")?
            .require("requests_served")?
            .as_int()?
    );

    drop(client);
    handle.shutdown();
    println!("\nserver shut down cleanly");
    Ok(())
}
