//! Quick start: define an LCL problem on labeled directed cycles, ask the
//! [`Engine`] for its distributed complexity, run the synthesized algorithm
//! end-to-end with `solve`, and ship the problem/verdict over the JSON wire
//! format.
//!
//! Run with `cargo run --example quickstart`.

use lcl_paths::problem::{Instance, NormalizedLcl, ProblemSpec, Topology};
use lcl_paths::{Engine, Error};

fn main() -> Result<(), Error> {
    // Proper 3-coloring of a directed cycle: the classic Θ(log* n) problem.
    let mut builder = NormalizedLcl::builder("3-coloring");
    builder.input_labels(&["x"]);
    builder.output_labels(&["1", "2", "3"]);
    builder.allow_all_node_pairs();
    for p in 0..3u16 {
        for q in 0..3u16 {
            if p != q {
                builder.allow_edge_idx(p, q);
            }
        }
    }
    let problem = builder.build()?;

    // The engine is the long-lived entry point: it memoizes the expensive
    // per-problem artifacts, so repeated and batched requests are cheap.
    let engine = Engine::new();

    // Ask the decision procedure (paper, Section 4) for the complexity class.
    let verdict = engine.verdict(&problem)?;
    println!("problem:        {problem}");
    println!("complexity:     {}", verdict.complexity);
    println!("path types:     {}", verdict.num_types);
    println!("pump threshold: {}", verdict.pump_threshold);
    println!("algorithm:      {}", verdict.algorithm);

    // classify → synthesize → execute, in one call: run the synthesized
    // algorithm on a 150-node cycle. The labeling comes back verified.
    let n = 150;
    let instance = Instance::from_indices(Topology::Cycle, &vec![0; n]);
    let solution = engine.solve(&problem, &instance)?;
    println!(
        "ran on a {n}-node cycle in {} rounds: output valid",
        solution.rounds()
    );
    let colors: Vec<u16> = solution
        .labeling()
        .outputs()
        .iter()
        .take(12)
        .map(|o| o.0 + 1)
        .collect();
    println!("first twelve colours: {colors:?} ...");

    // This classification was a cache hit: `solve` reused the verdict.
    let stats = engine.cache_stats();
    println!(
        "engine cache:   {} hits / {} misses",
        stats.hits, stats.misses
    );

    // The wire format: problems and verdicts serialize to versioned JSON, so
    // the engine can sit behind a service boundary.
    let request = problem.to_json_string();
    let parsed = ProblemSpec::from_json_str(&request)?.to_problem()?;
    let response = engine.verdict(&parsed)?.to_json_string();
    println!("wire request:   {} bytes of JSON", request.len());
    println!("wire response:  {response}");
    Ok(())
}
