//! Quick start: define an LCL problem on labeled directed cycles, ask the
//! classifier for its distributed complexity, and run the synthesized
//! algorithm in the LOCAL simulator.
//!
//! Run with `cargo run --example quickstart`.

use lcl_paths::classifier::classify;
use lcl_paths::problem::{Instance, NormalizedLcl, Topology};
use lcl_paths::sim::{IdAssignment, Network, SyncSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Proper 3-coloring of a directed cycle: the classic Θ(log* n) problem.
    let mut builder = NormalizedLcl::builder("3-coloring");
    builder.input_labels(&["x"]);
    builder.output_labels(&["1", "2", "3"]);
    builder.allow_all_node_pairs();
    for p in 0..3u16 {
        for q in 0..3u16 {
            if p != q {
                builder.allow_edge_idx(p, q);
            }
        }
    }
    let problem = builder.build()?;

    // Ask the decision procedure (paper, Section 4) for the complexity class.
    let verdict = classify(&problem)?;
    println!("problem:        {problem}");
    println!("complexity:     {}", verdict.complexity());
    println!("path types:     {}", verdict.num_types());
    println!("pump threshold: {}", verdict.pump_threshold());
    println!("algorithm:      {}", lcl_paths::sim::LocalAlgorithm::name(verdict.algorithm()));

    // Run the synthesized algorithm on a 150-node cycle and verify the output.
    let n = 150;
    let mut rng = StdRng::seed_from_u64(42);
    let network = Network::new(
        Instance::from_indices(Topology::Cycle, &vec![0; n]),
        IdAssignment::RandomFromSpace { multiplier: 8 },
        &mut rng,
    )?;
    let simulator = SyncSimulator::new();
    let labeling = simulator.run(&network, verdict.algorithm())?;
    let report = problem.check(network.instance(), &labeling);
    println!(
        "ran on a {n}-node cycle with radius {}: {}",
        lcl_paths::sim::LocalAlgorithm::radius(verdict.algorithm(), n),
        if report.is_valid() { "output valid" } else { "OUTPUT INVALID" }
    );
    let colors: Vec<u16> = labeling.outputs().iter().take(12).map(|o| o.0 + 1).collect();
    println!("first twelve colours: {colors:?} ...");
    Ok(())
}
