//! The complexity landscape on labeled cycles: classify three representative
//! problems (one per class), run their synthesized algorithms across a sweep
//! of network sizes, and print the locality (view radius) each one needs —
//! flat for `O(1)`, barely growing for `Θ(log* n)`, linear for `Θ(n)`.
//!
//! Run with `cargo run --release --example complexity_landscape`.

use lcl_paths::classifier::classify;
use lcl_paths::problem::{Instance, Topology};
use lcl_paths::problems;
use lcl_paths::sim::{IdAssignment, LocalAlgorithm, Network, SyncSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [64usize, 256, 1024, 4096, 16384];
    let suite = [
        problems::copy_input(),
        problems::coloring(3),
        problems::secret_broadcast(),
    ];
    println!(
        "{:<18} {:>12} radius at n = 64, 256, 1024, 4096, 16384",
        "problem", "class"
    );
    for problem in suite {
        let verdict = classify(&problem)?;
        let radii: Vec<usize> = sizes
            .iter()
            .map(|&n| verdict.algorithm().radius(n))
            .collect();
        println!(
            "{:<18} {:>12} {:?}",
            problem.name(),
            verdict.complexity().to_string(),
            radii
        );
    }

    // Also actually execute the Θ(log* n) algorithm once at a non-trivial size
    // to show the whole pipeline end to end.
    let problem = problems::coloring(3);
    let verdict = classify(&problem)?;
    let n = 512;
    let mut rng = StdRng::seed_from_u64(7);
    let network = Network::new(
        Instance::from_indices(Topology::Cycle, &vec![0; n]),
        IdAssignment::RandomFromSpace { multiplier: 8 },
        &mut rng,
    )?;
    let labeling = SyncSimulator::new().run(&network, verdict.algorithm())?;
    println!(
        "\nran {} on a {n}-node cycle: {}",
        verdict.algorithm().name(),
        if problem.is_valid(network.instance(), &labeling) {
            "valid 3-coloring"
        } else {
            "INVALID OUTPUT"
        }
    );
    Ok(())
}
