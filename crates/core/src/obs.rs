//! Dependency-free observability primitives: lock-free log-bucketed latency
//! histograms and a lock-free ring buffer of recent request traces.
//!
//! Built for `lcl-server`'s request path but deliberately generic — nothing
//! in here knows about protocols or sockets:
//!
//! * [`LatencyHistogram`] — an HDR-style histogram over `u64` microsecond
//!   values: power-of-two octaves split into [`SUB_BUCKETS`] linear
//!   sub-buckets each, so recording is two shifts and one relaxed
//!   `fetch_add`, memory is a fixed ~4 KiB of atomics, and any quantile can
//!   be estimated with bounded relative error (≤ 1/[`SUB_BUCKETS`], i.e.
//!   12.5%) from a [`HistogramSnapshot`]. Snapshots are mergeable, which is
//!   what makes per-shard or per-thread histograms aggregatable.
//! * [`TraceRing`] — a fixed-size lock-free ring of [`TraceRecord`]s (the
//!   per-stage timing of one finished request). Writers claim slots with one
//!   `fetch_add` and publish through a per-slot sequence counter (a seqlock
//!   flattened onto atomics — no `unsafe`, which this crate forbids);
//!   readers that race a writer simply skip the torn slot.
//!
//! Recording into either structure never blocks and never allocates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per power-of-two octave: values within one octave are
/// split into `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;

/// Linear sub-buckets per octave (`2^SUB_BITS`): bounds the histogram's
/// relative quantile error at `1 / SUB_BUCKETS` = 12.5%.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count: `SUB_BUCKETS` linear buckets for values below
/// [`SUB_BUCKETS`], then `SUB_BUCKETS` for each of the `64 - SUB_BITS`
/// octaves (msb `SUB_BITS..=63`) up to `u64::MAX`.
pub const BUCKETS: usize = SUB_BUCKETS + SUB_BUCKETS * (64 - SUB_BITS as usize);

/// The bucket a value lands in. Total order is preserved: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= SUB_BITS
    let octave = msb - SUB_BITS as usize;
    let sub = ((value >> octave) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// The smallest value that lands in bucket `index` (the inclusive lower
/// bound of the bucket's range).
pub fn bucket_lower(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let msb = octave + SUB_BITS as usize;
    (1u64 << msb) + (sub << octave)
}

/// The largest value that lands in bucket `index` (the inclusive upper
/// bound of the bucket's range). This is what a quantile estimate reports,
/// so estimates never understate the true value by more than one bucket.
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// A lock-free log-bucketed latency histogram over `u64` values
/// (conventionally microseconds).
///
/// [`LatencyHistogram::record`] is safe from any thread: every counter is a
/// relaxed atomic, so concurrent recorders never contend on more than a
/// cache line. Reads go through [`LatencyHistogram::snapshot`], which is a
/// point-in-time copy (not a consistent cut — counters recorded mid-copy may
/// or may not appear; for quiesced states the snapshot is exact).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free, allocation-free, any thread.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = Box::new([0u64; BUCKETS]);
        for (slot, counter) in counts.iter_mut().zip(self.counts.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]: mergeable, and the basis
/// for quantile estimation and text exposition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    counts: Box<[u64; BUCKETS]>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` — the merge of two histograms is exactly
    /// the histogram of the union of their observations (buckets align
    /// because the layout is global).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) as the **upper bound**
    /// of the bucket holding the `ceil(q * count)`-th smallest observation,
    /// so the estimate never understates the true value by more than one
    /// bucket width (≤ 12.5% relative error above [`SUB_BUCKETS`]). Returns
    /// 0 for an empty histogram; `q = 0` reports the first nonempty bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // The max is a tighter bound than the top bucket's ceiling.
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts paired with their inclusive upper bounds, for
    /// nonempty buckets only — the shape a text exposition wants.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (bucket_upper(index), count))
    }
}

/// Number of `u64` words one [`TraceRecord`] flattens into inside the ring.
const TRACE_WORDS: usize = 10;

/// Request kinds a [`TraceRecord`] can carry: an opaque small integer the
/// embedder maps to its own kind enum (`lcl-server` uses the protocol
/// order, with [`TraceRecord::KIND_INVALID`] for unparseable frames).
pub type TraceKind = u8;

/// The per-stage timing of one finished request, as stored in a
/// [`TraceRing`] and emitted on a slow-trace log line.
///
/// Stage durations are microseconds and **disjoint**: `queue` is the wait
/// between dispatch and a pool worker picking the job up, `parse` /
/// `compute` / `serialize` are the worker's phases, and `write` is the time
/// from the serialized reply being ready to its last byte leaving for the
/// socket. `total` is measured independently end-to-end, so it may exceed
/// the stage sum by scheduling gaps between stages.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Request id echoed on the wire (`None` when unsalvageable).
    pub id: Option<i64>,
    /// Embedder-defined request kind ([`TraceRecord::KIND_INVALID`] for
    /// frames that never resolved to one).
    pub kind: TraceKind,
    /// Whether the request produced an ok reply.
    pub ok: bool,
    /// Canonical hash of the problem the request touched, when it had one.
    pub problem_hash: Option<u64>,
    /// Whether the classification was served from the memo cache (`None`
    /// when the request never consulted it).
    pub cache_hit: Option<bool>,
    /// Pool-queue wait, in microseconds.
    pub queue_micros: u64,
    /// Frame parse time, in microseconds.
    pub parse_micros: u64,
    /// Execution time, in microseconds.
    pub compute_micros: u64,
    /// Reply serialization time, in microseconds.
    pub serialize_micros: u64,
    /// Reply write/flush time, in microseconds.
    pub write_micros: u64,
    /// End-to-end latency (frame read to reply written), in microseconds.
    pub total_micros: u64,
}

impl Default for TraceRecord {
    /// An empty record of kind [`TraceRecord::KIND_INVALID`] — the kind of
    /// a frame that never resolved to one, not kind index 0.
    fn default() -> TraceRecord {
        TraceRecord {
            id: None,
            kind: TraceRecord::KIND_INVALID,
            ok: false,
            problem_hash: None,
            cache_hit: None,
            queue_micros: 0,
            parse_micros: 0,
            compute_micros: 0,
            serialize_micros: 0,
            write_micros: 0,
            total_micros: 0,
        }
    }
}

impl TraceRecord {
    /// The [`TraceRecord::kind`] of a frame that never resolved to a
    /// request kind.
    pub const KIND_INVALID: TraceKind = u8::MAX;

    fn encode(&self) -> [u64; TRACE_WORDS] {
        let flags = u64::from(self.ok)
            | (u64::from(self.id.is_some()) << 1)
            | (u64::from(self.problem_hash.is_some()) << 2)
            | (u64::from(self.cache_hit.is_some()) << 3)
            | (u64::from(self.cache_hit.unwrap_or(false)) << 4)
            | (u64::from(self.kind) << 8);
        [
            flags,
            self.id.unwrap_or(0) as u64,
            self.problem_hash.unwrap_or(0),
            self.queue_micros,
            self.parse_micros,
            self.compute_micros,
            self.serialize_micros,
            self.write_micros,
            self.total_micros,
            0,
        ]
    }

    fn decode(words: &[u64; TRACE_WORDS]) -> TraceRecord {
        let flags = words[0];
        TraceRecord {
            id: (flags & 2 != 0).then_some(words[1] as i64),
            kind: ((flags >> 8) & 0xff) as TraceKind,
            ok: flags & 1 != 0,
            problem_hash: (flags & 4 != 0).then_some(words[2]),
            cache_hit: (flags & 8 != 0).then_some(flags & 16 != 0),
            queue_micros: words[3],
            parse_micros: words[4],
            compute_micros: words[5],
            serialize_micros: words[6],
            write_micros: words[7],
            total_micros: words[8],
        }
    }
}

/// One ring slot: a per-slot sequence counter (odd = a writer is mid-store)
/// plus the record flattened into relaxed atomics. A flattened seqlock —
/// readers detect torn reads by re-checking the sequence, writers never
/// wait.
#[derive(Debug)]
struct TraceSlot {
    seq: AtomicU64,
    words: [AtomicU64; TRACE_WORDS],
}

/// A fixed-size lock-free ring buffer of the most recent [`TraceRecord`]s.
///
/// [`TraceRing::push`] claims a slot with one `fetch_add` and overwrites the
/// oldest record; [`TraceRing::recent`] returns the still-readable records,
/// oldest first, skipping any slot a concurrent writer holds. Pushing is
/// wait-free and allocation-free — suitable for a request hot path.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<TraceSlot>,
    next: AtomicU64,
}

impl TraceRing {
    /// A ring holding the `capacity` (at least 1) most recent records.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1))
                .map(|_| TraceSlot {
                    seq: AtomicU64::new(0),
                    words: [0u64; TRACE_WORDS].map(AtomicU64::new),
                })
                .collect(),
            next: AtomicU64::new(0),
        }
    }

    /// How many records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records pushed since construction (≥ retained records).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Stores one record, overwriting the oldest.
    pub fn push(&self, record: &TraceRecord) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Odd sequence marks the slot as mid-write; Release on the final
        // even store publishes the words to readers' Acquire loads.
        let seq = slot.seq.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(seq % 2, 0, "slot writers are serialized by tickets");
        for (word, value) in slot.words.iter().zip(record.encode()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// The retained records, oldest first. Slots a concurrent writer is
    /// mid-overwrite in are skipped rather than read torn.
    pub fn recent(&self) -> Vec<TraceRecord> {
        let end = self.next.load(Ordering::Acquire);
        let len = self.slots.len() as u64;
        let start = end.saturating_sub(len);
        let mut out = Vec::with_capacity((end - start) as usize);
        for ticket in start..end {
            let slot = &self.slots[(ticket % len) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if !before.is_multiple_of(2) {
                continue; // mid-write
            }
            let mut words = [0u64; TRACE_WORDS];
            for (value, word) in words.iter_mut().zip(slot.words.iter()) {
                *value = word.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(TraceRecord::decode(&words));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_inverts() {
        let mut previous = None;
        for &value in &[
            0u64,
            1,
            2,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "{value} → {index}");
            assert!(
                bucket_lower(index) <= value && value <= bucket_upper(index),
                "{value} outside bucket {index}: [{}, {}]",
                bucket_lower(index),
                bucket_upper(index)
            );
            if let Some(prev) = previous {
                assert!(index >= prev, "bucket order broke at {value}");
            }
            previous = Some(index);
        }
        // Exhaustive inversion over the linear region and octave starts.
        for index in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(index)), index);
            assert_eq!(bucket_index(bucket_upper(index)), index);
        }
    }

    /// Seeded xorshift so the distribution test is deterministic.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn quantiles_match_a_reference_sorted_vector_within_one_bucket() {
        let histogram = LatencyHistogram::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        // A long-tailed mix: mostly small, some mid, occasional huge.
        for i in 0..10_000u64 {
            let r = xorshift(&mut state);
            let value = match r % 100 {
                0..=79 => r % 200,
                80..=97 => 1_000 + r % 50_000,
                _ => 1_000_000 + r % 10_000_000,
            } + i % 3;
            histogram.record(value);
            reference.push(value);
        }
        reference.sort_unstable();
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, reference.len() as u64);
        assert_eq!(snapshot.sum, reference.iter().sum::<u64>());
        assert_eq!(snapshot.max, *reference.last().unwrap());
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * reference.len() as f64).ceil() as usize).clamp(1, reference.len());
            let exact = reference[rank - 1];
            let estimate = snapshot.quantile(q);
            let exact_bucket = bucket_index(exact);
            let estimate_bucket = bucket_index(estimate);
            assert!(
                estimate_bucket.abs_diff(exact_bucket) <= 1,
                "q={q}: estimate {estimate} (bucket {estimate_bucket}) vs exact {exact} \
                 (bucket {exact_bucket})"
            );
            assert!(
                estimate >= bucket_lower(exact_bucket),
                "q={q}: estimate {estimate} understates exact {exact} by over a bucket"
            );
        }
    }

    #[test]
    fn merged_snapshots_equal_the_union_histogram() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        let mut state = 42u64;
        for i in 0..2_000u64 {
            let value = xorshift(&mut state) % 1_000_000;
            if i % 2 == 0 { &a } else { &b }.record(value);
            union.record(value);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        assert_eq!(merged.mean(), union.snapshot().mean());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snapshot = LatencyHistogram::new().snapshot();
        assert_eq!(snapshot.count, 0);
        assert_eq!(snapshot.quantile(0.5), 0);
        assert_eq!(snapshot.mean(), 0);
        assert_eq!(snapshot.nonzero_buckets().count(), 0);
    }

    #[test]
    fn trace_records_round_trip_through_the_ring() {
        let ring = TraceRing::new(4);
        let record = TraceRecord {
            id: Some(-7),
            kind: 3,
            ok: true,
            problem_hash: Some(0xdead_beef_cafe_f00d),
            cache_hit: Some(true),
            queue_micros: 10,
            parse_micros: 20,
            compute_micros: 30,
            serialize_micros: 40,
            write_micros: 50,
            total_micros: 160,
        };
        ring.push(&record);
        assert_eq!(ring.recent(), vec![record]);

        // Overflow keeps only the newest `capacity` records, oldest first.
        for i in 0..10i64 {
            ring.push(&TraceRecord {
                id: Some(i),
                kind: TraceRecord::KIND_INVALID,
                ..TraceRecord::default()
            });
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(
            recent.iter().map(|r| r.id.unwrap()).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.pushed(), 11);
        assert_eq!(ring.capacity(), 4);

        // None-valued fields survive the flattening.
        let bare = TraceRecord::default();
        ring.push(&bare);
        assert_eq!(*ring.recent().last().unwrap(), bare);
    }

    #[test]
    fn concurrent_pushes_never_tear_reads() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(8));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        // Every field derived from one seed: a torn read
                        // would produce an inconsistent tuple.
                        let seed = t * 1_000 + i;
                        ring.push(&TraceRecord {
                            id: Some(seed as i64),
                            kind: (seed % 7) as TraceKind,
                            ok: true,
                            problem_hash: Some(seed * 31),
                            cache_hit: Some(seed % 2 == 0),
                            queue_micros: seed,
                            parse_micros: seed + 1,
                            compute_micros: seed + 2,
                            serialize_micros: seed + 3,
                            write_micros: seed + 4,
                            total_micros: seed * 5 + 10,
                        });
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for record in ring.recent() {
                let seed = record.queue_micros;
                assert_eq!(record.id, Some(seed as i64));
                assert_eq!(record.kind, (seed % 7) as TraceKind);
                assert_eq!(record.problem_hash, Some(seed * 31));
                assert_eq!(record.cache_hit, Some(seed % 2 == 0));
                assert_eq!(record.parse_micros, seed + 1);
                assert_eq!(record.write_micros, seed + 4);
                assert_eq!(record.total_micros, seed * 5 + 10);
            }
        }
        for writer in writers {
            writer.join().unwrap();
        }
        assert_eq!(ring.pushed(), 2_000);
    }
}
