//! Warm-cache snapshot/restore: the memo cache's persistence format.
//!
//! A snapshot is a versioned, checksummed JSON-lines document capturing the
//! *classifications* resident in an [`Engine`](crate::Engine)'s memo cache —
//! key bytes plus verdict fields, deliberately **not** the volatile
//! reply-bytes lane (payloads re-attach lazily on the first post-restore
//! splice) and not the synthesized feasible structure (restored entries run
//! the always-correct gather-everything stand-in, see
//! [`RestoredAlgorithm`]).
//!
//! Layout, one JSON object per line:
//!
//! ```text
//! {"entries":N,"format":"lcl-cache-snapshot","version":1}   header
//! {"algorithm":…,"complexity":…,"key":"<hex>",…}            N entry lines
//! {"checksum":"<16 hex digits>"}                            trailer
//! ```
//!
//! The trailer is the FNV-1a 64-bit digest of every preceding byte
//! (newlines included), so truncation, bit rot and concatenation are all
//! detected before any entry is trusted. Restore is deliberately forgiving
//! *per entry* — an entry that fails to decode is skipped and counted, never
//! fatal — but strict about the envelope: a bad header, version skew or a
//! checksum mismatch rejects the whole document, because a file that fails
//! its own framing cannot be partially trusted.
//!
//! Entries are written coldest-first per shard
//! ([`ShardedLruCache::snapshot_entries`](crate::ShardedLruCache::snapshot_entries)),
//! and restore re-inserts them in file order through the cache's ordinary
//! insert path: LRU recency is reproduced, a smaller restore target keeps
//! the hottest entries, and every shard-stats invariant
//! (`entries + evictions == inserts`) holds afterwards because no counter is
//! ever written directly.

use crate::engine::CacheEntry;
use crate::synthesis::{RestoredAlgorithm, SynthesizedAlgorithm};
use crate::verdict::{Classification, Complexity};
use crate::Result;
use lcl_local_sim::LocalAlgorithm;
use lcl_problem::json::JsonValue;
use lcl_problem::{Instance, NormalizedLcl, ProblemError};
use std::fmt::{self, Write as _};
use std::sync::Arc;

/// The `format` discriminator every snapshot header carries.
pub const SNAPSHOT_FORMAT: &str = "lcl-cache-snapshot";

/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: i64 = 1;

/// The outcome of [`Engine::restore_snapshot`](crate::Engine::restore_snapshot):
/// how many entries the document declared, how many were installed, and how
/// many were skipped because they failed to decode (first failure retained
/// for logging).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Entry count the header declared.
    pub entries: usize,
    /// Entries decoded, validated and inserted into the cache.
    pub restored: usize,
    /// Entries skipped because they failed to decode or validate.
    pub skipped: usize,
    /// The first per-entry failure, for the operator's log line.
    pub first_error: Option<String>,
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restored {}/{} snapshot entries ({} skipped)",
            self.restored, self.entries, self.skipped
        )
    }
}

/// FNV-1a 64-bit, the same digest [`NormalizedLcl::canonical_hash`] uses —
/// dependency-free and deterministic across processes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        let _ = write!(out, "{byte:02x}");
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    text.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

fn wire(what: String) -> crate::ClassifierError {
    crate::ClassifierError::Problem(ProblemError::Wire { what })
}

/// Serializes cache entries (as returned by
/// [`ShardedLruCache::snapshot_entries`](crate::ShardedLruCache::snapshot_entries))
/// into a snapshot document.
pub(crate) fn serialize_entries(entries: &[(Arc<[u8]>, Arc<CacheEntry>)]) -> String {
    let mut out = String::new();
    JsonValue::object([
        ("entries", JsonValue::Int(entries.len() as i64)),
        ("format", JsonValue::Str(SNAPSHOT_FORMAT.to_string())),
        ("version", JsonValue::Int(SNAPSHOT_VERSION)),
    ])
    .write_json_string(&mut out);
    out.push('\n');
    for (key, entry) in entries {
        let classification = entry.classification();
        JsonValue::object([
            (
                "algorithm",
                JsonValue::Str(classification.algorithm().name().to_string()),
            ),
            (
                "complexity",
                JsonValue::Str(classification.complexity().wire_name().to_string()),
            ),
            ("key", JsonValue::Str(hex_encode(key))),
            (
                "num_types",
                JsonValue::Int(classification.num_types() as i64),
            ),
            (
                "pump_threshold",
                JsonValue::Int(classification.pump_threshold() as i64),
            ),
            (
                "witness",
                match classification.unsolvability_witness() {
                    Some(instance) => instance.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
        .write_json_string(&mut out);
        out.push('\n');
    }
    let checksum = fnv1a(out.as_bytes());
    JsonValue::object([("checksum", JsonValue::Str(format!("{checksum:016x}")))])
        .write_json_string(&mut out);
    out.push('\n');
    out
}

/// Decodes one entry line back into a `(key, entry)` pair ready for cache
/// insertion.
fn decode_entry(line: &str) -> Result<(Vec<u8>, CacheEntry)> {
    let value = JsonValue::parse(line).map_err(|e| wire(e.to_string()))?;
    let json_err = |e: lcl_problem::json::JsonError| wire(e.to_string());
    let key_hex = value
        .require("key")
        .and_then(JsonValue::as_str)
        .map_err(json_err)?;
    let key =
        hex_decode(key_hex).ok_or_else(|| wire(format!("invalid snapshot key `{key_hex}`")))?;
    // The structural key is self-describing: rebuilding the problem (and
    // re-encoding inside `from_structural_key`) validates every bit of it.
    let problem = NormalizedLcl::from_structural_key(&key).map_err(crate::ClassifierError::from)?;
    let complexity_name = value
        .require("complexity")
        .and_then(JsonValue::as_str)
        .map_err(json_err)?;
    let complexity = Complexity::from_wire_name(complexity_name)
        .ok_or_else(|| wire(format!("unknown complexity `{complexity_name}`")))?;
    let count = |field: &str| -> Result<usize> {
        let v = value
            .require(field)
            .and_then(JsonValue::as_int)
            .map_err(json_err)?;
        usize::try_from(v)
            .map_err(|_| wire(format!("field `{field}` must be non-negative, got {v}")))
    };
    let num_types = count("num_types")?;
    let pump_threshold = count("pump_threshold")?;
    let algorithm = value
        .require("algorithm")
        .and_then(JsonValue::as_str)
        .map_err(json_err)?;
    let witness = match value.require("witness").map_err(json_err)? {
        JsonValue::Null => None,
        instance => Some(Instance::from_json(instance)?),
    };
    let classification = Classification {
        complexity,
        witness,
        synthesized: SynthesizedAlgorithm::Restored(RestoredAlgorithm::new(&problem, algorithm)),
        num_types,
        pump_threshold,
    };
    Ok((key, CacheEntry::new(Arc::new(classification))))
}

/// Parses and validates `document`, handing each successfully decoded entry
/// to `install` in file order (coldest first, see the module docs).
///
/// # Errors
///
/// Returns a wire-format error when the document's *envelope* is invalid:
/// missing or malformed header, wrong format discriminator, unsupported
/// version, entry-count mismatch, or a missing/mismatching checksum trailer.
/// Per-entry decode failures are never errors — they are counted in the
/// returned report.
pub(crate) fn restore_entries(
    document: &str,
    mut install: impl FnMut(Vec<u8>, CacheEntry),
) -> Result<RestoreReport> {
    // Find the trailer: the last non-empty line.
    let trimmed = document.trim_end_matches('\n');
    if trimmed.is_empty() {
        return Err(wire("empty snapshot document".to_string()));
    }
    let (body, trailer_line) = match trimmed.rfind('\n') {
        Some(split) => (&trimmed[..split + 1], &trimmed[split + 1..]),
        None => {
            return Err(wire(
                "snapshot document has no checksum trailer".to_string(),
            ))
        }
    };
    let trailer = JsonValue::parse(trailer_line)
        .map_err(|e| wire(format!("invalid snapshot trailer: {e}")))?;
    let declared = trailer
        .require("checksum")
        .and_then(JsonValue::as_str)
        .map_err(|e| wire(format!("invalid snapshot trailer: {e}")))?;
    let actual = format!("{:016x}", fnv1a(body.as_bytes()));
    if declared != actual {
        return Err(wire(format!(
            "snapshot checksum mismatch: declared {declared}, computed {actual}"
        )));
    }
    let mut lines = body.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| wire("snapshot document has no header".to_string()))?;
    let header =
        JsonValue::parse(header_line).map_err(|e| wire(format!("invalid snapshot header: {e}")))?;
    let header_err =
        |e: lcl_problem::json::JsonError| wire(format!("invalid snapshot header: {e}"));
    let format = header
        .require("format")
        .and_then(JsonValue::as_str)
        .map_err(header_err)?;
    if format != SNAPSHOT_FORMAT {
        return Err(wire(format!("not a cache snapshot (format `{format}`)")));
    }
    let version = header
        .require("version")
        .and_then(JsonValue::as_int)
        .map_err(header_err)?;
    if version != SNAPSHOT_VERSION {
        return Err(wire(format!(
            "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
        )));
    }
    let entries = header
        .require("entries")
        .and_then(JsonValue::as_int)
        .map_err(header_err)
        .and_then(|v| {
            usize::try_from(v).map_err(|_| wire(format!("invalid snapshot entry count {v}")))
        })?;
    let mut report = RestoreReport {
        entries,
        ..RestoreReport::default()
    };
    let mut seen = 0usize;
    for line in lines {
        seen += 1;
        match decode_entry(line) {
            Ok((key, entry)) => {
                install(key, entry);
                report.restored += 1;
            }
            Err(e) => {
                report.skipped += 1;
                report.first_error.get_or_insert_with(|| e.to_string());
            }
        }
    }
    if seen != entries {
        return Err(wire(format!(
            "snapshot declares {entries} entries but carries {seen}"
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use lcl_problem::NormalizedLcl;

    fn coloring(k: u16) -> NormalizedLcl {
        let mut b = NormalizedLcl::builder(format!("{k}-coloring"));
        b.input_labels(&["x"]);
        let names: Vec<String> = (1..=k).map(|i| i.to_string()).collect();
        b.output_labels(&names);
        b.allow_all_node_pairs();
        for p in 0..k {
            for q in 0..k {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn snapshot_roundtrips_verdicts_byte_identically() {
        let engine = Engine::builder().parallelism(1).build();
        let problems = [coloring(2), coloring(3), coloring(4)];
        let originals: Vec<String> = problems
            .iter()
            .map(|p| engine.verdict(p).unwrap().to_json_string())
            .collect();

        let document = engine.snapshot_document();
        let fresh = Engine::builder().parallelism(1).build();
        let report = fresh.restore_snapshot(&document).unwrap();
        assert_eq!((report.entries, report.restored, report.skipped), (3, 3, 0));
        assert_eq!(report.first_error, None);
        assert_eq!(
            report.to_string(),
            "restored 3/3 snapshot entries (0 skipped)"
        );

        // Every verdict is served from the restored cache — no misses — and
        // serializes byte-identically to the original engine's.
        for (problem, original) in problems.iter().zip(&originals) {
            let verdict = fresh.verdict(problem).unwrap().to_json_string();
            assert_eq!(&verdict, original);
        }
        let stats = fresh.cache_stats();
        assert_eq!(stats.misses, 0, "all verdicts came from the snapshot");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.entries as u64 + stats.evictions, stats.inserts);
        for shard in fresh.cache_shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
    }

    #[test]
    fn restored_entries_still_solve() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = coloring(3);
        engine.classify(&problem).unwrap();
        let fresh = Engine::builder().parallelism(1).build();
        fresh.restore_snapshot(&engine.snapshot_document()).unwrap();
        let instance = lcl_problem::Instance::from_indices(lcl_problem::Topology::Cycle, &[0; 20]);
        let solution = fresh.solve(&problem, &instance).unwrap();
        assert!(problem.is_valid(&instance, solution.labeling()));
        // The restored algorithm keeps the snapshotted name but gathers.
        assert_eq!(
            solution.classification().algorithm().name(),
            "synthesized-log-star"
        );
        assert_eq!(solution.rounds(), 20, "gather stand-in uses radius n");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let engine = Engine::builder().parallelism(1).build();
        let document = engine.snapshot_document();
        let report = engine.restore_snapshot(&document).unwrap();
        assert_eq!(report, RestoreReport::default());
    }

    #[test]
    fn corrupt_documents_are_rejected_without_panicking() {
        let engine = Engine::builder().parallelism(1).build();
        engine.classify(&coloring(3)).unwrap();
        let document = engine.snapshot_document();
        let target = || Engine::builder().parallelism(1).build();

        // Envelope failures: whole document rejected.
        assert!(target().restore_snapshot("").is_err());
        assert!(target().restore_snapshot("\n\n").is_err());
        assert!(target().restore_snapshot("not json\n").is_err());
        let truncated = &document[..document.len() / 2];
        assert!(target().restore_snapshot(truncated).is_err(), "truncation");
        let mut flipped = document.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] = if flipped[mid] == b'a' { b'b' } else { b'a' };
        let flipped = String::from_utf8(flipped).unwrap();
        assert!(target().restore_snapshot(&flipped).is_err(), "bit rot");
        let skewed = reframe(&document, |header| {
            header.replace("\"version\":1", "\"version\":2")
        });
        let err = target().restore_snapshot(&skewed).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        let wrong_format = reframe(&document, |header| {
            header.replace(SNAPSHOT_FORMAT, "something-else")
        });
        assert!(target().restore_snapshot(&wrong_format).is_err());
        let wrong_count = reframe(&document, |header| {
            header.replace("\"entries\":1", "\"entries\":7")
        });
        assert!(target().restore_snapshot(&wrong_count).is_err());

        // Per-entry failures: skipped, counted, never fatal.
        let bad_entry = reframe(&document, |body| {
            body.replacen("{\"algorithm\"", "{\"zzz\":1,\"algorithm\"", 1)
        });
        let report = target().restore_snapshot(&bad_entry).unwrap();
        // The mangled line still parses as JSON with all fields — craft a
        // harder corruption: an entry whose key is not a structural key.
        assert_eq!(report.restored + report.skipped, 1);
        let bad_key = reframe(&document, |body| {
            let start = body.find("\"key\":\"").unwrap() + 7;
            let mut out = body.to_string();
            out.replace_range(start..start + 8, "00000000");
            out
        });
        let report = target().restore_snapshot(&bad_key).unwrap();
        assert_eq!((report.restored, report.skipped), (0, 1));
        assert!(report.first_error.is_some());
    }

    /// Applies `mutate` to the checksummed body and re-seals the trailer, so
    /// envelope tests hit the intended validation instead of the checksum.
    fn reframe(document: &str, mutate: impl FnOnce(&str) -> String) -> String {
        let split = document.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        let mut body = mutate(&document[..split]);
        let checksum = fnv1a(body.as_bytes());
        body.push_str(&format!("{{\"checksum\":\"{checksum:016x}\"}}\n"));
        body
    }
}
