//! The top-level decision procedure: Theorem 8 + Theorem 9 combined.

use crate::feasibility::find_feasible;
use crate::synthesis::{ConstantAlgorithm, LogStarAlgorithm, SynthesizedAlgorithm};
use crate::types_info::GapTypes;
use crate::verdict::{Classification, Complexity};
use crate::Result;
use lcl_algorithms::GatherAndSolve;
use lcl_problem::{InLabel, Instance, NormalizedLcl};
use lcl_semigroup::primitive_strings_up_to;

/// Tunable limits of the decision procedure. The defaults are ample for every
/// problem in the repository's corpus; the budgets exist so that a
/// pathologically large problem fails loudly instead of running forever.
#[derive(Clone, Debug)]
pub struct ClassifierOptions {
    /// Maximum number of types (transfer relations) to enumerate.
    pub type_budget: usize,
    /// Maximum number of backtracking nodes in the feasibility search.
    pub search_budget: usize,
    /// Maximum primitive-pattern length `κ` used for the `O(1)` conditions
    /// (the effective `κ` is the minimum of this cap and the computed pumping
    /// threshold).
    pub pattern_length_cap: usize,
}

impl Default for ClassifierOptions {
    fn default() -> Self {
        ClassifierOptions {
            type_budget: 200_000,
            search_budget: 5_000_000,
            pattern_length_cap: 3,
        }
    }
}

/// Returns the canonical (lexicographically least rotation) primitive words
/// over an alphabet of `alpha` letters, up to length `max_len`.
fn canonical_patterns(alpha: usize, max_len: usize) -> Vec<Vec<InLabel>> {
    primitive_strings_up_to(alpha, max_len)
        .into_iter()
        .filter(|w| {
            (1..w.len()).all(|s| {
                let rot: Vec<InLabel> = (0..w.len()).map(|i| w[(i + s) % w.len()]).collect();
                rot >= *w
            })
        })
        .collect()
}

/// Classifies a problem with default options.
///
/// This is a thin wrapper over the process-wide default [`crate::Engine`]:
/// repeated classifications of structurally identical problems are served
/// from its memo cache. Long-lived services should construct their own
/// engine (see [`crate::EngineBuilder`]) to control options and observe
/// cache statistics.
///
/// # Errors
///
/// See [`classify_with_options`].
pub fn classify(problem: &NormalizedLcl) -> Result<Classification> {
    crate::engine::default_engine()
        .classify(problem)
        .map(|classification| (*classification).clone())
}

/// Classifies an LCL problem on input-labeled directed cycles into
/// `Unsolvable`, `O(1)`, `Θ(log* n)` or `Θ(n)`, and synthesizes an
/// asymptotically optimal LOCAL algorithm for the verdict.
///
/// Path problems are handled by first applying
/// [`lcl_problem::lift_path_to_cycle`]; see the crate documentation.
///
/// # Errors
///
/// Returns an error if the type semigroup or the feasibility search exceeds
/// the configured budgets, or if the problem exceeds structural limits
/// (more than 64 output labels).
pub fn classify_with_options(
    problem: &NormalizedLcl,
    options: &ClassifierOptions,
) -> Result<Classification> {
    let info = GapTypes::compute(problem, options.type_budget)?;
    let num_types = info.semigroup().len();
    let pump_threshold = info.semigroup().pump_threshold();

    // Step 1: solvability (a prerequisite the paper assumes implicitly).
    if let Some(word) = info.solvability_witness()? {
        return Ok(Classification {
            complexity: Complexity::Unsolvable,
            witness: Some(Instance::cycle(word)),
            synthesized: SynthesizedAlgorithm::GatherAll(GatherAndSolve::new(problem)),
            num_types,
            pump_threshold,
        });
    }

    // Step 2: the ω(1) — o(log* n) gap (Theorem 9): the feasible structure
    // must additionally provide periodic labelings for every short primitive
    // input pattern.
    let kappa = pump_threshold.min(options.pattern_length_cap).max(1);
    let patterns = canonical_patterns(problem.num_inputs(), kappa);
    if let Some(structure) = find_feasible(&info, &patterns, options.search_budget)? {
        let algorithm = ConstantAlgorithm::new(&info, structure, kappa);
        return Ok(Classification {
            complexity: Complexity::Constant,
            witness: None,
            synthesized: SynthesizedAlgorithm::Constant(algorithm),
            num_types,
            pump_threshold,
        });
    }

    // Step 3: the ω(log* n) — o(n) gap (Theorem 8).
    if let Some(structure) = find_feasible(&info, &[], options.search_budget)? {
        let algorithm = LogStarAlgorithm::new(&info, structure);
        return Ok(Classification {
            complexity: Complexity::LogStar,
            witness: None,
            synthesized: SynthesizedAlgorithm::LogStar(algorithm),
            num_types,
            pump_threshold,
        });
    }

    // Step 4: no feasible function — the problem needs Θ(n).
    Ok(Classification {
        complexity: Complexity::Linear,
        witness: None,
        synthesized: SynthesizedAlgorithm::GatherAll(GatherAndSolve::new(problem)),
        num_types,
        pump_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local_sim::{validate_algorithm, IdAssignment, Network};
    use lcl_problem::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(name: &str, inputs: &[&str], outputs: &[&str]) -> lcl_problem::NormalizedLclBuilder {
        let mut b = NormalizedLcl::builder(name);
        b.input_labels(inputs);
        b.output_labels(outputs);
        b
    }

    fn three_coloring() -> NormalizedLcl {
        let mut b = build("3-coloring", &["x"], &["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn two_coloring() -> NormalizedLcl {
        let mut b = build("2-coloring", &["x"], &["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    fn copy_input() -> NormalizedLcl {
        let mut b = build("copy-input", &["a", "b"], &["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    fn secret_broadcast() -> NormalizedLcl {
        let mut b = build(
            "secret-broadcast",
            &["Sa", "Sb", "c"],
            &["a", "b", "X", "a*", "b*"],
        );
        b.allow_node("Sa", "a*");
        b.allow_node("Sb", "b*");
        b.allow_node("c", "a");
        b.allow_node("c", "b");
        b.allow_node("c", "X");
        b.allow_edge("a", "a");
        b.allow_edge("a*", "a");
        b.allow_edge("b", "b");
        b.allow_edge("b*", "b");
        b.allow_edge("X", "X");
        for pred in ["a", "b", "X", "a*", "b*"] {
            b.allow_edge(pred, "a*");
            b.allow_edge(pred, "b*");
        }
        b.build().unwrap()
    }

    #[test]
    fn classifies_three_coloring_as_log_star() {
        let c = classify(&three_coloring()).unwrap();
        assert_eq!(c.complexity(), Complexity::LogStar);
        assert!(c.unsolvability_witness().is_none());
        assert!(c.num_types() >= 2);
        assert!(c.pump_threshold() >= 2);
        assert!(c.to_string().contains("log*"));
    }

    #[test]
    fn classifies_two_coloring_as_unsolvable() {
        let c = classify(&two_coloring()).unwrap();
        assert_eq!(c.complexity(), Complexity::Unsolvable);
        let witness = c.unsolvability_witness().expect("witness instance");
        assert!(
            witness.len() % 2 == 1,
            "an odd cycle witnesses unsolvability"
        );
    }

    #[test]
    fn classifies_copy_input_as_constant() {
        let c = classify(&copy_input()).unwrap();
        assert_eq!(c.complexity(), Complexity::Constant);
    }

    #[test]
    fn classifies_secret_broadcast_as_linear() {
        let c = classify(&secret_broadcast()).unwrap();
        assert_eq!(c.complexity(), Complexity::Linear);
    }

    #[test]
    fn mis_on_directed_cycles_is_log_star() {
        // Maximal independent set, phrased with the predecessor-facing
        // verifier: outputs IN/OUT-with-reason. We use three labels:
        // "I" (in the set), "Oi" (out, my predecessor is in),
        // "Oo" (out, my successor will be in / pred is out).
        // Constraints: an I node cannot follow an I node; an Oi node must
        // follow an I node; an Oo node must follow an Oi or Oo?? — to keep
        // maximality locally checkable on the predecessor side we forbid two
        // consecutive "out" nodes unless the first is Oo... The standard
        // formulation: no two adjacent I; no two adjacent O where both are
        // "uncovered". We encode coverage in the labels.
        let mut b = build("mis", &["x"], &["I", "O-covered", "O-expecting"]);
        b.allow_all_node_pairs();
        // After an I node: either another O that is covered by it, or an
        // expecting O... an I node cannot follow an I node.
        b.allow_edge("I", "O-covered");
        b.allow_edge("I", "O-expecting");
        // A covered O (its predecessor was I) may be followed by anything
        // except another covered O claiming coverage it does not have.
        b.allow_edge("O-covered", "I");
        b.allow_edge("O-covered", "O-expecting");
        // An expecting O must be followed by an I (that is what it expects).
        b.allow_edge("O-expecting", "I");
        let p = b.build().unwrap();
        let c = classify(&p).unwrap();
        assert_eq!(c.complexity(), Complexity::LogStar);
    }

    #[test]
    fn forced_constant_output_problem_is_constant() {
        // Everyone must output the same fixed label; trivially O(1).
        let mut b = build("always-zero", &["x", "y"], &["z"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        let p = b.build().unwrap();
        let c = classify(&p).unwrap();
        assert_eq!(c.complexity(), Complexity::Constant);
    }

    #[test]
    fn synthesized_algorithms_produce_valid_labelings() {
        // End-to-end: classify, then run the synthesized algorithm on random
        // instances and verify the outputs.
        let problems = vec![three_coloring(), copy_input(), secret_broadcast()];
        for p in problems {
            let c = classify(&p).unwrap();
            let mut nets = Vec::new();
            for (i, n) in [6usize, 13, 40, 120].iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(i as u64 + 1);
                let inputs: Vec<u16> = (0..*n)
                    .map(|_| rng.gen_range(0..p.num_inputs() as u16))
                    .collect();
                let mut rng2 = StdRng::seed_from_u64(i as u64 + 100);
                nets.push(
                    Network::new(
                        Instance::from_indices(Topology::Cycle, &inputs),
                        IdAssignment::RandomFromSpace { multiplier: 4 },
                        &mut rng2,
                    )
                    .unwrap(),
                );
            }
            let outcome = validate_algorithm(&p, c.algorithm(), &nets).unwrap();
            assert!(
                outcome.is_valid(),
                "problem {} (classified {}) produced an invalid labeling: {outcome:?}",
                p.name(),
                c.complexity()
            );
        }
    }

    #[test]
    fn monotonicity_allowing_more_never_hurts() {
        // Adding allowed pairs can only make a problem easier; spot-check by
        // comparing 3-coloring against 3-coloring with self-loops allowed
        // (which becomes O(1): everyone picks colour 1).
        let mut b = build("lazy-coloring", &["x"], &["1", "2", "3"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        let relaxed = b.build().unwrap();
        let strict = classify(&three_coloring()).unwrap();
        let loose = classify(&relaxed).unwrap();
        assert_eq!(strict.complexity(), Complexity::LogStar);
        assert_eq!(loose.complexity(), Complexity::Constant);
    }

    #[test]
    fn canonical_patterns_are_canonical_and_primitive() {
        let ps = canonical_patterns(2, 3);
        // [0], [1], [01], [001], [011] — canonical rotations only.
        assert_eq!(ps.len(), 5);
        for w in &ps {
            for s in 1..w.len() {
                let rot: Vec<InLabel> = (0..w.len()).map(|i| w[(i + s) % w.len()]).collect();
                assert!(rot >= *w);
            }
        }
    }

    #[test]
    fn options_budgets_are_respected() {
        let opts = ClassifierOptions {
            type_budget: 1,
            ..ClassifierOptions::default()
        };
        assert!(classify_with_options(&three_coloring(), &opts).is_err());
        let default = ClassifierOptions::default();
        assert!(default.search_budget > 0 && default.pattern_length_cap > 0);
    }
}
