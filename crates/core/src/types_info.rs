//! Per-problem type information used by the gap deciders: the quantified set
//! of gap types and their connection relations.

use crate::Result;
use lcl_problem::NormalizedLcl;
use lcl_semigroup::{OutRelation, TransferSystem, TypeId, TypeSemigroup};

/// Everything the feasibility search needs to know about the problem's types:
/// the semigroup, the minimum gap length `L_min` (the computed stand-in for
/// `ℓ_pump`), the set `T` of types realized by gaps of length `≥ L_min`, and
/// the connection relation `C(τ) = E · R(τ) · E` of each such type.
#[derive(Clone, Debug)]
pub struct GapTypes {
    problem: NormalizedLcl,
    system: TransferSystem,
    semigroup: TypeSemigroup,
    min_gap: usize,
    quantified: Vec<TypeId>,
    connections: Vec<OutRelation>,
}

impl GapTypes {
    /// Computes the type information of a problem. `type_budget` caps the
    /// number of semigroup elements.
    ///
    /// # Errors
    ///
    /// Returns an error if the semigroup exceeds the budget.
    pub fn compute(problem: &NormalizedLcl, type_budget: usize) -> Result<Self> {
        let system = TransferSystem::new(problem);
        let semigroup = TypeSemigroup::compute(&system, type_budget)?;
        let min_gap = semigroup.pump_threshold();
        let quantified: Vec<TypeId> = semigroup
            .length_profile()
            .types_of_length_at_least(min_gap)
            .into_iter()
            .collect();
        let mut connections = Vec::with_capacity(quantified.len());
        for &t in &quantified {
            connections.push(system.connection(semigroup.relation(t))?);
        }
        Ok(GapTypes {
            problem: problem.clone(),
            system,
            semigroup,
            min_gap,
            quantified,
            connections,
        })
    }

    /// The problem.
    pub fn problem(&self) -> &NormalizedLcl {
        &self.problem
    }

    /// The transfer system.
    pub fn system(&self) -> &TransferSystem {
        &self.system
    }

    /// The type semigroup.
    pub fn semigroup(&self) -> &TypeSemigroup {
        &self.semigroup
    }

    /// The minimum gap length the synthesized algorithms guarantee (and the
    /// minimum word length over which the feasibility conditions quantify).
    pub fn min_gap(&self) -> usize {
        self.min_gap
    }

    /// The quantified gap types, in a fixed order.
    pub fn quantified(&self) -> &[TypeId] {
        &self.quantified
    }

    /// The position of a type within [`Self::quantified`], if present.
    pub fn position(&self, t: TypeId) -> Option<usize> {
        self.quantified.iter().position(|&x| x == t)
    }

    /// The connection relation `C(τ)` of the `i`-th quantified type.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn connection(&self, i: usize) -> &OutRelation {
        &self.connections[i]
    }

    /// Whether every *sufficiently long* cycle admits a valid labeling: the
    /// boolean trace of `R(w)·E` must be non-zero for every type realized by
    /// words of length `≥ L_min` (complexity is an asymptotic notion, so very
    /// short degenerate cycles — a triangle cannot be 2-coloured, a single
    /// node has itself as neighbour — do not make a problem unsolvable).
    /// Returns a witness word of length `≥ L_min` if some long cycle has no
    /// valid labeling.
    ///
    /// # Errors
    ///
    /// Propagates relation-algebra errors (dimension mismatches cannot occur
    /// for well-formed problems).
    pub fn solvability_witness(&self) -> Result<Option<Vec<lcl_problem::InLabel>>> {
        for &t in &self.quantified {
            let rel = self.semigroup.relation(t);
            if !self.system.cycle_relation(rel)?.has_nonzero_diagonal() {
                return Ok(Some(self.long_witness(t)));
            }
        }
        Ok(None)
    }

    /// A word of length `≥ L_min` whose type is `t` (which must be a
    /// quantified type). Constructed by a forward walk over the type
    /// automaton.
    fn long_witness(&self, t: TypeId) -> Vec<lcl_problem::InLabel> {
        use std::collections::HashMap;
        let alpha = self.system.num_letters();
        // words[type] = some word of the current length with that type.
        let mut words: HashMap<TypeId, Vec<lcl_problem::InLabel>> = HashMap::new();
        for a in 0..alpha {
            let a = lcl_problem::InLabel::from_index(a);
            if let Ok(ty) = self.semigroup.type_of_word(&[a]) {
                words.entry(ty).or_insert_with(|| vec![a]);
            }
        }
        let profile = self.semigroup.length_profile();
        let horizon = self.min_gap + profile.preperiod + profile.period + 1;
        for len in 2..=horizon {
            let mut next: HashMap<TypeId, Vec<lcl_problem::InLabel>> = HashMap::new();
            for (ty, word) in &words {
                for a in 0..alpha {
                    let a = lcl_problem::InLabel::from_index(a);
                    let stepped = self.semigroup.step(*ty, a);
                    next.entry(stepped).or_insert_with(|| {
                        let mut w = word.clone();
                        w.push(a);
                        w
                    });
                }
            }
            words = next;
            if len >= self.min_gap {
                if let Some(w) = words.get(&t) {
                    return w.clone();
                }
            }
        }
        // Fall back to the stored (possibly short) witness; unreachable for
        // quantified types.
        self.semigroup.witness(t).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::NormalizedLcl;

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn two_coloring_is_not_always_solvable() {
        let info = GapTypes::compute(&two_coloring(), 10_000).unwrap();
        let witness = info.solvability_witness().unwrap();
        assert!(witness.is_some(), "odd cycles are not 2-colorable");
        assert_eq!(info.problem().name(), "2-coloring");
    }

    #[test]
    fn three_coloring_is_always_solvable() {
        let info = GapTypes::compute(&three_coloring(), 10_000).unwrap();
        assert!(info.solvability_witness().unwrap().is_none());
        assert!(!info.quantified().is_empty());
        assert!(info.min_gap() >= 1);
        // For 3-coloring with a unary input alphabet the semigroup collapses
        // to very few types; all quantified types have a connection relation.
        for i in 0..info.quantified().len() {
            assert_eq!(info.connection(i).dim(), 3);
        }
        let t = info.quantified()[0];
        assert_eq!(info.position(t), Some(0));
        assert!(!info.semigroup().is_empty());
        assert_eq!(info.system().dim(), 3);
    }
}
