//! The feasible-function search (§4.2 and §4.4), formulated over types.
//!
//! A *feasible structure* consists of
//!
//! * for every quantified gap type `τ`, a pair of label sets
//!   `(A(τ), B(τ))` with `A(τ) × B(τ) ⊆ C(τ)`: any "last" label from `A(τ)`
//!   placed on the left of a gap of type `τ` can be bridged to any "first"
//!   label from `B(τ)` on its right, whatever the gap's input word is;
//! * for every anchor-block context `(τ_left, S, τ_right)` with
//!   `S ∈ Σ_in²`, a block labeling `(first, last)` with
//!   `first ∈ B(τ_left)`, `last ∈ A(τ_right)` that satisfies the node
//!   constraints of `S` and the internal edge constraint — the paper's
//!   feasible function `f` of §4.2;
//! * optionally (for the `O(1)` gap), for every short primitive input pattern
//!   `w`, a periodic output labeling `f(w)` (the `G_{w,z}` condition of §4.4)
//!   whose boundary labels belong to every `A(τ)` / `B(τ)` (the
//!   `G_{w1,w2,S}` condition, quantified over middle types).
//!
//! The search is a backtracking constraint solver over the candidate
//! "bicliques" `(A, B)` of each connection relation; the domains and the
//! number of types are small for concrete problems (Lemma 13 bounds them in
//! terms of the label alphabets only).

use crate::types_info::GapTypes;
use crate::{ClassifierError, Result};
use lcl_problem::{InLabel, NormalizedLcl, OutLabel};
use lcl_semigroup::OutRelation;
use std::collections::HashMap;

/// A periodic output labeling for one primitive input pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternLabeling {
    /// The primitive pattern, in canonical rotation.
    pub pattern: Vec<InLabel>,
    /// A valid periodic labeling of the same length.
    pub labeling: Vec<OutLabel>,
}

/// The outcome of a successful feasibility search.
#[derive(Clone, Debug)]
pub struct FeasibleStructure {
    /// `A(τ)` for each quantified type (labels allowed to face the gap from
    /// the left).
    pub left_facing: Vec<Vec<OutLabel>>,
    /// `B(τ)` for each quantified type (labels allowed to face the gap from
    /// the right).
    pub right_facing: Vec<Vec<OutLabel>>,
    /// The feasible function: `(left type index, S₀, S₁, right type index) ↦
    /// (first, last)` for the 2-node anchor blocks.
    pub blocks: HashMap<(usize, u16, u16, usize), (OutLabel, OutLabel)>,
    /// Periodic labelings per pattern (empty when only the `Θ(log* n)`-level
    /// structure was requested).
    pub patterns: Vec<PatternLabeling>,
}

impl FeasibleStructure {
    /// Looks up the block labeling for a context.
    pub fn block(
        &self,
        left_type: usize,
        s0: InLabel,
        s1: InLabel,
        right_type: usize,
    ) -> Option<(OutLabel, OutLabel)> {
        self.blocks
            .get(&(left_type, s0.0, s1.0, right_type))
            .copied()
    }

    /// Looks up the periodic labeling of a canonical pattern.
    pub fn pattern_labeling(&self, pattern: &[InLabel]) -> Option<&PatternLabeling> {
        self.patterns.iter().find(|p| p.pattern == pattern)
    }
}

/// One candidate biclique `(A, B)` of a connection relation, stored as
/// bitmasks over `Σ_out`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Biclique {
    a: u64,
    b: u64,
}

fn candidate_bicliques(conn: &OutRelation, beta: usize) -> Vec<Biclique> {
    let mut out: Vec<Biclique> = Vec::new();
    for a_mask in 1u64..(1 << beta) {
        // B = common successors of A.
        let mut b_mask = (1u64 << beta) - 1;
        for p in 0..beta {
            if a_mask >> p & 1 == 1 {
                let mut row = 0u64;
                for q in 0..beta {
                    if conn.get(p, q) {
                        row |= 1 << q;
                    }
                }
                b_mask &= row;
            }
        }
        if b_mask == 0 {
            continue;
        }
        // Maximalize A: every p whose row covers B.
        let mut a_closed = 0u64;
        for p in 0..beta {
            let mut covers = true;
            for q in 0..beta {
                if b_mask >> q & 1 == 1 && !conn.get(p, q) {
                    covers = false;
                    break;
                }
            }
            if covers {
                a_closed |= 1 << p;
            }
        }
        let candidate = Biclique {
            a: a_closed,
            b: b_mask,
        };
        if !out.contains(&candidate) {
            out.push(candidate);
        }
    }
    out
}

fn mask_to_labels(mask: u64, beta: usize) -> Vec<OutLabel> {
    (0..beta)
        .filter(|&i| mask >> i & 1 == 1)
        .map(OutLabel::from_index)
        .collect()
}

/// Enumerates all valid periodic labelings of a pattern (labelings `y` with
/// `node_ok(w_i, y_i)`, `edge_ok(y_i, y_{i+1})` and `edge_ok(y_last, y_0)`).
fn periodic_labelings(
    problem: &NormalizedLcl,
    pattern: &[InLabel],
    cap: usize,
) -> Vec<Vec<OutLabel>> {
    let beta = problem.num_outputs();
    let mut out = Vec::new();
    let mut stack: Vec<Vec<OutLabel>> = (0..beta)
        .map(OutLabel::from_index)
        .filter(|&o| problem.node_ok(pattern[0], o))
        .map(|o| vec![o])
        .collect();
    while let Some(partial) = stack.pop() {
        if out.len() >= cap {
            break;
        }
        if partial.len() == pattern.len() {
            if problem.edge_ok(*partial.last().expect("non-empty"), partial[0]) {
                out.push(partial);
            }
            continue;
        }
        let i = partial.len();
        for o in 0..beta {
            let o = OutLabel::from_index(o);
            if problem.node_ok(pattern[i], o)
                && problem.edge_ok(*partial.last().expect("non-empty"), o)
            {
                let mut next = partial.clone();
                next.push(o);
                stack.push(next);
            }
        }
    }
    out
}

/// The padding exponents the `G_{w1,w2,S}` check must cover for one pattern:
/// all exponents in one full period of the eventual periodicity of
/// `R(w^k)`, starting high enough that the padding is at least `min_gap`
/// nodes long (the synthesized algorithm always leaves at least that much of
/// the periodic fringe unlabeled).
fn stable_exponents(info: &GapTypes, pattern: &[InLabel]) -> Result<Vec<usize>> {
    let exp = lcl_semigroup::pump_exponent(info.semigroup(), pattern)?;
    let needed = info.min_gap().div_ceil(pattern.len()) + 1;
    let start = exp.b.max(needed);
    Ok((0..exp.a).map(|r| start + r).collect())
}

/// Backtracking choice of one periodic labeling per pattern such that every
/// ordered pair of labeled periodic regions bridges across every possible
/// middle.
fn choose_pattern_labelings(
    info: &GapTypes,
    patterns: &[Vec<InLabel>],
    candidates: &[Vec<Vec<OutLabel>>],
) -> Result<Option<Vec<PatternLabeling>>> {
    if patterns.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let system = info.system();
    let semigroup = info.semigroup();
    // Pre-compute, for every pattern, the relations of its stable paddings.
    let mut paddings: Vec<Vec<lcl_semigroup::OutRelation>> = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        let base = system.relation_of_word(pattern)?;
        let mut rels = Vec::new();
        for e in stable_exponents(info, pattern)? {
            rels.push(system.power(&base, e)?);
        }
        paddings.push(rels);
    }
    // Middles: every semigroup element plus the empty middle.
    let mut middles: Vec<Option<lcl_semigroup::OutRelation>> = vec![None];
    for t in semigroup.iter() {
        middles.push(Some(semigroup.relation(t).clone()));
    }

    // bridge(i, fi, j, fj): can a labeled w_i-region (ending with fi's last
    // label) be followed, across any middle, by a labeled w_j-region
    // (starting with fj's first label)?
    let bridge = |i: usize, fi: &[OutLabel], j: usize, fj: &[OutLabel]| -> Result<bool> {
        let last = fi[fi.len() - 1];
        let first = fj[0];
        for left in &paddings[i] {
            for right in &paddings[j] {
                for middle in &middles {
                    let combined = match middle {
                        None => system.join(left, right)?,
                        Some(mid) => system.join(&system.join(left, mid)?, right)?,
                    };
                    if !system.connection(&combined)?.contains(last, first) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    };

    /// Checks that the labeling of one pattern can bridge into another's
    /// across an arbitrary middle: `(left index, left labeling, right index,
    /// right labeling)`.
    type BridgeCheck<'a> = dyn Fn(usize, &[OutLabel], usize, &[OutLabel]) -> Result<bool> + 'a;

    fn solve(
        idx: usize,
        patterns: &[Vec<InLabel>],
        candidates: &[Vec<Vec<OutLabel>>],
        chosen: &mut Vec<Vec<OutLabel>>,
        bridge: &BridgeCheck<'_>,
    ) -> Result<bool> {
        if idx == patterns.len() {
            return Ok(true);
        }
        'cands: for cand in &candidates[idx] {
            // Check against itself and all previously chosen labelings.
            if !bridge(idx, cand, idx, cand)? {
                continue;
            }
            for (j, prev) in chosen.iter().enumerate() {
                if !bridge(idx, cand, j, prev)? || !bridge(j, prev, idx, cand)? {
                    continue 'cands;
                }
            }
            chosen.push(cand.clone());
            if solve(idx + 1, patterns, candidates, chosen, bridge)? {
                return Ok(true);
            }
            chosen.pop();
        }
        Ok(false)
    }

    let mut chosen: Vec<Vec<OutLabel>> = Vec::new();
    if !solve(0, patterns, candidates, &mut chosen, &bridge)? {
        return Ok(None);
    }
    Ok(Some(
        patterns
            .iter()
            .zip(chosen)
            .map(|(pattern, labeling)| PatternLabeling {
                pattern: pattern.clone(),
                labeling,
            })
            .collect(),
    ))
}

/// Checks that a block labeling exists for every `S ∈ Σ_in²` given the facing
/// sets of the left and right gap types. Returns `false` as soon as some `S`
/// has none.
fn blocks_exist(
    problem: &NormalizedLcl,
    right_facing_of_left_gap: u64,
    left_facing_of_right_gap: u64,
    beta: usize,
) -> bool {
    let alpha = problem.num_inputs();
    for s0 in 0..alpha {
        for s1 in 0..alpha {
            let mut found = false;
            'search: for first in 0..beta {
                if right_facing_of_left_gap >> first & 1 == 0 {
                    continue;
                }
                let first_l = OutLabel::from_index(first);
                if !problem.node_ok(InLabel::from_index(s0), first_l) {
                    continue;
                }
                for last in 0..beta {
                    if left_facing_of_right_gap >> last & 1 == 0 {
                        continue;
                    }
                    let last_l = OutLabel::from_index(last);
                    if problem.node_ok(InLabel::from_index(s1), last_l)
                        && problem.edge_ok(first_l, last_l)
                    {
                        found = true;
                        break 'search;
                    }
                }
            }
            if !found {
                return false;
            }
        }
    }
    true
}

/// Searches for a feasible structure.
///
/// `patterns` lists the canonical primitive input patterns for which periodic
/// labelings are additionally required (pass an empty slice to decide only the
/// `ω(log* n) — o(n)` gap). `budget` bounds the number of backtracking nodes.
///
/// # Errors
///
/// Returns [`ClassifierError::TooLarge`] if the output alphabet exceeds 64
/// labels (the bitmask representation) and
/// [`ClassifierError::SearchBudgetExceeded`] if the search budget runs out.
pub fn find_feasible(
    info: &GapTypes,
    patterns: &[Vec<InLabel>],
    budget: usize,
) -> Result<Option<FeasibleStructure>> {
    let problem = info.problem();
    let beta = problem.num_outputs();
    if beta > 64 {
        return Err(ClassifierError::TooLarge {
            what: format!("output alphabet of size {beta} exceeds the 64-label limit"),
        });
    }
    let num_types = info.quantified().len();
    // Candidate bicliques per type, most permissive first (larger sets let
    // more blocks and patterns through).
    let mut domains: Vec<Vec<Biclique>> = Vec::with_capacity(num_types);
    for i in 0..num_types {
        let mut cands = candidate_bicliques(info.connection(i), beta);
        if cands.is_empty() {
            return Ok(None);
        }
        cands.sort_by_key(|c| {
            usize::MAX - (c.a.count_ones() as usize) * (c.b.count_ones() as usize)
        });
        domains.push(cands);
    }
    // Candidate periodic labelings per pattern.
    let mut pattern_candidates: Vec<Vec<Vec<OutLabel>>> = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        let cands = periodic_labelings(problem, pattern, 4096);
        if cands.is_empty() {
            return Ok(None);
        }
        pattern_candidates.push(cands);
    }

    struct Search<'a> {
        info: &'a GapTypes,
        problem: &'a NormalizedLcl,
        beta: usize,
        domains: &'a [Vec<Biclique>],
        assignment: Vec<Option<Biclique>>,
        nodes: usize,
        budget: usize,
    }

    impl Search<'_> {
        fn consistent_with(&self, idx: usize, choice: Biclique) -> bool {
            // Block constraints between `idx` and every assigned type (and itself).
            for (other_idx, other) in self.assignment.iter().enumerate() {
                let other = match other {
                    Some(b) => *b,
                    None if other_idx == idx => choice,
                    None => continue,
                };
                let this = choice;
                // Block with left gap `other_idx` and right gap `idx`.
                if !blocks_exist(self.problem, other.b, this.a, self.beta) {
                    return false;
                }
                // Block with left gap `idx` and right gap `other_idx`.
                if !blocks_exist(self.problem, this.b, other.a, self.beta) {
                    return false;
                }
            }
            true
        }

        fn solve(&mut self, idx: usize) -> Result<bool> {
            self.nodes += 1;
            if self.nodes > self.budget {
                return Err(ClassifierError::SearchBudgetExceeded {
                    budget: self.budget,
                });
            }
            if idx == self.assignment.len() {
                return Ok(true);
            }
            let _ = self.info;
            for choice_idx in 0..self.domains[idx].len() {
                let choice = self.domains[idx][choice_idx];
                if !self.consistent_with(idx, choice) {
                    continue;
                }
                self.assignment[idx] = Some(choice);
                if self.solve(idx + 1)? {
                    return Ok(true);
                }
                self.assignment[idx] = None;
            }
            Ok(false)
        }
    }

    let mut search = Search {
        info,
        problem,
        beta,
        domains: &domains,
        assignment: vec![None; num_types],
        nodes: 0,
        budget,
    };
    if num_types > 0 && !search.solve(0)? {
        return Ok(None);
    }
    let assignment: Vec<Biclique> = search
        .assignment
        .iter()
        .map(|a| {
            a.unwrap_or(Biclique {
                a: (1 << beta) - 1,
                b: (1 << beta) - 1,
            })
        })
        .collect();

    // Choose periodic labelings so that any two labeled periodic regions can
    // be bridged across an arbitrary middle (the `G_{w1,w2,S}` condition of
    // §4.4): for every ordered pair of patterns, every middle type (or empty
    // middle) and every stable padding exponent, the connection relation of
    // `w1^{e1} ◦ S ◦ w2^{e2}` must relate `f(w1)`'s last label to `f(w2)`'s
    // first label. The choice is a small backtracking search over patterns.
    let chosen_patterns = match choose_pattern_labelings(info, patterns, &pattern_candidates)? {
        Some(chosen) => chosen,
        None => return Ok(None),
    };

    // Materialize the block function.
    let alpha = problem.num_inputs();
    let mut blocks = HashMap::new();
    for (li, left) in assignment.iter().enumerate() {
        for (ri, right) in assignment.iter().enumerate() {
            for s0 in 0..alpha {
                for s1 in 0..alpha {
                    let mut chosen = None;
                    'pairs: for first in 0..beta {
                        if left.b >> first & 1 == 0 {
                            continue;
                        }
                        let first_l = OutLabel::from_index(first);
                        if !problem.node_ok(InLabel::from_index(s0), first_l) {
                            continue;
                        }
                        for last in 0..beta {
                            if right.a >> last & 1 == 0 {
                                continue;
                            }
                            let last_l = OutLabel::from_index(last);
                            if problem.node_ok(InLabel::from_index(s1), last_l)
                                && problem.edge_ok(first_l, last_l)
                            {
                                chosen = Some((first_l, last_l));
                                break 'pairs;
                            }
                        }
                    }
                    match chosen {
                        Some(pair) => {
                            blocks.insert((li, s0 as u16, s1 as u16, ri), pair);
                        }
                        None => return Ok(None),
                    }
                }
            }
        }
    }

    Ok(Some(FeasibleStructure {
        left_facing: assignment
            .iter()
            .map(|b| mask_to_labels(b.a, beta))
            .collect(),
        right_facing: assignment
            .iter()
            .map(|b| mask_to_labels(b.b, beta))
            .collect(),
        blocks,
        patterns: chosen_patterns,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::NormalizedLcl;
    use lcl_semigroup::primitive_strings_up_to;

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn anything_goes() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("free");
        b.input_labels(&["x"]);
        b.output_labels(&["o", "p"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    /// The "secret broadcast" problem: `S_a`/`S_b` nodes output their starred
    /// secret, plain nodes must copy the secret of the nearest `S` node behind
    /// them (or output `X` if the whole cycle has no `S` node). Always
    /// solvable, but the secret must travel `Θ(n)` hops.
    fn secret_broadcast() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("secret-broadcast");
        b.input_labels(&["Sa", "Sb", "c"]);
        b.output_labels(&["a", "b", "X", "a*", "b*"]);
        b.allow_node("Sa", "a*");
        b.allow_node("Sb", "b*");
        b.allow_node("c", "a");
        b.allow_node("c", "b");
        b.allow_node("c", "X");
        // Continue a segment.
        b.allow_edge("a", "a");
        b.allow_edge("a*", "a");
        b.allow_edge("b", "b");
        b.allow_edge("b*", "b");
        b.allow_edge("X", "X");
        // Any segment may end right before a new S node.
        for pred in ["a", "b", "X", "a*", "b*"] {
            b.allow_edge(pred, "a*");
            b.allow_edge(pred, "b*");
        }
        b.build().unwrap()
    }

    #[test]
    fn three_coloring_has_logstar_structure_but_no_constant_one() {
        let info = GapTypes::compute(&three_coloring(), 10_000).unwrap();
        let logstar = find_feasible(&info, &[], 1_000_000).unwrap();
        assert!(logstar.is_some(), "3-coloring is O(log* n)");
        // For the O(1) level we also need a periodic labeling for the
        // single-letter pattern, which does not exist (a node cannot have its
        // own colour as both neighbours... period 1 needs edge_ok(c, c)).
        let patterns = primitive_strings_up_to(1, 1);
        let constant = find_feasible(&info, &patterns, 1_000_000).unwrap();
        assert!(constant.is_none(), "3-coloring is not O(1)");
    }

    #[test]
    fn free_problem_has_constant_structure() {
        let info = GapTypes::compute(&anything_goes(), 10_000).unwrap();
        let patterns = primitive_strings_up_to(1, info.semigroup().pump_threshold().min(3));
        let feasible = find_feasible(&info, &patterns, 1_000_000).unwrap();
        let structure = feasible.expect("the unconstrained problem is O(1)");
        assert!(!structure.patterns.is_empty());
        assert!(structure
            .pattern_labeling(&structure.patterns[0].pattern)
            .is_some());
        assert!(!structure.blocks.is_empty());
        let (first, last) = structure
            .block(0, lcl_problem::InLabel(0), lcl_problem::InLabel(0), 0)
            .expect("block exists");
        assert!(first.index() < 2 && last.index() < 2);
    }

    #[test]
    fn secret_broadcast_has_no_logstar_structure() {
        let info = GapTypes::compute(&secret_broadcast(), 10_000).unwrap();
        assert!(
            info.solvability_witness().unwrap().is_none(),
            "secret broadcast is always solvable"
        );
        let feasible = find_feasible(&info, &[], 5_000_000).unwrap();
        assert!(
            feasible.is_none(),
            "the secret must travel across the whole cycle, so no feasible function exists"
        );
    }

    #[test]
    fn biclique_candidates_are_consistent() {
        let info = GapTypes::compute(&three_coloring(), 10_000).unwrap();
        let conn = info.connection(0);
        let cands = candidate_bicliques(conn, 3);
        assert!(!cands.is_empty());
        for c in cands {
            for p in 0..3 {
                for q in 0..3 {
                    if c.a >> p & 1 == 1 && c.b >> q & 1 == 1 {
                        assert!(conn.get(p, q), "biclique must be inside the relation");
                    }
                }
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let info = GapTypes::compute(&three_coloring(), 10_000).unwrap();
        let result = find_feasible(&info, &[], 0);
        assert!(matches!(
            result,
            Err(ClassifierError::SearchBudgetExceeded { .. })
        ));
    }

    #[test]
    fn periodic_labelings_enumeration() {
        let p = three_coloring();
        let singles = periodic_labelings(&p, &[InLabel(0)], 100);
        assert!(singles.is_empty(), "no colour is adjacent to itself");
        let pairs = periodic_labelings(&p, &[InLabel(0), InLabel(0)], 100);
        assert_eq!(pairs.len(), 6, "ordered pairs of distinct colours");
    }
}
