//! Error type for the classifier.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the classifier.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum ClassifierError {
    /// The underlying type semigroup could not be enumerated within budget.
    Semigroup(lcl_semigroup::SemigroupError),
    /// A problem-construction error occurred while building auxiliary
    /// problems.
    Problem(lcl_problem::ProblemError),
    /// The feasibility search exceeded its configured node budget. The
    /// classification would need a larger budget (see
    /// [`crate::ClassifierOptions`]).
    SearchBudgetExceeded {
        /// The number of search nodes that was allowed.
        budget: usize,
    },
    /// The problem has too many output labels or types for the configured
    /// limits.
    TooLarge {
        /// Description of the limit that was exceeded.
        what: String,
    },
    /// The LOCAL simulator failed while the engine was running a synthesized
    /// algorithm (see [`crate::Engine::solve`]).
    Sim(lcl_local_sim::SimError),
    /// The engine's end-to-end solve produced no valid labeling: the problem
    /// is unsolvable on the given instance, or the synthesized algorithm's
    /// output failed verification.
    Solve {
        /// Description of the failure.
        what: String,
    },
    /// An engine-internal failure: a worker-pool job died (panicked) before
    /// delivering its result. The engine itself stays usable.
    Internal {
        /// Description of the failure.
        what: String,
    },
}

impl fmt::Display for ClassifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifierError::Semigroup(e) => write!(f, "type semigroup error: {e}"),
            ClassifierError::Problem(e) => write!(f, "problem error: {e}"),
            ClassifierError::SearchBudgetExceeded { budget } => {
                write!(f, "feasibility search exceeded {budget} nodes")
            }
            ClassifierError::TooLarge { what } => write!(f, "problem too large: {what}"),
            ClassifierError::Sim(e) => write!(f, "simulator error: {e}"),
            ClassifierError::Solve { what } => write!(f, "solve failed: {what}"),
            ClassifierError::Internal { what } => write!(f, "engine internal error: {what}"),
        }
    }
}

impl StdError for ClassifierError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ClassifierError::Semigroup(e) => Some(e),
            ClassifierError::Problem(e) => Some(e),
            ClassifierError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lcl_local_sim::SimError> for ClassifierError {
    fn from(e: lcl_local_sim::SimError) -> Self {
        ClassifierError::Sim(e)
    }
}

impl From<lcl_semigroup::SemigroupError> for ClassifierError {
    fn from(e: lcl_semigroup::SemigroupError) -> Self {
        ClassifierError::Semigroup(e)
    }
}

impl From<lcl_problem::ProblemError> for ClassifierError {
    fn from(e: lcl_problem::ProblemError) -> Self {
        ClassifierError::Problem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ClassifierError::from(lcl_semigroup::SemigroupError::EmptyWord);
        assert!(e.to_string().contains("semigroup"));
        assert!(e.source().is_some());
        let e = ClassifierError::SearchBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let e = ClassifierError::TooLarge {
            what: "outputs".into(),
        };
        assert!(e.to_string().contains("outputs"));
        let e = ClassifierError::from(lcl_problem::ProblemError::EmptyInputAlphabet);
        assert!(e.to_string().contains("problem"));
        let e = ClassifierError::Internal {
            what: "reply dropped".into(),
        };
        assert!(e.to_string().contains("reply dropped"));
        assert!(e.source().is_none());
    }
}
