//! The sharded, O(1)-per-operation memo cache behind [`Engine`](crate::Engine).
//!
//! [`ShardedLruCache`] replaces the engine's original single-lock cache, whose
//! LRU eviction scanned every entry for its victim on insert (O(entries)) and
//! whose one `RwLock` serialized all writers. Here the key space is split
//! across N **shards** (N a power of two; keys are hash-routed). Each shard is
//! built from three synchronization domains:
//!
//! * a read-mostly **index** (`RwLock<HashMap>`) from key to the cached value
//!   plus its LRU slot — the only lock a hit needs, and a *read* lock at that,
//!   so concurrent hits on one hot key proceed in parallel;
//! * the **LRU state** (`Mutex`): a slab of nodes threaded onto an intrusive
//!   doubly-linked recency list (`prev`/`next` are slot indices into the slab
//!   — no pointers, no `unsafe`), most-recent at the head, eviction victim at
//!   the tail, together with the bookkeeping counters;
//! * the **flight table** (`Mutex<HashMap>`): one condvar slot per key whose
//!   value is currently being computed, implementing per-key single-flight
//!   (see below).
//!
//! Hit-touch (unlink + relink at head), insert, and evict (pop the tail) are
//! all O(1), and operations on different shards never contend. A single-shard
//! cache is exactly the old global LRU: same victims, in the same order.
//!
//! # The hot-key read fast lane
//!
//! [`ShardedLruCache::get`] takes the index **read** lock, clones the `Arc`'d
//! value, and then refreshes LRU recency only *opportunistically*: a
//! `try_lock` on the LRU mutex. If the mutex is free (always true
//! single-threaded) the entry is touched exactly as before and the hit counts
//! as a **locked hit**; if another thread holds it, the touch is skipped —
//! sampled touch-on-hit — and the hit counts as a **fast hit**. Under
//! contention hits therefore never serialize on the shard mutex (the PR 5
//! regression): they share the read lock, and recency degrades gracefully to
//! a sampled approximation instead of becoming a bottleneck. Uncontended
//! traces keep byte-exact LRU semantics, which is what lets the single-
//! threaded model suite keep asserting exact victim orders.
//!
//! Memory ordering: the value is read under the index read lock (so it
//! happens-after the write-locked insert that published it — no torn reads
//! are possible), and the fast/locked counters are plain `Relaxed` atomics
//! (they order nothing; they are tallies).
//!
//! # Per-key single-flight
//!
//! [`ShardedLruCache::get_or_compute`] is the stampede-proof miss path. A
//! miss installs an in-flight marker (a [`Condvar`] slot keyed by the exact
//! byte key) in the shard's flight table; the installing thread — the
//! **leader** — runs the compute closure *on its own thread* and commits the
//! result with [`ShardedLruCache::insert`]. Concurrent requesters for the
//! same key find the marker and park on the condvar; when the leader commits
//! they receive the committed value directly (a **join**). N threads asking
//! for one cold key therefore perform exactly one computation.
//!
//! Recovery: the leader holds a drop guard, so a leader that dies — panics,
//! or returns an error (errors are never cached) — dissolves its flight and
//! wakes every waiter *before* the panic propagates. Woken waiters re-probe
//! and elect a new leader among themselves; nothing deadlocks and no lock
//! stays poisoned (every guard is acquired poison-tolerantly). Each
//! generation of a key — from insert to eviction — has at most one
//! successful leader: a second leader for the same key can only be elected
//! after the first one's flight dissolved, and a *successful* dissolve
//! happens-after the value is resident, so the re-probe under the flight
//! lock finds it.
//!
//! Deadlock rule: waiting happens only on the *leader's in-place
//! computation*, never on queued pool work — the leader needs no pool
//! capacity to finish, so a pool worker may safely park as a waiter. (The
//! engine's rule that pool workers must not park on *pool jobs* is
//! unaffected; see `Engine::dispatch`.)
//!
//! # Counter discipline
//!
//! The counters the balance invariant depends on — `entries`, `inserts`,
//! `evictions`, the peaks and the resident weight — live *inside* the LRU
//! mutex, updated in the same critical section as the mutation they
//! describe, so `entries + evictions == inserts` holds for every
//! [`ShardStats`] snapshot, even one taken mid-stampede. The hit/miss/flight
//! tallies (`fast_hits`, `locked_hits`, `flight_joins`, `flight_leaders`,
//! `misses`) are relaxed atomics — they participate in no structural
//! invariant, but each snapshot still loads every tally exactly once, so
//! `hits == fast_hits + locked_hits + flight_joins` holds by construction in
//! every snapshot too.
//!
//! **Miss discipline.** [`ShardedLruCache::get`] counts a hit on success and
//! *nothing* on a miss; misses are recorded when a computation is committed
//! to — by the single-flight leader, or explicitly via
//! [`ShardedLruCache::record_miss`] for callers driving the raw
//! get/insert cycle. This keeps the engine's long-standing accounting: a
//! peek miss ([`Engine::cached`](crate::Engine::cached)) costs nothing,
//! while every actual computation counts exactly one miss.
//!
//! **Weighing.** [`ShardedLruCache::new`] bounds the cache by entry *count*
//! — every entry weighs 1. [`ShardedLruCache::with_weigher`] bounds it by
//! total *weight* instead: a caller-supplied weigher prices each value (for
//! example in approximate bytes) at insert time, and an insert evicts LRU
//! victims until the shard's resident weight fits its budget again — so one
//! insert can evict several light entries, and a single entry heavier than
//! the whole budget stays resident alone (a cache that cannot hold its
//! current working item at all would thrash forever). The two modes share
//! every code path: count mode is weight mode with the unit weigher.

use std::collections::hash_map::{self, DefaultHasher};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};

/// The null slot index terminating the intrusive list. Slot indices are
/// `u32` deliberately: a slab node is `key + 8` bytes, so the cold cache
/// lines an eviction must touch stay few (and 4 billion slots per shard is
/// far beyond any realistic capacity).
const NIL: u32 = u32::MAX;

/// Locks a mutex, seeing through poison: every critical section in this
/// module leaves the structure consistent before any operation that could
/// panic (see the module docs), so a poisoned lock carries no torn state.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-locks an `RwLock`, seeing through poison (same argument as [`lock`]).
fn read<T>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rw.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks an `RwLock`, seeing through poison (same argument as [`lock`]).
fn write<T>(rw: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rw.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Aggregated cache-effectiveness counters of an [`Engine`](crate::Engine):
/// the sum of one internally consistent [`ShardStats`] snapshot per shard
/// (see the [module docs](self) for the consistency guarantee).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups served without computing: `fast_hits + locked_hits +
    /// flight_joins`.
    pub hits: u64,
    /// Lookups that had to be computed: single-flight leaders (successful or
    /// not) plus explicit [`ShardedLruCache::record_miss`] calls.
    pub misses: u64,
    /// Distinct problems currently cached.
    pub entries: usize,
    /// Entries removed: LRU capacity victims plus entries dropped by
    /// [`Engine::clear_cache`](crate::Engine::clear_cache). Counting both
    /// keeps `entries + evictions == inserts` true at every snapshot.
    pub evictions: u64,
    /// Entries ever inserted (a raced re-insert of a present key keeps the
    /// first entry and does not count).
    pub inserts: u64,
    /// Sum of the per-shard entry high-water marks — an upper bound on how
    /// many entries were ever resident at once.
    pub peak_entries: usize,
    /// Total weight of the resident entries, as priced by the cache's
    /// weigher (equal to `entries` under the default unit weigher).
    pub weight: u64,
    /// Sum of the per-shard weight high-water marks — an upper bound on the
    /// resident weight ever held at once.
    pub peak_weight: u64,
    /// Hits served on the read fast lane whose LRU recency touch was
    /// *skipped* because the LRU mutex was busy (sampled touch-on-hit).
    pub fast_hits: u64,
    /// Hits that also refreshed LRU recency (the `try_lock` succeeded —
    /// always the case without contention).
    pub locked_hits: u64,
    /// Single-flight leaders elected: cold-key computations started
    /// (successful or not). Under pure `get_or_compute` traffic this equals
    /// `misses`.
    pub flight_leaders: u64,
    /// Requesters that parked on another thread's in-flight computation and
    /// received the leader's committed value without computing.
    pub flight_joins: u64,
    /// Reply-bytes lane: lookups that found the value's pre-serialized reply
    /// payload already attached ([`ShardedLruCache::record_bytes_hit`]).
    /// Tallied by the serving layer, so it participates in no structural
    /// invariant — under pure byte-splicing traffic `bytes_hits +
    /// bytes_misses` tracks the cache hits that went on to serialize.
    pub bytes_hits: u64,
    /// Reply-bytes lane: cache hits whose reply payload had to be serialized
    /// (and attached) first ([`ShardedLruCache::record_bytes_miss`] — at
    /// most one per resident entry per generation).
    pub bytes_misses: u64,
    /// Number of independent shards the key space is split across.
    pub shards: usize,
}

impl CacheStats {
    /// The fraction of lookups served from the cache, in `[0, 1]`
    /// (`0.0` before any lookup happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} hits ({} fast / {} locked / {} joined) / {} misses \
             ({:.1}% hit ratio), {} flight leaders, {} entries (peak {}), \
             weight {} (peak {}), {} evictions / {} inserts, \
             {} bytes hits / {} bytes misses, {} shards",
            self.hits,
            self.fast_hits,
            self.locked_hits,
            self.flight_joins,
            self.misses,
            self.hit_ratio() * 100.0,
            self.flight_leaders,
            self.entries,
            self.peak_entries,
            self.weight,
            self.peak_weight,
            self.evictions,
            self.inserts,
            self.bytes_hits,
            self.bytes_misses,
            self.shards
        )
    }
}

/// One shard's counters, snapshotted under the shard's LRU mutex (each tally
/// atomic is loaded exactly once into the snapshot).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Lookups this shard served without computing:
    /// `fast_hits + locked_hits + flight_joins`.
    pub hits: u64,
    /// Computations committed to against this shard (single-flight leaders
    /// plus explicit [`ShardedLruCache::record_miss`] calls).
    pub misses: u64,
    /// Entries currently resident in this shard.
    pub entries: usize,
    /// Entries this shard removed (capacity victims and clears).
    pub evictions: u64,
    /// Entries ever inserted into this shard.
    pub inserts: u64,
    /// High-water mark of `entries`.
    pub peak_entries: usize,
    /// Total weight of this shard's resident entries.
    pub weight: u64,
    /// High-water mark of `weight`.
    pub peak_weight: u64,
    /// Hits whose recency touch was skipped (LRU mutex busy): the fast lane
    /// under contention.
    pub fast_hits: u64,
    /// Hits that refreshed recency under the LRU mutex.
    pub locked_hits: u64,
    /// Single-flight leaders elected on this shard.
    pub flight_leaders: u64,
    /// Requesters served by parking on a leader's in-flight computation.
    pub flight_joins: u64,
    /// Reply-bytes lane hits recorded against this shard.
    pub bytes_hits: u64,
    /// Reply-bytes lane misses recorded against this shard.
    pub bytes_misses: u64,
}

impl ShardStats {
    /// The bookkeeping invariants every snapshot satisfies: each inserted
    /// entry is either still resident or was evicted, and every hit is
    /// exactly one of fast, locked, or joined.
    pub fn is_consistent(&self) -> bool {
        self.entries as u64 + self.evictions == self.inserts
            && self.hits == self.fast_hits + self.locked_hits + self.flight_joins
    }
}

/// The outcome of [`ShardedLruCache::insert`].
#[derive(Clone, Debug)]
pub struct Inserted<V> {
    /// The winning value for the key: the caller's value if it was inserted,
    /// or the already-present value if another thread raced the insert
    /// (keep-first semantics, so every caller shares one allocation).
    pub value: V,
    /// Whether the caller's value was actually inserted (`false` on a raced
    /// re-insert of a present key, which only refreshes recency).
    pub fresh: bool,
    /// The keys evicted to make room, oldest victim first (the cache's own
    /// references, handed over rather than copied — eviction allocates
    /// nothing beyond this vector). At most one entry under the count bound;
    /// a weighted insert may evict several light entries at once.
    pub evicted: Vec<Arc<[u8]>>,
}

/// How a [`ShardedLruCache::get_or_compute`] call was served.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FlightOutcome {
    /// Served on the read fast lane; the recency touch was skipped because
    /// the LRU mutex was busy.
    FastHit,
    /// Served from the cache with the recency touch taken (the LRU mutex was
    /// free).
    LockedHit,
    /// Parked on another thread's in-flight computation and received the
    /// leader's committed value.
    Joined,
    /// This call was the single-flight leader: it ran the compute closure
    /// and committed the value.
    Led,
}

impl FlightOutcome {
    /// Whether the value came from the cache subsystem (a hit or a join)
    /// rather than this caller's own computation.
    pub fn served_from_cache(self) -> bool {
        !matches!(self, FlightOutcome::Led)
    }
}

/// The result of [`ShardedLruCache::get_or_compute`]: the winning value and
/// how this particular call obtained it.
#[derive(Clone, Debug)]
pub struct Computed<V> {
    /// The committed value for the key, shared by the leader and every
    /// joiner of the same flight.
    pub value: V,
    /// How this call was served.
    pub outcome: FlightOutcome,
}

/// One slab node: a key threaded onto the shard's intrusive LRU list by slot
/// index. Values live in the read-mostly index, not here — eviction and
/// recency bookkeeping never clone or drop a value under the LRU mutex.
#[derive(Debug)]
struct Node {
    /// Shared with the index's key (one allocation, refcounted).
    key: Arc<[u8]>,
    /// The value's weight as priced at insert time (1 under the unit
    /// weigher); remembered so eviction never re-prices a value.
    weight: u64,
    /// Slot index of the next-more-recent node (`NIL` at the head).
    prev: u32,
    /// Slot index of the next-less-recent node (`NIL` at the tail).
    next: u32,
}

/// One index entry: the cached value and the LRU slot its recency node
/// occupies. Readable under the index *read* lock; every mutation holds the
/// LRU mutex *and* the index write lock, so a reader holding the read lock
/// that wins a `try_lock` on the LRU mutex sees map and slab in agreement.
#[derive(Debug)]
struct IndexEntry<V> {
    value: V,
    slot: u32,
}

/// The recency machinery plus the consistency-critical counters, all inside
/// one mutex (see "Counter discipline" in the module docs).
#[derive(Debug)]
struct LruState {
    /// Entry-count bound (`usize::MAX` in weighted mode).
    capacity: usize,
    /// Resident-weight bound (`u64::MAX` in count mode).
    weight_capacity: u64,
    /// Slot-indexed node storage; `None` marks a free slot awaiting reuse.
    slab: Vec<Option<Node>>,
    /// Free slot indices (filled by evictions, drained by inserts).
    free: Vec<u32>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot — the eviction victim (`NIL` when empty).
    tail: u32,
    /// Resident entries; mirrors the index map's length, updated in the same
    /// critical section as `inserts`/`evictions` so snapshots balance.
    entries: usize,
    inserts: u64,
    evictions: u64,
    peak_entries: usize,
    /// Total weight of the resident entries (== `entries` in count mode).
    weight: u64,
    peak_weight: u64,
}

impl LruState {
    fn new(capacity: usize, weight_capacity: u64) -> Self {
        LruState {
            capacity,
            weight_capacity,
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            entries: 0,
            inserts: 0,
            evictions: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
        }
    }

    fn node(&self, i: u32) -> &Node {
        self.slab[i as usize].as_ref().expect("linked slot is live")
    }

    fn node_mut(&mut self, i: u32) -> &mut Node {
        self.slab[i as usize].as_mut().expect("linked slot is live")
    }

    /// Unlinks slot `i` from the recency list.
    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Links slot `i` in as the most recently used node.
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.node_mut(h).prev = i,
        }
        self.head = i;
    }

    /// Moves slot `i` to the head of the recency list.
    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
    }

    /// Allocates a slot for a fresh entry and links it in as most recent,
    /// charging its weight. Returns the slot index for the index entry.
    fn link_front(&mut self, key: Arc<[u8]>, weight: u64) -> u32 {
        let node = Node {
            key,
            weight,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                (self.slab.len() - 1) as u32
            }
        };
        self.push_front(i);
        self.entries += 1;
        self.weight += weight;
        i
    }

    /// Removes the LRU victim and returns its key; the slot goes on the free
    /// list. Allocation-free: the node's own key reference is handed back.
    /// The caller must remove the same key from the index map.
    fn evict_tail(&mut self) -> Arc<[u8]> {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "evict on an empty shard");
        self.detach(i);
        let node = self.slab[i as usize].take().expect("tail slot is live");
        self.free.push(i);
        self.evictions += 1;
        self.entries -= 1;
        self.weight -= node.weight;
        node.key
    }

    /// Whether the shard currently exceeds either of its bounds. The
    /// `entries > 1` guard keeps a single entry heavier than the whole
    /// weight budget resident rather than thrashing (see the module docs).
    fn over_budget(&self) -> bool {
        (self.entries > self.capacity || self.weight > self.weight_capacity) && self.entries > 1
    }
}

/// The progress of one in-flight computation.
#[derive(Debug)]
enum FlightState<V> {
    /// The leader is still computing.
    Running,
    /// The leader committed this value; joiners clone it.
    Resolved(V),
    /// The leader died (panicked or returned an error) without committing;
    /// waiters must re-probe and elect a new leader.
    Abandoned,
}

/// One in-flight computation: the parked-waiter slot installed in the flight
/// table while a leader computes a cold key.
#[derive(Debug)]
struct FlightSlot<V> {
    state: Mutex<FlightState<V>>,
    arrived: Condvar,
    /// Threads currently inside [`FlightSlot::join`] — a diagnostic for
    /// [`ShardedLruCache::flight_waiters`] (and deterministic tests).
    waiters: AtomicUsize,
}

impl<V: Clone> FlightSlot<V> {
    fn new() -> Self {
        FlightSlot {
            state: Mutex::new(FlightState::Running),
            arrived: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Parks until the leader resolves or abandons the flight. `Some` is the
    /// leader's committed value; `None` means the leader died and the caller
    /// must retry (possibly leading itself).
    fn join(&self) -> Option<V> {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut state = lock(&self.state);
        let outcome = loop {
            match &*state {
                FlightState::Running => {
                    state = self
                        .arrived
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                FlightState::Resolved(value) => break Some(value.clone()),
                FlightState::Abandoned => break None,
            }
        };
        drop(state);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        outcome
    }

    fn resolve(&self, value: V) {
        *lock(&self.state) = FlightState::Resolved(value);
        self.arrived.notify_all();
    }

    fn abandon(&self) {
        *lock(&self.state) = FlightState::Abandoned;
        self.arrived.notify_all();
    }
}

type Index<V> = HashMap<Arc<[u8]>, IndexEntry<V>>;
type FlightMap<V> = HashMap<Arc<[u8]>, Arc<FlightSlot<V>>>;

/// One independent shard: index + LRU state + flight table + tallies. Lock
/// order where multiple are held: flight table → LRU mutex → index write
/// lock; the hit path holds the index *read* lock and only ever `try_lock`s
/// the LRU mutex (never blocks), so no cycle exists.
#[derive(Debug)]
struct CacheShard<V> {
    index: RwLock<Index<V>>,
    lru: Mutex<LruState>,
    flights: Mutex<FlightMap<V>>,
    fast_hits: AtomicU64,
    locked_hits: AtomicU64,
    misses: AtomicU64,
    flight_leaders: AtomicU64,
    flight_joins: AtomicU64,
    bytes_hits: AtomicU64,
    bytes_misses: AtomicU64,
}

impl<V: Clone> CacheShard<V> {
    fn new(capacity: usize, weight_capacity: u64) -> Self {
        CacheShard {
            index: RwLock::new(HashMap::new()),
            lru: Mutex::new(LruState::new(capacity, weight_capacity)),
            flights: Mutex::new(HashMap::new()),
            fast_hits: AtomicU64::new(0),
            locked_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            flight_leaders: AtomicU64::new(0),
            flight_joins: AtomicU64::new(0),
            bytes_hits: AtomicU64::new(0),
            bytes_misses: AtomicU64::new(0),
        }
    }

    /// The hit fast lane: index read lock, value clone, *sampled* recency
    /// touch. Returns the value and whether the touch was taken (`true` =
    /// locked hit, `false` = fast hit); the matching tally is counted here.
    fn hit(&self, key: &[u8]) -> Option<(V, bool)> {
        let index = read(&self.index);
        let entry = index.get(key)?;
        let value = entry.value.clone();
        // Holding the read lock pins the map: any mutation needs the index
        // write lock AND the LRU mutex, so winning this try_lock proves no
        // mutation is mid-flight and `entry.slot` is live and ours.
        let touched = match self.lru.try_lock() {
            Ok(mut lru) => {
                debug_assert_eq!(&*lru.node(entry.slot).key, key, "slot/key agreement");
                lru.touch(entry.slot);
                true
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                let mut lru = poisoned.into_inner();
                lru.touch(entry.slot);
                true
            }
            Err(TryLockError::WouldBlock) => false,
        };
        if touched {
            self.locked_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fast_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((value, touched))
    }

    fn insert(&self, key: Arc<[u8]>, value: V, weigher: fn(&V) -> u64) -> Inserted<V> {
        // The clone and the weigher are the only operations here that could
        // conceivably panic; they run before any lock is taken so a poisoned
        // shard can never hold a half-linked list.
        let stored = value.clone();
        let weight = weigher(&value);
        let mut lru = lock(&self.lru);
        let mut index = write(&self.index);
        // One hash probe decides present-vs-fresh AND claims the map slot
        // (`entry` instead of `get` + `insert`): on the eviction path this
        // is one of only two probes per insert, which is what keeps the
        // measured cost flat as the map outgrows the CPU caches.
        let claimed = match index.entry(key) {
            hash_map::Entry::Occupied(e) => Err((e.get().slot, e.get().value.clone())),
            hash_map::Entry::Vacant(e) => {
                let slot = lru.link_front(Arc::clone(e.key()), weight);
                e.insert(IndexEntry {
                    value: stored,
                    slot,
                });
                Ok(())
            }
        };
        match claimed {
            // Keep-first: another thread won the race to this key; refresh
            // its recency and hand back the shared value.
            Err((slot, winner)) => {
                lru.touch(slot);
                Inserted {
                    value: winner,
                    fresh: false,
                    evicted: Vec::new(),
                }
            }
            Ok(()) => {
                // Evict after linking: the fresh node is the head, so the
                // tail victims are never the node just inserted (the
                // `over_budget` guard keeps at least one entry). The
                // over-budget instant is invisible outside this critical
                // section.
                let mut evicted = Vec::new();
                while lru.over_budget() {
                    let victim = lru.evict_tail();
                    index.remove(&*victim);
                    evicted.push(victim);
                }
                lru.inserts += 1;
                lru.peak_entries = lru.peak_entries.max(lru.entries);
                lru.peak_weight = lru.peak_weight.max(lru.weight);
                Inserted {
                    value,
                    fresh: true,
                    evicted,
                }
            }
        }
    }

    fn clear(&self) {
        let mut lru = lock(&self.lru);
        let mut index = write(&self.index);
        index.clear();
        lru.evictions += lru.entries as u64;
        lru.entries = 0;
        lru.weight = 0;
        lru.slab.clear();
        lru.free.clear();
        lru.head = NIL;
        lru.tail = NIL;
    }

    fn stats(&self) -> ShardStats {
        let lru = lock(&self.lru);
        let fast_hits = self.fast_hits.load(Ordering::Relaxed);
        let locked_hits = self.locked_hits.load(Ordering::Relaxed);
        let flight_joins = self.flight_joins.load(Ordering::Relaxed);
        ShardStats {
            hits: fast_hits + locked_hits + flight_joins,
            misses: self.misses.load(Ordering::Relaxed),
            entries: lru.entries,
            evictions: lru.evictions,
            inserts: lru.inserts,
            peak_entries: lru.peak_entries,
            weight: lru.weight,
            peak_weight: lru.peak_weight,
            fast_hits,
            locked_hits,
            flight_leaders: self.flight_leaders.load(Ordering::Relaxed),
            flight_joins,
            bytes_hits: self.bytes_hits.load(Ordering::Relaxed),
            bytes_misses: self.bytes_misses.load(Ordering::Relaxed),
        }
    }
}

/// Dissolves a leader's flight exactly once: on [`FlightGuard::commit`] the
/// waiters receive the committed value; if the guard drops *uncommitted* —
/// the compute closure panicked or returned an error — the flight is
/// abandoned and every waiter wakes to re-probe and elect a new leader.
/// Dissolving before resolving/abandoning means a successor can always
/// install a fresh flight; waiters already holding the slot's `Arc` are
/// unaffected by its removal from the table.
struct FlightGuard<'a, V: Clone> {
    shard: &'a CacheShard<V>,
    key: Arc<[u8]>,
    slot: Arc<FlightSlot<V>>,
    committed: bool,
}

impl<V: Clone> FlightGuard<'_, V> {
    fn dissolve(&self) {
        let mut flights = lock(&self.shard.flights);
        let removed = flights.remove(&self.key);
        debug_assert!(
            removed.is_none_or(|slot| Arc::ptr_eq(&slot, &self.slot)),
            "a leader only ever dissolves its own flight"
        );
    }

    fn commit(mut self, value: V) {
        self.dissolve();
        self.slot.resolve(value);
        self.committed = true;
    }
}

impl<V: Clone> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.committed {
            self.dissolve();
            self.slot.abandon();
        }
    }
}

/// A bounded, sharded LRU map from byte keys to cloneable values, with O(1)
/// hit-touch, insert and evict, a read-locked hot-key hit path and per-key
/// single-flight misses. See the [module docs](self) for the design.
///
/// The total `capacity` is partitioned across the shards (every shard gets at
/// least one slot; the shard count is rounded to a power of two and clamped
/// so it never exceeds the capacity), so the cache as a whole never holds
/// more than `capacity` entries. Keys are routed to shards by hash, which
/// makes per-shard LRU an approximation of global LRU — exact when
/// `shards == 1`.
pub struct ShardedLruCache<V> {
    shards: Vec<CacheShard<V>>,
    /// `shards.len() - 1`; the shard count is a power of two so routing is a
    /// single mask of the key hash.
    mask: u64,
    capacity: usize,
    weight_capacity: u64,
    /// Prices a value at insert time; `|_| 1` in count mode.
    weigher: fn(&V) -> u64,
}

impl<V> fmt::Debug for ShardedLruCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedLruCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("weight_capacity", &self.weight_capacity)
            .finish_non_exhaustive()
    }
}

impl<V: Clone> ShardedLruCache<V> {
    /// Creates a cache holding at most `capacity` entries (at least 1) split
    /// across `shards` shards. The shard count is rounded **up** to a power
    /// of two, then clamped **down** (in powers of two) so every shard owns
    /// at least one slot; [`ShardedLruCache::shards`] reports the effective
    /// count. Every entry weighs 1; see [`ShardedLruCache::with_weigher`]
    /// for a byte-cost bound instead.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::build(capacity.max(1), u64::MAX, shards, |_| 1)
    }

    /// Creates a cache bounded by total resident **weight** instead of entry
    /// count: `weigher` prices each value at insert time (typically in
    /// approximate bytes) and inserts evict LRU victims until at most
    /// `total_weight` (at least 1) is resident. One insert may evict several
    /// light entries; a single entry heavier than the whole budget stays
    /// resident alone. The shard count is rounded and clamped as in
    /// [`ShardedLruCache::new`], with the weight budget split across shards
    /// the same way capacity is.
    pub fn with_weigher(total_weight: u64, shards: usize, weigher: fn(&V) -> u64) -> Self {
        Self::build(usize::MAX, total_weight.max(1), shards, weigher)
    }

    fn build(capacity: usize, total_weight: u64, shards: usize, weigher: fn(&V) -> u64) -> Self {
        // Clamp the shard count so every shard owns at least one entry slot
        // *and* one unit of weight budget (whichever bound is active; the
        // inactive one is MAX). The u32 cap keeps `next_power_of_two` from
        // overflowing on a MAX-valued bound.
        let clamp = capacity.min(total_weight.min(u64::from(u32::MAX)) as usize);
        let shards = Self::effective_shards(clamp, shards);
        let base = capacity / shards;
        let extra = capacity % shards;
        let base_w = total_weight / shards as u64;
        let extra_w = total_weight % shards as u64;
        // The first `extra` shards absorb the remainder, so per-shard
        // budgets sum to exactly the requested totals.
        let shards: Vec<CacheShard<V>> = (0..shards)
            .map(|i| {
                CacheShard::new(
                    base + usize::from(i < extra),
                    base_w + u64::from((i as u64) < extra_w),
                )
            })
            .collect();
        ShardedLruCache {
            mask: (shards.len() - 1) as u64,
            shards,
            capacity,
            weight_capacity: total_weight,
            weigher,
        }
    }

    /// The shard count actually used for `capacity` when `requested` shards
    /// are asked for: `next_pow2(requested)`, clamped down to the largest
    /// power of two that still gives every shard at least one slot.
    fn effective_shards(capacity: usize, requested: usize) -> usize {
        let requested = requested.max(1).next_power_of_two();
        let cap_pow2 = if capacity.is_power_of_two() {
            capacity
        } else {
            capacity.next_power_of_two() >> 1
        };
        requested.min(cap_pow2)
    }

    /// The shard index `key` routes to. Stable for the lifetime of the cache
    /// (and across processes: the routing hash is deterministic), exposed so
    /// tests and diagnostics can reason per shard.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        hasher.write(key);
        (hasher.finish() & self.mask) as usize
    }

    /// Looks `key` up on the read fast lane, counting a fast or locked hit
    /// on success (see the module docs); recency is refreshed unless the LRU
    /// mutex is busy. A miss counts **nothing** (see
    /// [`ShardedLruCache::record_miss`]).
    pub fn get(&self, key: &[u8]) -> Option<V> {
        self.shards[self.shard_of(key)]
            .hit(key)
            .map(|(value, _)| value)
    }

    /// Counts one miss against `key`'s shard. Callers driving the raw
    /// get/insert cycle invoke this when they commit to computing the value,
    /// so `hits + misses` equals the number of computing lookups while pure
    /// peeks stay free. ([`ShardedLruCache::get_or_compute`] does this
    /// automatically for its leader.)
    pub fn record_miss(&self, key: &[u8]) {
        self.shards[self.shard_of(key)]
            .misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reply-bytes lane hit against `key`'s shard: a lookup whose
    /// value carried its pre-serialized reply payload, so the serving layer
    /// answered with an id-splice instead of serializing. A pure tally for
    /// the serving layer (the cache itself never inspects values), outside
    /// every structural invariant.
    pub fn record_bytes_hit(&self, key: &[u8]) {
        self.shards[self.shard_of(key)]
            .bytes_hits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reply-bytes lane miss against `key`'s shard: a cached
    /// value whose reply payload had to be serialized (and attached) before
    /// it could be spliced — at most once per resident entry per generation,
    /// since the payload then lives and dies with the entry.
    pub fn record_bytes_miss(&self, key: &[u8]) {
        self.shards[self.shard_of(key)]
            .bytes_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts `key → value`, evicting the shard's LRU entry if the shard is
    /// at capacity. If the key is already present the existing entry wins
    /// (its recency is refreshed, nothing is replaced); the returned
    /// [`Inserted::value`] is the value all callers should share.
    pub fn insert(&self, key: Vec<u8>, value: V) -> Inserted<V> {
        self.shards[self.shard_of(&key)].insert(key.into(), value, self.weigher)
    }

    /// Single-flight lookup-or-compute: a hit (fast or locked) returns
    /// immediately; on a cold key exactly one caller — the leader — runs
    /// `compute` on its own thread and commits the result, while concurrent
    /// callers for the same key park and receive the committed value
    /// ([`FlightOutcome::Joined`]).
    ///
    /// Errors are not cached: the leader's error is returned to the leader
    /// alone, and its waiters wake to re-probe and elect a new leader (as
    /// they do if the leader panics — the flight is dissolved by a drop
    /// guard, so waiters never deadlock and the panic propagates on the
    /// leader's thread only). `compute` is called at most once per
    /// `get_or_compute` call.
    ///
    /// Parking discipline: a waiter blocks only on the leader's in-place
    /// computation, which needs no pool capacity to finish — so both caller
    /// threads and pool workers may wait here without violating the
    /// engine's pool-deadlock rule (workers must never park on queued pool
    /// *jobs*; see `Engine::dispatch`).
    pub fn get_or_compute<E>(
        &self,
        key: &[u8],
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Computed<V>, E> {
        let shard = &self.shards[self.shard_of(key)];
        let mut compute = Some(compute);
        loop {
            if let Some((value, touched)) = shard.hit(key) {
                return Ok(Computed {
                    value,
                    outcome: if touched {
                        FlightOutcome::LockedHit
                    } else {
                        FlightOutcome::FastHit
                    },
                });
            }
            let mut flights = lock(&shard.flights);
            // Re-probe under the flight lock: a leader may have committed
            // and dissolved its flight between the fast probe and the lock
            // acquisition — without this check we would recompute a value
            // that is already resident.
            if let Some((value, touched)) = shard.hit(key) {
                return Ok(Computed {
                    value,
                    outcome: if touched {
                        FlightOutcome::LockedHit
                    } else {
                        FlightOutcome::FastHit
                    },
                });
            }
            if let Some(slot) = flights.get(key) {
                let slot = Arc::clone(slot);
                drop(flights);
                if let Some(value) = slot.join() {
                    shard.flight_joins.fetch_add(1, Ordering::Relaxed);
                    return Ok(Computed {
                        value,
                        outcome: FlightOutcome::Joined,
                    });
                }
                // The leader died without committing; retry — this thread
                // may find the value, join a successor, or lead itself.
                continue;
            }
            // Cold key, no flight: become the leader.
            let key_arc: Arc<[u8]> = key.to_vec().into();
            let slot = Arc::new(FlightSlot::new());
            flights.insert(Arc::clone(&key_arc), Arc::clone(&slot));
            drop(flights);
            shard.flight_leaders.fetch_add(1, Ordering::Relaxed);
            shard.misses.fetch_add(1, Ordering::Relaxed);
            let guard = FlightGuard {
                shard,
                key: Arc::clone(&key_arc),
                slot,
                committed: false,
            };
            // A panic or `Err` here drops `guard` uncommitted, which wakes
            // every waiter into recomputing. No lock is held across the
            // computation.
            let fresh = (compute.take().expect("a call leads at most one flight"))()?;
            // Commit *before* resolving the flight: a requester that misses
            // the dissolved flight must find the value resident.
            let value = shard.insert(key_arc, fresh, self.weigher).value;
            guard.commit(value.clone());
            return Ok(Computed {
                value,
                outcome: FlightOutcome::Led,
            });
        }
    }

    /// Threads currently parked on in-flight computations, across all
    /// shards. A diagnostic: tests use it to release a gated leader only
    /// once every expected waiter is provably parked, and operators can poll
    /// it to observe stampedes being absorbed.
    pub fn flight_waiters(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                lock(&shard.flights)
                    .values()
                    .map(|slot| slot.waiters.load(Ordering::SeqCst))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Drops every entry in every shard. Counters are kept; the dropped
    /// entries count as evictions so `entries + evictions == inserts` keeps
    /// holding.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clear();
        }
    }

    /// One `(key, value)` pair per resident entry, for persistence: within
    /// each shard entries are listed **coldest first** (the eviction victim
    /// leads), shards in shard order. Re-inserting a snapshot in the
    /// returned order therefore reproduces each shard's relative recency —
    /// the hottest snapshotted entries end up most recent, so a smaller
    /// restore target evicts the cold tail first.
    ///
    /// Each shard is captured in one critical section (LRU mutex + index
    /// read lock, the mutators' own order), so every pair was resident
    /// simultaneously; concurrent mutations of *other* shards proceed
    /// untouched. A pure read: no counter moves and no recency changes.
    pub fn snapshot_entries(&self) -> Vec<(Arc<[u8]>, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let lru = lock(&shard.lru);
            let index = read(&shard.index);
            let mut slot = lru.tail;
            while slot != NIL {
                let node = lru.node(slot);
                if let Some(entry) = index.get(&node.key) {
                    out.push((Arc::clone(&node.key), entry.value.clone()));
                }
                slot = node.prev;
            }
        }
        out
    }

    /// Aggregated counters: the sum of one consistent per-shard snapshot
    /// each (shards are snapshotted one at a time, so each shard's numbers
    /// are internally consistent even while other threads keep mutating
    /// other shards).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
            evictions: 0,
            inserts: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
            fast_hits: 0,
            locked_hits: 0,
            flight_leaders: 0,
            flight_joins: 0,
            bytes_hits: 0,
            bytes_misses: 0,
            shards: self.shards.len(),
        };
        for stats in self.shard_stats() {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.evictions += stats.evictions;
            total.inserts += stats.inserts;
            total.peak_entries += stats.peak_entries;
            total.weight += stats.weight;
            total.peak_weight += stats.peak_weight;
            total.fast_hits += stats.fast_hits;
            total.locked_hits += stats.locked_hits;
            total.flight_leaders += stats.flight_leaders;
            total.flight_joins += stats.flight_joins;
            total.bytes_hits += stats.bytes_hits;
            total.bytes_misses += stats.bytes_misses;
        }
        total
    }

    /// One consistent [`ShardStats`] snapshot per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(CacheShard::stats).collect()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.lru).entries).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The total entry-count bound across all shards (`usize::MAX` for a
    /// weight-bounded cache).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The total resident-weight bound across all shards (`u64::MAX` for a
    /// count-bounded cache).
    pub fn weight_capacity(&self) -> u64 {
        self.weight_capacity
    }

    /// The effective (power-of-two) shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn get_insert_evict_are_wired() {
        let cache = ShardedLruCache::new(2, 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        assert!(cache.insert(key(1), 10u32).fresh);
        assert!(cache.insert(key(2), 20).fresh);
        assert_eq!(cache.get(&key(1)), Some(10));
        // Full: inserting a third evicts the LRU (key 2, since 1 was touched).
        let outcome = cache.insert(key(3), 30);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(&*outcome.evicted[0], &key(2)[..]);
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.evictions, stats.inserts), (1, 1, 3));
        assert_eq!(stats.peak_entries, 2);
        assert!(stats.entries as u64 + stats.evictions == stats.inserts);
        // Uncontended, the hit refreshed recency under the LRU mutex.
        assert_eq!((stats.locked_hits, stats.fast_hits), (1, 0));
    }

    /// A 1-shard cache must reproduce the old engine's *global* LRU victim
    /// order exactly: the scripted trace mirrors the engine regression test
    /// `lru_eviction_prefers_least_recently_used` key for key.
    #[test]
    fn one_shard_reproduces_global_lru_victim_order() {
        let cache = ShardedLruCache::new(2, 1);
        assert_eq!(cache.shards(), 1);
        let (a, b, c) = (key(100), key(200), key(300));
        assert!(cache.insert(a.clone(), 'a').evicted.is_empty()); // [a]
        assert!(cache.insert(b.clone(), 'b').evicted.is_empty()); // [a, b]
        assert_eq!(cache.get(&a), Some('a')); // a becomes most recent
                                              // Full → the victim must be b (LRU), not a (FIFO order).
        assert_eq!(
            cache
                .insert(c.clone(), 'c')
                .evicted
                .first()
                .map(|k| k.to_vec()),
            Some(b.clone())
        );
        assert_eq!(cache.get(&a), Some('a'), "a survived");
        // Re-inserting b now evicts c, the new LRU (a was just touched).
        assert_eq!(
            cache.insert(b, 'B').evicted.first().map(|k| k.to_vec()),
            Some(c)
        );
        assert_eq!(cache.get(&a), Some('a'), "a outlived both evictions");
    }

    #[test]
    fn reinserting_a_present_key_keeps_the_first_value() {
        let cache = ShardedLruCache::new(4, 1);
        assert!(cache.insert(key(7), 1u32).fresh);
        let raced = cache.insert(key(7), 2);
        assert!(!raced.fresh);
        assert_eq!(raced.value, 1, "keep-first: the existing entry wins");
        assert!(raced.evicted.is_empty());
        assert_eq!(
            cache.stats().inserts,
            1,
            "a raced re-insert is not an insert"
        );
    }

    #[test]
    fn shard_count_is_pow2_and_clamped_to_capacity() {
        assert_eq!(ShardedLruCache::<u8>::new(64, 3).shards(), 4);
        assert_eq!(ShardedLruCache::<u8>::new(64, 4).shards(), 4);
        // Capacity 1 forces a single shard, whatever was requested.
        assert_eq!(ShardedLruCache::<u8>::new(1, 8).shards(), 1);
        // Capacity 3 supports at most 2 shards (largest power of two ≤ 3).
        assert_eq!(ShardedLruCache::<u8>::new(3, 8).shards(), 2);
        assert_eq!(ShardedLruCache::<u8>::new(8, 0).shards(), 1);
    }

    #[test]
    fn capacity_is_partitioned_exactly_across_shards() {
        // Capacity 5 over 2 shards: 3 + 2 slots. Fill far past capacity and
        // the cache as a whole must never exceed 5 resident entries.
        let cache = ShardedLruCache::new(5, 2);
        for i in 0..100u64 {
            cache.insert(key(i), i);
            assert!(cache.len() <= 5, "resident entries exceeded capacity");
        }
        assert_eq!(cache.len(), 5);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.evictions, 95);
    }

    #[test]
    fn clear_counts_evictions_and_keeps_the_invariant() {
        let cache = ShardedLruCache::new(8, 2);
        for i in 0..6u64 {
            cache.insert(key(i), ());
        }
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 6);
        for shard in cache.shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
        // The cache stays usable after a clear.
        cache.insert(key(42), ());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn record_miss_is_per_shard() {
        let cache = ShardedLruCache::<u8>::new(16, 4);
        let k = key(9);
        let shard = cache.shard_of(&k);
        cache.record_miss(&k);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard[shard].misses, 1);
        let elsewhere: u64 = per_shard
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != shard)
            .map(|(_, s)| s.misses)
            .sum();
        assert_eq!(elsewhere, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn bytes_lane_tallies_are_per_shard_and_invariant_free() {
        let cache = ShardedLruCache::<u8>::new(16, 4);
        let k = key(11);
        let shard = cache.shard_of(&k);
        cache.insert(k.clone(), 1);
        cache.record_bytes_miss(&k);
        cache.record_bytes_hit(&k);
        cache.record_bytes_hit(&k);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard[shard].bytes_hits, 2);
        assert_eq!(per_shard[shard].bytes_misses, 1);
        for (i, stats) in per_shard.iter().enumerate() {
            assert!(stats.is_consistent(), "{stats:?}");
            if i != shard {
                assert_eq!((stats.bytes_hits, stats.bytes_misses), (0, 0));
            }
        }
        let total = cache.stats();
        assert_eq!((total.bytes_hits, total.bytes_misses), (2, 1));
        // The bytes lane never disturbs the hit/miss accounting.
        assert_eq!((total.hits, total.misses), (0, 0));
    }

    #[test]
    fn stats_display_mentions_the_new_fields() {
        let cache = ShardedLruCache::new(4, 2);
        cache.insert(key(1), 1u8);
        cache.get(&key(1));
        let shown = cache.stats().to_string();
        assert!(shown.contains("1 hits"), "{shown}");
        assert!(shown.contains("2 shards"), "{shown}");
        assert!(shown.contains("1 inserts"), "{shown}");
        assert!(shown.contains("weight 1"), "{shown}");
        assert!(shown.contains("1 locked"), "{shown}");
        assert!(shown.contains("0 fast"), "{shown}");
        assert!(shown.contains("flight leaders"), "{shown}");
        assert!(shown.contains("bytes hits"), "{shown}");
        assert!(shown.contains("bytes misses"), "{shown}");
    }

    #[test]
    fn unit_weigher_weight_tracks_entry_count() {
        let cache = ShardedLruCache::new(3, 1);
        for i in 0..5u64 {
            cache.insert(key(i), i);
            let stats = cache.stats();
            assert_eq!(stats.weight, stats.entries as u64);
            assert_eq!(stats.peak_weight, stats.peak_entries as u64);
        }
        assert_eq!(cache.weight_capacity(), u64::MAX);
    }

    #[test]
    fn weighted_insert_evicts_until_the_budget_fits() {
        // Budget 10, values weigh their own magnitude.
        let cache = ShardedLruCache::with_weigher(10, 1, |v: &u64| *v);
        assert_eq!(cache.capacity(), usize::MAX);
        assert_eq!(cache.weight_capacity(), 10);
        cache.insert(key(1), 3);
        cache.insert(key(2), 3);
        cache.insert(key(3), 3); // resident weight 9
        assert_eq!(cache.stats().weight, 9);
        // Inserting weight 7 must evict the two oldest light entries
        // (3 + 3) to get 9 + 7 = 16 back under 10.
        let outcome = cache.insert(key(4), 7);
        assert_eq!(outcome.evicted.len(), 2);
        assert_eq!(&*outcome.evicted[0], &key(1)[..], "oldest victim first");
        assert_eq!(&*outcome.evicted[1], &key(2)[..]);
        let stats = cache.stats();
        assert_eq!(stats.weight, 10);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        assert!(stats.peak_weight <= 10, "peak is measured post-eviction");
    }

    #[test]
    fn over_heavy_entry_stays_resident_alone() {
        let cache = ShardedLruCache::with_weigher(10, 1, |v: &u64| *v);
        cache.insert(key(1), 4);
        // Weight 25 exceeds the whole budget: everything else is evicted,
        // but the entry itself stays (a cache that cannot hold its current
        // working item would thrash forever).
        let outcome = cache.insert(key(2), 25);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(cache.get(&key(2)), Some(25));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().weight, 25);
        // The next light insert displaces it again.
        let outcome = cache.insert(key(3), 1);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(&*outcome.evicted[0], &key(2)[..]);
        assert_eq!(cache.stats().weight, 1);
    }

    #[test]
    fn weighted_clear_resets_weight_and_keeps_the_invariant() {
        let cache = ShardedLruCache::with_weigher(100, 2, |v: &u64| *v + 1);
        for i in 0..6u64 {
            cache.insert(key(i), i);
        }
        let before = cache.stats();
        assert!(before.weight > 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.weight, 0);
        assert_eq!(stats.entries, 0);
        for shard in cache.shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
        assert!(stats.peak_weight >= before.weight);
    }

    #[test]
    fn weighted_shard_count_is_clamped_by_the_budget() {
        // Budget 3 supports at most 2 shards (largest power of two <= 3).
        assert_eq!(ShardedLruCache::with_weigher(3, 8, |_: &u8| 1).shards(), 2);
        assert_eq!(ShardedLruCache::with_weigher(64, 4, |_: &u8| 1).shards(), 4);
        // The budget partitions across shards like capacity does: 5 over 2
        // shards is 3 + 2, so unit-weight entries behave like capacity 5.
        let cache = ShardedLruCache::with_weigher(5, 2, |_: &u64| 1);
        for i in 0..100u64 {
            cache.insert(key(i), i);
            assert!(cache.stats().weight <= 5);
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn get_or_compute_leads_once_then_hits() {
        let cache = ShardedLruCache::new(4, 1);
        let first = cache
            .get_or_compute::<()>(&key(1), || Ok(11u32))
            .expect("compute succeeds");
        assert_eq!(first.value, 11);
        assert_eq!(first.outcome, FlightOutcome::Led);
        assert!(first.outcome == FlightOutcome::Led && !first.outcome.served_from_cache());
        // Warm: served from the cache, recency touched (no contention).
        let second = cache
            .get_or_compute::<()>(&key(1), || panic!("must not recompute"))
            .expect("hit");
        assert_eq!(second.value, 11);
        assert_eq!(second.outcome, FlightOutcome::LockedHit);
        assert!(second.outcome.served_from_cache());
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.flight_leaders), (1, 1));
        assert_eq!(
            (stats.hits, stats.locked_hits, stats.flight_joins),
            (1, 1, 0)
        );
        assert_eq!(stats.inserts, 1);
        assert_eq!(cache.flight_waiters(), 0, "no flight survives its leader");
    }

    #[test]
    fn get_or_compute_error_is_not_cached() {
        let cache = ShardedLruCache::<u32>::new(4, 1);
        let err = cache
            .get_or_compute(&key(5), || Err("boom"))
            .expect_err("compute failed");
        assert_eq!(err, "boom");
        let stats = cache.stats();
        // The failed leader still counted a miss (a computation was
        // committed to) but inserted nothing.
        assert_eq!((stats.misses, stats.flight_leaders), (1, 1));
        assert_eq!((stats.entries, stats.inserts), (0, 0));
        // A retry recomputes and succeeds; the flight table holds no corpse.
        let retry = cache
            .get_or_compute::<()>(&key(5), || Ok(50))
            .expect("retry succeeds");
        assert_eq!(retry.outcome, FlightOutcome::Led);
        assert_eq!(cache.get(&key(5)), Some(50));
        assert_eq!(cache.flight_waiters(), 0);
    }

    /// A panicking leader must dissolve its flight (the drop guard) so a
    /// subsequent requester can lead — and no cache lock stays poisoned.
    #[test]
    fn panicking_leader_dissolves_its_flight() {
        let cache = std::sync::Arc::new(ShardedLruCache::<u32>::new(4, 1));
        let for_panic = std::sync::Arc::clone(&cache);
        let k = key(9);
        let k2 = k.clone();
        let died = std::thread::spawn(move || {
            let _ = for_panic.get_or_compute::<()>(&k2, || panic!("leader dies"));
        })
        .join();
        assert!(died.is_err(), "the leader's panic propagates to its thread");
        // The cache survived: same key computes fine, stats stay consistent.
        let retry = cache
            .get_or_compute::<()>(&k, || Ok(90))
            .expect("new leader succeeds");
        assert_eq!(retry.outcome, FlightOutcome::Led);
        assert_eq!(cache.get(&k), Some(90));
        let stats = cache.stats();
        assert_eq!(stats.flight_leaders, 2, "both elections counted");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserts, 1, "only the successful leader inserted");
        for shard in cache.shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
    }

    /// Gated leader + provably-parked waiters: every waiter joins and
    /// receives the leader's value, none recomputes.
    #[test]
    fn waiters_join_a_gated_leader() {
        const WAITERS: usize = 4;
        let cache = std::sync::Arc::new(ShardedLruCache::<u32>::new(8, 1));
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let k = key(3);

        std::thread::scope(|scope| {
            let leader_cache = std::sync::Arc::clone(&cache);
            let leader_key = k.clone();
            scope.spawn(move || {
                let led = leader_cache
                    .get_or_compute::<()>(&leader_key, || {
                        gate_rx.recv().expect("gate opens");
                        Ok(30)
                    })
                    .expect("leader commits");
                assert_eq!(led.outcome, FlightOutcome::Led);
            });
            // Wait for the flight to exist, then launch the joiners.
            while cache.stats().flight_leaders == 0 {
                std::thread::yield_now();
            }
            for _ in 0..WAITERS {
                let cache = std::sync::Arc::clone(&cache);
                let k = k.clone();
                scope.spawn(move || {
                    let joined = cache
                        .get_or_compute::<()>(&k, || panic!("joiner must not compute"))
                        .expect("joiner served");
                    assert_eq!(joined.value, 30, "joiner observes the leader's value");
                    assert_eq!(joined.outcome, FlightOutcome::Joined);
                });
            }
            // Release the gate only once every waiter is provably parked.
            while cache.flight_waiters() < WAITERS {
                std::thread::yield_now();
            }
            gate_tx.send(()).expect("leader is parked on the gate");
        });

        let stats = cache.stats();
        assert_eq!(stats.flight_joins, WAITERS as u64);
        assert_eq!(
            (stats.flight_leaders, stats.misses, stats.inserts),
            (1, 1, 1)
        );
        assert_eq!(cache.flight_waiters(), 0);
    }

    #[test]
    fn snapshot_entries_lists_coldest_first_and_counts_nothing() {
        let cache = ShardedLruCache::new(4, 1);
        for i in 0..4 {
            cache.insert(key(i), i);
        }
        cache.get(&key(0)); // 0 becomes most recent: order is 1, 2, 3, 0
        let before = cache.stats();
        let snapshot = cache.snapshot_entries();
        assert_eq!(cache.stats(), before, "a pure read moves no counter");
        let values: Vec<u64> = snapshot.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 2, 3, 0], "coldest first, hit moved to back");
        for (k, v) in &snapshot {
            assert_eq!(k.as_ref(), key(*v).as_slice(), "keys pair their values");
        }

        // Re-inserting in snapshot order into a smaller cache keeps the
        // hottest entries and evicts the cold prefix.
        let restored = ShardedLruCache::new(2, 1);
        for (k, v) in snapshot {
            restored.insert(k.to_vec(), v);
        }
        assert_eq!(restored.get(&key(3)), Some(3));
        assert_eq!(restored.get(&key(0)), Some(0));
        assert_eq!(restored.get(&key(1)), None, "cold tail evicted first");
        let stats = restored.stats();
        assert_eq!(stats.entries as u64 + stats.evictions, stats.inserts);

        assert!(ShardedLruCache::<u64>::new(4, 2)
            .snapshot_entries()
            .is_empty());
    }
}
