//! The sharded, O(1)-per-operation memo cache behind [`Engine`](crate::Engine).
//!
//! [`ShardedLruCache`] replaces the engine's original single-lock cache, whose
//! LRU eviction scanned every entry for its victim on insert (O(entries)) and
//! whose one `RwLock` serialized all writers. Here the key space is split
//! across N **shards** (N a power of two; keys are hash-routed), each shard an
//! independent [`Mutex`] guarding
//!
//! * a `HashMap` from key to slot index, and
//! * a slab of nodes threaded onto an **intrusive doubly-linked LRU list**
//!   (`prev`/`next` are slot indices into the slab — no pointers, no
//!   `unsafe`), most-recent at the head, eviction victim at the tail.
//!
//! Hit-touch (unlink + relink at head), insert, and evict (pop the tail) are
//! all O(1), and operations on different shards never contend. A single-shard
//! cache is exactly the old global LRU: same victims, in the same order.
//!
//! **Counter discipline.** Every shard keeps its own counters
//! (hits/misses/inserts/evictions plus the entry high-water mark) *inside* the
//! mutex, updated in the same critical section as the mutation they describe.
//! A [`ShardStats`] snapshot is therefore internally consistent at any
//! instant — in particular `entries + evictions == inserts` holds for every
//! snapshot, even one taken mid-stampede — and [`ShardedLruCache::stats`]
//! aggregates those per-shard snapshots into the engine-level [`CacheStats`].
//!
//! **Miss discipline.** [`ShardedLruCache::get`] counts a hit on success and
//! *nothing* on a miss; misses are recorded explicitly via
//! [`ShardedLruCache::record_miss`]. This keeps the engine's long-standing
//! accounting: a peek miss ([`Engine::cached`](crate::Engine::cached)) costs
//! nothing, while every actual computation counts exactly one miss.
//!
//! **Weighing.** [`ShardedLruCache::new`] bounds the cache by entry *count*
//! — every entry weighs 1. [`ShardedLruCache::with_weigher`] bounds it by
//! total *weight* instead: a caller-supplied weigher prices each value (for
//! example in approximate bytes) at insert time, and an insert evicts LRU
//! victims until the shard's resident weight fits its budget again — so one
//! insert can evict several light entries, and a single entry heavier than
//! the whole budget stays resident alone (a cache that cannot hold its
//! current working item at all would thrash forever). The two modes share
//! every code path: count mode is weight mode with the unit weigher.

use std::collections::hash_map::{self, DefaultHasher};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::{Arc, Mutex, MutexGuard};

/// The null slot index terminating the intrusive list. Slot indices are
/// `u32` deliberately: a slab node is `key + value + 8` bytes, so the cold
/// cache lines an eviction must touch stay few (and 4 billion slots per
/// shard is far beyond any realistic capacity).
const NIL: u32 = u32::MAX;

/// Aggregated cache-effectiveness counters of an [`Engine`](crate::Engine):
/// the sum of one internally consistent [`ShardStats`] snapshot per shard
/// (see the [module docs](self) for the consistency guarantee).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to be computed (recorded at computation time, so
    /// concurrent threads stampeding a cold key may each count one).
    pub misses: u64,
    /// Distinct problems currently cached.
    pub entries: usize,
    /// Entries removed: LRU capacity victims plus entries dropped by
    /// [`Engine::clear_cache`](crate::Engine::clear_cache). Counting both
    /// keeps `entries + evictions == inserts` true at every snapshot.
    pub evictions: u64,
    /// Entries ever inserted (a raced re-insert of a present key keeps the
    /// first entry and does not count).
    pub inserts: u64,
    /// Sum of the per-shard entry high-water marks — an upper bound on how
    /// many entries were ever resident at once.
    pub peak_entries: usize,
    /// Total weight of the resident entries, as priced by the cache's
    /// weigher (equal to `entries` under the default unit weigher).
    pub weight: u64,
    /// Sum of the per-shard weight high-water marks — an upper bound on the
    /// resident weight ever held at once.
    pub peak_weight: u64,
    /// Number of independent shards the key space is split across.
    pub shards: usize,
}

impl CacheStats {
    /// The fraction of lookups served from the cache, in `[0, 1]`
    /// (`0.0` before any lookup happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit ratio), {} entries (peak {}), \
             weight {} (peak {}), {} evictions / {} inserts, {} shards",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.entries,
            self.peak_entries,
            self.weight,
            self.peak_weight,
            self.evictions,
            self.inserts,
            self.shards
        )
    }
}

/// One shard's counters, snapshotted atomically under the shard's mutex.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Lookups this shard served from its map.
    pub hits: u64,
    /// Misses recorded against this shard via
    /// [`ShardedLruCache::record_miss`].
    pub misses: u64,
    /// Entries currently resident in this shard.
    pub entries: usize,
    /// Entries this shard removed (capacity victims and clears).
    pub evictions: u64,
    /// Entries ever inserted into this shard.
    pub inserts: u64,
    /// High-water mark of `entries`.
    pub peak_entries: usize,
    /// Total weight of this shard's resident entries.
    pub weight: u64,
    /// High-water mark of `weight`.
    pub peak_weight: u64,
}

impl ShardStats {
    /// The bookkeeping invariant every snapshot satisfies: each inserted
    /// entry is either still resident or was evicted.
    pub fn is_consistent(&self) -> bool {
        self.entries as u64 + self.evictions == self.inserts
    }
}

/// The outcome of [`ShardedLruCache::insert`].
#[derive(Clone, Debug)]
pub struct Inserted<V> {
    /// The winning value for the key: the caller's value if it was inserted,
    /// or the already-present value if another thread raced the insert
    /// (keep-first semantics, so every caller shares one allocation).
    pub value: V,
    /// Whether the caller's value was actually inserted (`false` on a raced
    /// re-insert of a present key, which only refreshes recency).
    pub fresh: bool,
    /// The keys evicted to make room, oldest victim first (the cache's own
    /// references, handed over rather than copied — eviction allocates
    /// nothing beyond this vector). At most one entry under the count bound;
    /// a weighted insert may evict several light entries at once.
    pub evicted: Vec<Arc<[u8]>>,
}

/// One slab node: a key/value pair threaded onto the shard's intrusive LRU
/// list by slot index.
#[derive(Debug)]
struct Node<V> {
    /// Shared with the map's key (one allocation, refcounted): the hash
    /// probe and the recency-list touch read the same key bytes, instead of
    /// two copies occupying two cache lines.
    key: Arc<[u8]>,
    value: V,
    /// The value's weight as priced at insert time (1 under the unit
    /// weigher); remembered so eviction never re-prices a value.
    weight: u64,
    /// Slot index of the next-more-recent node (`NIL` at the head).
    prev: u32,
    /// Slot index of the next-less-recent node (`NIL` at the tail).
    next: u32,
}

/// One independent shard: map + slab + intrusive list + counters, all under
/// the owning mutex.
#[derive(Debug)]
struct Shard<V> {
    /// Entry-count bound (`usize::MAX` in weighted mode).
    capacity: usize,
    /// Resident-weight bound (`u64::MAX` in count mode).
    weight_capacity: u64,
    /// Prices a value at insert time; `|_| 1` in count mode.
    weigher: fn(&V) -> u64,
    map: HashMap<Arc<[u8]>, u32>,
    /// Slot-indexed node storage; `None` marks a free slot awaiting reuse.
    slab: Vec<Option<Node<V>>>,
    /// Free slot indices (filled by evictions, drained by inserts).
    free: Vec<u32>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot — the eviction victim (`NIL` when empty).
    tail: u32,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    peak_entries: usize,
    /// Total weight of the resident entries (== `map.len()` in count mode).
    weight: u64,
    peak_weight: u64,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize, weight_capacity: u64, weigher: fn(&V) -> u64) -> Self {
        Shard {
            capacity,
            weight_capacity,
            weigher,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
        }
    }

    fn node(&self, i: u32) -> &Node<V> {
        self.slab[i as usize].as_ref().expect("linked slot is live")
    }

    fn node_mut(&mut self, i: u32) -> &mut Node<V> {
        self.slab[i as usize].as_mut().expect("linked slot is live")
    }

    /// Unlinks slot `i` from the recency list.
    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Links slot `i` in as the most recently used node.
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.node_mut(h).prev = i,
        }
        self.head = i;
    }

    /// Moves slot `i` to the head of the recency list.
    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<V> {
        let i = *self.map.get(key)?;
        self.touch(i);
        self.hits += 1;
        Some(self.node(i).value.clone())
    }

    /// Removes the LRU victim and returns its key; the slot goes on the free
    /// list with its value dropped eagerly. Allocation-free: the node's own
    /// key reference is handed back.
    fn evict_tail(&mut self) -> Arc<[u8]> {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "evict on an empty shard");
        self.detach(i);
        let node = self.slab[i as usize].take().expect("tail slot is live");
        self.map.remove(&*node.key);
        self.free.push(i);
        self.evictions += 1;
        self.weight -= node.weight;
        node.key
    }

    /// Whether the shard currently exceeds either of its bounds. The
    /// `len() > 1` guard keeps a single entry heavier than the whole weight
    /// budget resident rather than thrashing (see the module docs).
    fn over_budget(&self) -> bool {
        (self.map.len() > self.capacity || self.weight > self.weight_capacity) && self.map.len() > 1
    }

    fn insert(&mut self, key: Vec<u8>, value: V) -> Inserted<V> {
        // The clone and the weigher are the only operations here that could
        // conceivably panic; they run before any mutation so a poisoned
        // shard can never hold a half-linked list.
        let stored = value.clone();
        let weight = (self.weigher)(&value);
        let key: Arc<[u8]> = key.into();
        let node_key = Arc::clone(&key);
        // One hash probe decides present-vs-fresh AND claims the map slot
        // (`entry` instead of `get` + `insert`): on the eviction path this
        // is one of only two probes per insert, which is what keeps the
        // measured cost flat as the map outgrows the CPU caches.
        let claimed = match self.map.entry(key) {
            hash_map::Entry::Occupied(e) => Err(*e.get()),
            hash_map::Entry::Vacant(e) => {
                let node = Node {
                    key: node_key,
                    value: stored,
                    weight,
                    prev: NIL,
                    next: NIL,
                };
                let i = match self.free.pop() {
                    Some(i) => {
                        self.slab[i as usize] = Some(node);
                        i
                    }
                    None => {
                        self.slab.push(Some(node));
                        (self.slab.len() - 1) as u32
                    }
                };
                e.insert(i);
                Ok(i)
            }
        };
        match claimed {
            // Keep-first: another thread won the race to this key; refresh
            // its recency and hand back the shared value.
            Err(i) => {
                self.touch(i);
                Inserted {
                    value: self.node(i).value.clone(),
                    fresh: false,
                    evicted: Vec::new(),
                }
            }
            Ok(i) => {
                self.push_front(i);
                self.weight += weight;
                // Evict after linking: the fresh node is the head, so the
                // tail victims are never the node just inserted (the
                // `over_budget` guard keeps at least one entry). The
                // over-budget instant is invisible outside this critical
                // section.
                let mut evicted = Vec::new();
                while self.over_budget() {
                    evicted.push(self.evict_tail());
                }
                self.inserts += 1;
                self.peak_entries = self.peak_entries.max(self.map.len());
                self.peak_weight = self.peak_weight.max(self.weight);
                Inserted {
                    value,
                    fresh: true,
                    evicted,
                }
            }
        }
    }

    fn clear(&mut self) {
        self.evictions += self.map.len() as u64;
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weight = 0;
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            evictions: self.evictions,
            inserts: self.inserts,
            peak_entries: self.peak_entries,
            weight: self.weight,
            peak_weight: self.peak_weight,
        }
    }
}

/// A bounded, sharded LRU map from byte keys to cloneable values, with O(1)
/// hit-touch, insert and evict. See the [module docs](self) for the design.
///
/// The total `capacity` is partitioned across the shards (every shard gets at
/// least one slot; the shard count is rounded to a power of two and clamped
/// so it never exceeds the capacity), so the cache as a whole never holds
/// more than `capacity` entries. Keys are routed to shards by hash, which
/// makes per-shard LRU an approximation of global LRU — exact when
/// `shards == 1`.
#[derive(Debug)]
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; the shard count is a power of two so routing is a
    /// single mask of the key hash.
    mask: u64,
    capacity: usize,
    weight_capacity: u64,
}

impl<V: Clone> ShardedLruCache<V> {
    /// Creates a cache holding at most `capacity` entries (at least 1) split
    /// across `shards` shards. The shard count is rounded **up** to a power
    /// of two, then clamped **down** (in powers of two) so every shard owns
    /// at least one slot; [`ShardedLruCache::shards`] reports the effective
    /// count. Every entry weighs 1; see [`ShardedLruCache::with_weigher`]
    /// for a byte-cost bound instead.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::build(capacity.max(1), u64::MAX, shards, |_| 1)
    }

    /// Creates a cache bounded by total resident **weight** instead of entry
    /// count: `weigher` prices each value at insert time (typically in
    /// approximate bytes) and inserts evict LRU victims until at most
    /// `total_weight` (at least 1) is resident. One insert may evict several
    /// light entries; a single entry heavier than the whole budget stays
    /// resident alone. The shard count is rounded and clamped as in
    /// [`ShardedLruCache::new`], with the weight budget split across shards
    /// the same way capacity is.
    pub fn with_weigher(total_weight: u64, shards: usize, weigher: fn(&V) -> u64) -> Self {
        Self::build(usize::MAX, total_weight.max(1), shards, weigher)
    }

    fn build(capacity: usize, total_weight: u64, shards: usize, weigher: fn(&V) -> u64) -> Self {
        // Clamp the shard count so every shard owns at least one entry slot
        // *and* one unit of weight budget (whichever bound is active; the
        // inactive one is MAX). The u32 cap keeps `next_power_of_two` from
        // overflowing on a MAX-valued bound.
        let clamp = capacity.min(total_weight.min(u64::from(u32::MAX)) as usize);
        let shards = Self::effective_shards(clamp, shards);
        let base = capacity / shards;
        let extra = capacity % shards;
        let base_w = total_weight / shards as u64;
        let extra_w = total_weight % shards as u64;
        // The first `extra` shards absorb the remainder, so per-shard
        // budgets sum to exactly the requested totals.
        let shards: Vec<Mutex<Shard<V>>> = (0..shards)
            .map(|i| {
                Mutex::new(Shard::new(
                    base + usize::from(i < extra),
                    base_w + u64::from((i as u64) < extra_w),
                    weigher,
                ))
            })
            .collect();
        ShardedLruCache {
            mask: (shards.len() - 1) as u64,
            shards,
            capacity,
            weight_capacity: total_weight,
        }
    }

    /// The shard count actually used for `capacity` when `requested` shards
    /// are asked for: `next_pow2(requested)`, clamped down to the largest
    /// power of two that still gives every shard at least one slot.
    fn effective_shards(capacity: usize, requested: usize) -> usize {
        let requested = requested.max(1).next_power_of_two();
        let cap_pow2 = if capacity.is_power_of_two() {
            capacity
        } else {
            capacity.next_power_of_two() >> 1
        };
        requested.min(cap_pow2)
    }

    /// The shard index `key` routes to. Stable for the lifetime of the cache
    /// (and across processes: the routing hash is deterministic), exposed so
    /// tests and diagnostics can reason per shard.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let mut hasher = DefaultHasher::new();
        hasher.write(key);
        (hasher.finish() & self.mask) as usize
    }

    /// Locks shard `index`. The critical sections never leave the list
    /// mid-mutation (see `Shard::insert` on panic safety), so a poisoned
    /// lock is safe to see through — matching the engine's long-standing
    /// behavior of surviving panicking jobs.
    fn shard(&self, index: usize) -> MutexGuard<'_, Shard<V>> {
        self.shards[index]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks `key` up, refreshing its LRU recency and counting a hit on
    /// success. A miss counts **nothing** (see [`ShardedLruCache::record_miss`]).
    pub fn get(&self, key: &[u8]) -> Option<V> {
        self.shard(self.shard_of(key)).get(key)
    }

    /// Counts one miss against `key`'s shard. Callers invoke this when they
    /// commit to computing the value, so `hits + misses` equals the number
    /// of computing lookups while pure peeks stay free.
    pub fn record_miss(&self, key: &[u8]) {
        self.shard(self.shard_of(key)).misses += 1;
    }

    /// Inserts `key → value`, evicting the shard's LRU entry if the shard is
    /// at capacity. If the key is already present the existing entry wins
    /// (its recency is refreshed, nothing is replaced); the returned
    /// [`Inserted::value`] is the value all callers should share.
    pub fn insert(&self, key: Vec<u8>, value: V) -> Inserted<V> {
        self.shard(self.shard_of(&key)).insert(key, value)
    }

    /// Drops every entry in every shard. Counters are kept; the dropped
    /// entries count as evictions so `entries + evictions == inserts` keeps
    /// holding.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.shard(i).clear();
        }
    }

    /// Aggregated counters: the sum of one consistent per-shard snapshot
    /// each (shards are locked one at a time, so each shard's numbers are
    /// internally consistent even while other threads keep mutating other
    /// shards).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
            evictions: 0,
            inserts: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
            shards: self.shards.len(),
        };
        for stats in self.shard_stats() {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.evictions += stats.evictions;
            total.inserts += stats.inserts;
            total.peak_entries += stats.peak_entries;
            total.weight += stats.weight;
            total.peak_weight += stats.peak_weight;
        }
        total
    }

    /// One consistent [`ShardStats`] snapshot per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len())
            .map(|i| self.shard(i).stats())
            .collect()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The total entry-count bound across all shards (`usize::MAX` for a
    /// weight-bounded cache).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The total resident-weight bound across all shards (`u64::MAX` for a
    /// count-bounded cache).
    pub fn weight_capacity(&self) -> u64 {
        self.weight_capacity
    }

    /// The effective (power-of-two) shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn get_insert_evict_are_wired() {
        let cache = ShardedLruCache::new(2, 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        assert!(cache.insert(key(1), 10u32).fresh);
        assert!(cache.insert(key(2), 20).fresh);
        assert_eq!(cache.get(&key(1)), Some(10));
        // Full: inserting a third evicts the LRU (key 2, since 1 was touched).
        let outcome = cache.insert(key(3), 30);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(&*outcome.evicted[0], &key(2)[..]);
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.evictions, stats.inserts), (1, 1, 3));
        assert_eq!(stats.peak_entries, 2);
        assert!(stats.entries as u64 + stats.evictions == stats.inserts);
    }

    /// A 1-shard cache must reproduce the old engine's *global* LRU victim
    /// order exactly: the scripted trace mirrors the engine regression test
    /// `lru_eviction_prefers_least_recently_used` key for key.
    #[test]
    fn one_shard_reproduces_global_lru_victim_order() {
        let cache = ShardedLruCache::new(2, 1);
        assert_eq!(cache.shards(), 1);
        let (a, b, c) = (key(100), key(200), key(300));
        assert!(cache.insert(a.clone(), 'a').evicted.is_empty()); // [a]
        assert!(cache.insert(b.clone(), 'b').evicted.is_empty()); // [a, b]
        assert_eq!(cache.get(&a), Some('a')); // a becomes most recent
                                              // Full → the victim must be b (LRU), not a (FIFO order).
        assert_eq!(
            cache
                .insert(c.clone(), 'c')
                .evicted
                .first()
                .map(|k| k.to_vec()),
            Some(b.clone())
        );
        assert_eq!(cache.get(&a), Some('a'), "a survived");
        // Re-inserting b now evicts c, the new LRU (a was just touched).
        assert_eq!(
            cache.insert(b, 'B').evicted.first().map(|k| k.to_vec()),
            Some(c)
        );
        assert_eq!(cache.get(&a), Some('a'), "a outlived both evictions");
    }

    #[test]
    fn reinserting_a_present_key_keeps_the_first_value() {
        let cache = ShardedLruCache::new(4, 1);
        assert!(cache.insert(key(7), 1u32).fresh);
        let raced = cache.insert(key(7), 2);
        assert!(!raced.fresh);
        assert_eq!(raced.value, 1, "keep-first: the existing entry wins");
        assert!(raced.evicted.is_empty());
        assert_eq!(
            cache.stats().inserts,
            1,
            "a raced re-insert is not an insert"
        );
    }

    #[test]
    fn shard_count_is_pow2_and_clamped_to_capacity() {
        assert_eq!(ShardedLruCache::<u8>::new(64, 3).shards(), 4);
        assert_eq!(ShardedLruCache::<u8>::new(64, 4).shards(), 4);
        // Capacity 1 forces a single shard, whatever was requested.
        assert_eq!(ShardedLruCache::<u8>::new(1, 8).shards(), 1);
        // Capacity 3 supports at most 2 shards (largest power of two ≤ 3).
        assert_eq!(ShardedLruCache::<u8>::new(3, 8).shards(), 2);
        assert_eq!(ShardedLruCache::<u8>::new(8, 0).shards(), 1);
    }

    #[test]
    fn capacity_is_partitioned_exactly_across_shards() {
        // Capacity 5 over 2 shards: 3 + 2 slots. Fill far past capacity and
        // the cache as a whole must never exceed 5 resident entries.
        let cache = ShardedLruCache::new(5, 2);
        for i in 0..100u64 {
            cache.insert(key(i), i);
            assert!(cache.len() <= 5, "resident entries exceeded capacity");
        }
        assert_eq!(cache.len(), 5);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.evictions, 95);
    }

    #[test]
    fn clear_counts_evictions_and_keeps_the_invariant() {
        let cache = ShardedLruCache::new(8, 2);
        for i in 0..6u64 {
            cache.insert(key(i), ());
        }
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 6);
        for shard in cache.shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
        // The cache stays usable after a clear.
        cache.insert(key(42), ());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn record_miss_is_per_shard() {
        let cache = ShardedLruCache::<u8>::new(16, 4);
        let k = key(9);
        let shard = cache.shard_of(&k);
        cache.record_miss(&k);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard[shard].misses, 1);
        let elsewhere: u64 = per_shard
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != shard)
            .map(|(_, s)| s.misses)
            .sum();
        assert_eq!(elsewhere, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn stats_display_mentions_the_new_fields() {
        let cache = ShardedLruCache::new(4, 2);
        cache.insert(key(1), 1u8);
        cache.get(&key(1));
        let shown = cache.stats().to_string();
        assert!(shown.contains("1 hits"), "{shown}");
        assert!(shown.contains("2 shards"), "{shown}");
        assert!(shown.contains("1 inserts"), "{shown}");
        assert!(shown.contains("weight 1"), "{shown}");
    }

    #[test]
    fn unit_weigher_weight_tracks_entry_count() {
        let cache = ShardedLruCache::new(3, 1);
        for i in 0..5u64 {
            cache.insert(key(i), i);
            let stats = cache.stats();
            assert_eq!(stats.weight, stats.entries as u64);
            assert_eq!(stats.peak_weight, stats.peak_entries as u64);
        }
        assert_eq!(cache.weight_capacity(), u64::MAX);
    }

    #[test]
    fn weighted_insert_evicts_until_the_budget_fits() {
        // Budget 10, values weigh their own magnitude.
        let cache = ShardedLruCache::with_weigher(10, 1, |v: &u64| *v);
        assert_eq!(cache.capacity(), usize::MAX);
        assert_eq!(cache.weight_capacity(), 10);
        cache.insert(key(1), 3);
        cache.insert(key(2), 3);
        cache.insert(key(3), 3); // resident weight 9
        assert_eq!(cache.stats().weight, 9);
        // Inserting weight 7 must evict the two oldest light entries
        // (3 + 3) to get 9 + 7 = 16 back under 10.
        let outcome = cache.insert(key(4), 7);
        assert_eq!(outcome.evicted.len(), 2);
        assert_eq!(&*outcome.evicted[0], &key(1)[..], "oldest victim first");
        assert_eq!(&*outcome.evicted[1], &key(2)[..]);
        let stats = cache.stats();
        assert_eq!(stats.weight, 10);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        assert!(stats.peak_weight <= 10, "peak is measured post-eviction");
    }

    #[test]
    fn over_heavy_entry_stays_resident_alone() {
        let cache = ShardedLruCache::with_weigher(10, 1, |v: &u64| *v);
        cache.insert(key(1), 4);
        // Weight 25 exceeds the whole budget: everything else is evicted,
        // but the entry itself stays (a cache that cannot hold its current
        // working item would thrash forever).
        let outcome = cache.insert(key(2), 25);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(cache.get(&key(2)), Some(25));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().weight, 25);
        // The next light insert displaces it again.
        let outcome = cache.insert(key(3), 1);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(&*outcome.evicted[0], &key(2)[..]);
        assert_eq!(cache.stats().weight, 1);
    }

    #[test]
    fn weighted_clear_resets_weight_and_keeps_the_invariant() {
        let cache = ShardedLruCache::with_weigher(100, 2, |v: &u64| *v + 1);
        for i in 0..6u64 {
            cache.insert(key(i), i);
        }
        let before = cache.stats();
        assert!(before.weight > 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.weight, 0);
        assert_eq!(stats.entries, 0);
        for shard in cache.shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
        assert!(stats.peak_weight >= before.weight);
    }

    #[test]
    fn weighted_shard_count_is_clamped_by_the_budget() {
        // Budget 3 supports at most 2 shards (largest power of two <= 3).
        assert_eq!(ShardedLruCache::with_weigher(3, 8, |_: &u8| 1).shards(), 2);
        assert_eq!(ShardedLruCache::with_weigher(64, 4, |_: &u8| 1).shards(), 4);
        // The budget partitions across shards like capacity does: 5 over 2
        // shards is 3 + 2, so unit-weight entries behave like capacity 5.
        let cache = ShardedLruCache::with_weigher(5, 2, |_: &u64| 1);
        for i in 0..100u64 {
            cache.insert(key(i), i);
            assert!(cache.stats().weight <= 5);
        }
        assert_eq!(cache.len(), 5);
    }
}
