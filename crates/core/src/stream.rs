//! Streaming solve: label instances of millions of nodes in O(window) memory.
//!
//! [`Engine::solve`] materializes the instance, the network and the full
//! labeling — three O(n) allocations. For the `solve_stream` service path the
//! instance instead arrives as a [`StreamInstanceSpec`] (topology, length,
//! input rule), and [`Engine::solve_stream`] returns a [`StreamSolution`]: a
//! cursor that synthesizes the optimal LOCAL algorithm once and then produces
//! the labeling chunk by chunk, verifying incrementally, without ever holding
//! more than one chunk plus one view window in memory.
//!
//! The per-node views are byte-identical to what
//! [`SyncSimulator::view`](lcl_local_sim::SyncSimulator::view) builds over a
//! materialized [`Network`](lcl_local_sim::Network) with sequential
//! identifiers: on a cycle the simulator's wrap-and-pad walk visits position
//! `(i ± k) mod n` at offset `±k` for every `k ≤ radius`, and on a path the
//! walks clip at the endpoints — both reproducible by index arithmetic over
//! the spec's O(1) input oracle. Streamed labelings therefore match
//! [`Engine::solve`] exactly wherever both apply.
//!
//! Only O(1) and O(log* n) problems can stream: their synthesized algorithms
//! have views of bounded radius. A [`Complexity::Linear`] problem's
//! gather-and-solve algorithm needs the whole instance and is rejected up
//! front, as are unsolvable problems.

use crate::engine::Engine;
use crate::verdict::{Classification, Complexity};
use crate::{ClassifierError, Result};
use lcl_local_sim::{BallView, LocalAlgorithm, SimError};
use lcl_problem::{NormalizedLcl, OutLabel, StreamInstanceSpec, Topology};
use std::sync::Arc;

/// Safety cap on streamed view radii, mirroring the default
/// [`SyncSimulator`](lcl_local_sim::SyncSimulator) cap.
pub const STREAM_RADIUS_CAP: usize = 1 << 22;

/// An in-progress streaming solve: classification plus a cursor over the
/// labeling.
///
/// Produced by [`Engine::solve_stream`]. Call [`Self::next_chunk`] until it
/// returns `None`; each call simulates and verifies the next block of nodes.
/// The memory high-water mark is one chunk plus one radius-`r` view window,
/// observable through [`Self::peak_resident_nodes`].
#[derive(Debug)]
pub struct StreamSolution {
    problem: NormalizedLcl,
    spec: StreamInstanceSpec,
    classification: Arc<Classification>,
    radius: usize,
    n: u64,
    alpha: usize,
    /// Next node index to emit; `n` once the stream is exhausted.
    next: u64,
    /// Output of node 0, kept for the cycle's wrap-around edge check.
    first: Option<OutLabel>,
    /// Output of the previously emitted node, for the incremental edge check.
    prev: Option<OutLabel>,
    peak_resident: usize,
    failed: bool,
}

impl StreamSolution {
    fn new(
        problem: &NormalizedLcl,
        spec: &StreamInstanceSpec,
        classification: Arc<Classification>,
    ) -> Result<Self> {
        match classification.complexity() {
            Complexity::Unsolvable => {
                return Err(ClassifierError::Solve {
                    what: format!(
                        "problem {} is unsolvable (witness of length {})",
                        problem.name(),
                        classification
                            .unsolvability_witness()
                            .map_or(0, lcl_problem::Instance::len),
                    ),
                });
            }
            Complexity::Linear => {
                return Err(ClassifierError::Solve {
                    what: format!(
                        "problem {} needs Θ(n) rounds (gather-and-solve); \
                         solve_stream supports only O(1) and O(log* n) problems",
                        problem.name(),
                    ),
                });
            }
            Complexity::Constant | Complexity::LogStar => {}
        }
        let n = spec.length;
        let n_usize = usize::try_from(n).map_err(|_| ClassifierError::TooLarge {
            what: format!("streamed instance of {n} nodes exceeds the address space"),
        })?;
        let radius = classification.algorithm().radius(n_usize);
        if radius > STREAM_RADIUS_CAP {
            return Err(SimError::RadiusTooLarge {
                radius,
                cap: STREAM_RADIUS_CAP,
            }
            .into());
        }
        Ok(StreamSolution {
            problem: problem.clone(),
            spec: spec.clone(),
            classification,
            radius,
            n,
            alpha: problem.num_inputs(),
            next: 0,
            first: None,
            prev: None,
            peak_resident: 0,
            failed: false,
        })
    }

    /// The classification backing the stream.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The complexity class of the problem.
    pub fn complexity(&self) -> Complexity {
        self.classification.complexity()
    }

    /// The number of LOCAL rounds (= view radius) the synthesized algorithm
    /// uses on this instance length.
    pub fn rounds(&self) -> usize {
        self.radius
    }

    /// Total number of nodes the stream describes.
    pub fn nodes(&self) -> u64 {
        self.n
    }

    /// Number of nodes already emitted by [`Self::next_chunk`].
    pub fn emitted(&self) -> u64 {
        self.next
    }

    /// High-water mark of simultaneously materialized nodes: the largest
    /// chunk emitted so far plus the `2·radius + 1` nodes of one view window.
    /// Stays O(chunk + radius) however long the instance — the streaming
    /// guarantee the benches assert.
    pub fn peak_resident_nodes(&self) -> usize {
        self.peak_resident
    }

    /// Builds node `i`'s radius-`r` ball view by index arithmetic, replicating
    /// `SyncSimulator::view` over sequential identifiers (`id(p) = p + 1`).
    fn view_at(&self, i: u64) -> BallView {
        let n = self.n;
        let radius = self.radius;
        let entry = |p: u64| (p + 1, self.spec.input_at(p, self.alpha));
        let (left, right): (Vec<_>, Vec<_>) = match self.spec.topology {
            Topology::Cycle => (
                (1..=radius as u64)
                    .map(|k| entry((i + n - k % n) % n))
                    .collect(),
                (1..=radius as u64).map(|k| entry((i + k) % n)).collect(),
            ),
            Topology::Path => (
                (1..=radius as u64)
                    .take_while(|&k| k <= i)
                    .map(|k| entry(i - k))
                    .collect(),
                (1..=radius as u64)
                    .take_while(|&k| i + k < n)
                    .map(|k| entry(i + k))
                    .collect(),
            ),
        };
        BallView {
            n: self.n as usize,
            radius,
            center: entry(i),
            left,
            right,
        }
    }

    /// Simulates and verifies the next `max_nodes` nodes (at least one).
    ///
    /// Returns `None` once every node has been emitted or after a failure;
    /// chunks arrive in node order, and the concatenation of all chunks is
    /// exactly the labeling [`Engine::solve`] would produce on the
    /// materialized instance.
    ///
    /// # Errors
    ///
    /// `Some(Err(..))` if the synthesized algorithm's output violates a node
    /// or edge constraint at some position (for a cycle, the wrap-around edge
    /// is checked while emitting the final chunk). Solvable problems can
    /// still have degenerate instances with no valid labeling — e.g. 3-cycle
    /// coloring of a 1-node cycle — and this is how a streamed solve reports
    /// them. The error is terminal: subsequent calls return `None`.
    pub fn next_chunk(&mut self, max_nodes: usize) -> Option<Result<Vec<OutLabel>>> {
        if self.failed || self.next >= self.n {
            return None;
        }
        let classification = Arc::clone(&self.classification);
        let algorithm = classification.algorithm();
        let end = self.n.min(self.next + max_nodes.max(1) as u64);
        let mut chunk = Vec::with_capacity((end - self.next) as usize);
        for i in self.next..end {
            let view = self.view_at(i);
            let label = algorithm.compute(&view);
            if !self.problem.node_ok(view.center.1, label) {
                return Some(Err(self.fail(i, "node")));
            }
            if let Some(prev) = self.prev {
                if !self.problem.edge_ok(prev, label) {
                    return Some(Err(self.fail(i, "edge")));
                }
            }
            if i == 0 {
                self.first = Some(label);
            }
            self.prev = Some(label);
            chunk.push(label);
            self.peak_resident = self.peak_resident.max(chunk.len() + 2 * self.radius + 1);
        }
        self.next = end;
        if self.next == self.n && self.spec.topology == Topology::Cycle {
            // The wrap-around edge closes the cycle; check it before handing
            // out the final chunk so a bad seam surfaces as an error, not as
            // a silently invalid labeling.
            let (last, first) = (self.prev.expect("emitted"), self.first.expect("emitted"));
            if !self.problem.edge_ok(last, first) {
                return Some(Err(self.fail(0, "wrap-around edge")));
            }
        }
        Some(Ok(chunk))
    }

    /// Marks the stream failed and builds the terminal error.
    fn fail(&mut self, at: u64, which: &str) -> ClassifierError {
        self.failed = true;
        ClassifierError::Solve {
            what: format!(
                "synthesized {} algorithm violated the {which} constraint at node {at} of a \
                 streamed {}-node {}; this instance admits no labeling the algorithm can find",
                self.complexity(),
                self.n,
                self.spec.topology,
            ),
        }
    }
}

impl Engine {
    /// Classifies the problem on the worker pool, then returns a
    /// [`StreamSolution`] cursor that labels the streamed instance chunk by
    /// chunk in O(chunk + radius) memory.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs ([`StreamInstanceSpec::validate`]), unsolvable
    /// and Θ(n) problems, and view radii beyond [`STREAM_RADIUS_CAP`];
    /// propagates classification errors.
    pub fn solve_stream(
        &self,
        problem: &NormalizedLcl,
        spec: &StreamInstanceSpec,
    ) -> Result<StreamSolution> {
        spec.validate(problem.num_inputs())?;
        let classification = self.classify_pooled(problem)?;
        StreamSolution::new(problem, spec, classification)
    }

    /// [`Engine::solve_stream`], with the classification done on the calling
    /// thread instead of the worker pool — for callers already running *on* a
    /// pool worker (the server's dispatched request jobs), which must not
    /// park on other pool jobs (see [`Engine::dispatch`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::solve_stream`].
    pub fn solve_stream_inline(
        &self,
        problem: &NormalizedLcl,
        spec: &StreamInstanceSpec,
    ) -> Result<StreamSolution> {
        spec.validate(problem.num_inputs())?;
        let classification = self.classify(problem)?;
        StreamSolution::new(problem, spec, classification)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::StreamInputs;

    fn coloring(k: u16) -> NormalizedLcl {
        let mut b = NormalizedLcl::builder(format!("{k}-coloring"));
        b.input_labels(&["x"]);
        let names: Vec<String> = (1..=k).map(|i| i.to_string()).collect();
        b.output_labels(&names);
        b.allow_all_node_pairs();
        for p in 0..k {
            for q in 0..k {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn trivial() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("trivial");
        b.input_labels(&["x", "y"]);
        b.output_labels(&["o"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    fn spec(topology: Topology, length: u64, inputs: StreamInputs) -> StreamInstanceSpec {
        StreamInstanceSpec {
            topology,
            length,
            inputs,
        }
    }

    fn drain(solution: &mut StreamSolution, chunk: usize) -> Vec<OutLabel> {
        let mut all = Vec::new();
        while let Some(part) = solution.next_chunk(chunk) {
            all.extend(part.expect("chunk must verify"));
        }
        all
    }

    #[test]
    fn streamed_labeling_matches_materialized_solve() {
        // LogStar problems stream on cycles; the synthesized log-star
        // algorithm does not handle long paths (a limitation it shares with
        // `Engine::solve`, which streaming reproduces exactly). Constant
        // problems stream on both topologies.
        let engine = Engine::builder().parallelism(1).build();
        for (topology, problem, inputs) in [
            (
                Topology::Cycle,
                coloring(3),
                StreamInputs::Uniform { label: 0 },
            ),
            (
                Topology::Cycle,
                trivial(),
                StreamInputs::Pattern {
                    pattern: vec![0, 1],
                },
            ),
            (Topology::Path, trivial(), StreamInputs::Seeded { seed: 11 }),
            (
                Topology::Path,
                trivial(),
                StreamInputs::Pattern {
                    pattern: vec![1, 0, 0],
                },
            ),
        ] {
            {
                let spec = spec(topology, 257, inputs);
                let mut streamed = engine.solve_stream(&problem, &spec).unwrap();
                let concat = drain(&mut streamed, 7);
                let instance = spec.materialize(problem.num_inputs());
                let solved = engine.solve(&problem, &instance).unwrap();
                assert_eq!(
                    concat,
                    solved.labeling().outputs(),
                    "stream vs solve diverged: {} on a {topology}",
                    problem.name(),
                );
                assert_eq!(streamed.rounds(), solved.rounds());
                assert_eq!(streamed.complexity(), solved.complexity());
                assert_eq!(streamed.emitted(), 257);
                assert!(streamed.next_chunk(7).is_none(), "stream is exhausted");
            }
        }
    }

    #[test]
    fn chunk_boundaries_do_not_change_the_labeling() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = coloring(3);
        let spec = spec(Topology::Cycle, 100, StreamInputs::Uniform { label: 0 });
        let baseline = drain(&mut engine.solve_stream(&problem, &spec).unwrap(), 100);
        for chunk in [1, 3, 64, 1000] {
            let got = drain(&mut engine.solve_stream(&problem, &spec).unwrap(), chunk);
            assert_eq!(got, baseline, "chunk size {chunk} changed the output");
        }
    }

    #[test]
    fn memory_stays_windowed_on_long_instances() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = trivial();
        // Uniform inputs keep the synthesized algorithm on its fast periodic
        // core path; random inputs would stream just as correctly but pay a
        // per-node gap scan.
        let n = 100_000u64;
        let spec = spec(Topology::Path, n, StreamInputs::Uniform { label: 1 });
        let mut solution = engine.solve_stream(&problem, &spec).unwrap();
        let labels = drain(&mut solution, 4096);
        assert_eq!(labels.len() as u64, n);
        let window = 2 * solution.rounds() + 1;
        assert_eq!(solution.peak_resident_nodes(), 4096 + window);
        assert!((solution.peak_resident_nodes() as u64) < n / 10);
    }

    #[test]
    fn rejects_unsolvable_and_linear_problems() {
        let engine = Engine::builder().parallelism(1).build();
        let two = coloring(2); // unsolvable on odd cycles
        let s = spec(Topology::Cycle, 10, StreamInputs::Uniform { label: 0 });
        let err = engine.solve_stream(&two, &s).unwrap_err();
        assert!(err.to_string().contains("unsolvable"), "{err}");

        // Global orientation: output 0 before 1, with the flip allowed only
        // once — solvable on paths but Θ(n) (gather-and-solve).
        let mut b = NormalizedLcl::builder("orient");
        b.input_labels(&["x"]);
        b.output_labels(&["a", "b"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 0);
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 1);
        let orient = b.build().unwrap();
        let engine2 = Engine::builder().parallelism(1).build();
        let verdict = engine2.classify(&orient).unwrap();
        if verdict.complexity() == Complexity::Linear {
            let err = engine2.solve_stream(&orient, &s).unwrap_err();
            assert!(err.to_string().contains("gather-and-solve"), "{err}");
        }
    }

    #[test]
    fn invalid_specs_and_degenerate_instances_are_reported() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = coloring(3);
        // Out-of-alphabet input label.
        let bad = spec(Topology::Cycle, 10, StreamInputs::Uniform { label: 7 });
        assert!(matches!(
            engine.solve_stream(&problem, &bad).unwrap_err(),
            ClassifierError::Problem(_)
        ));
        // A 1-node cycle admits no proper coloring: the wrap-around edge
        // check must fail while emitting the final chunk.
        let singleton = spec(Topology::Cycle, 1, StreamInputs::Uniform { label: 0 });
        let mut solution = engine.solve_stream(&problem, &singleton).unwrap();
        let err = solution.next_chunk(8).unwrap().unwrap_err();
        assert!(err.to_string().contains("wrap-around"), "{err}");
        assert!(solution.next_chunk(8).is_none(), "failure is terminal");
    }

    #[test]
    fn solve_stream_inline_matches_pooled_and_is_pool_safe() {
        let engine = Arc::new(Engine::builder().parallelism(1).build());
        let problem = coloring(3);
        let s = spec(Topology::Cycle, 64, StreamInputs::Uniform { label: 0 });
        let pooled = drain(&mut engine.solve_stream(&problem, &s).unwrap(), 10);
        let inline = drain(&mut engine.solve_stream_inline(&problem, &s).unwrap(), 10);
        assert_eq!(pooled, inline);
        // Safe from a dispatched job even on a single-worker pool.
        let engine_for_task = Arc::clone(&engine);
        let rx = engine.dispatch(move || {
            let mut sol = engine_for_task.solve_stream_inline(&problem, &s)?;
            let mut count = 0u64;
            while let Some(chunk) = sol.next_chunk(16) {
                count += chunk?.len() as u64;
            }
            Ok::<u64, ClassifierError>(count)
        });
        assert_eq!(rx.recv().unwrap().unwrap(), 64);
    }

    #[test]
    fn streamed_views_match_the_simulator_exactly() {
        // The index-arithmetic views must be byte-identical to what the
        // simulator builds over the materialized network — wrap, pad and
        // clip included (radius beyond n exercises the cycle pad).
        let engine = Engine::builder().parallelism(1).build();
        let problem = trivial();
        for topology in [Topology::Cycle, Topology::Path] {
            let s = spec(topology, 5, StreamInputs::Seeded { seed: 3 });
            let mut solution = engine.solve_stream(&problem, &s).unwrap();
            solution.radius = 7; // force the pad/clip regime
            let network =
                lcl_local_sim::Network::with_sequential_ids(s.materialize(problem.num_inputs()));
            let sim = lcl_local_sim::SyncSimulator::new();
            for i in 0..5 {
                assert_eq!(
                    solution.view_at(i as u64),
                    sim.view(&network, i, 7),
                    "view {i} diverged on a {topology}"
                );
            }
        }
    }
}
