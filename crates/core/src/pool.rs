//! The persistent worker pool behind [`Engine`](crate::Engine).
//!
//! [`EngineBuilder::build`](crate::EngineBuilder::build) spawns a fixed set of
//! long-lived worker threads once, at engine construction. Work enters the
//! pool through a multi-producer multi-consumer channel (the crossbeam shim),
//! so any number of callers — [`Engine::classify_many`](crate::Engine::classify_many)
//! batches, server connection threads — can inject jobs concurrently without
//! spawning a single thread on the request path. This replaces the original
//! design where `classify_many` created a fresh `std::thread::scope` per call,
//! which was unacceptable churn for a long-lived service.
//!
//! Jobs are plain boxed closures; deterministic result reassembly is the
//! submitter's job (each submission carries its own reply channel and slot
//! index — see `Engine::classify_many`). The pool exposes point-in-time
//! counters through [`PoolStats`], and shuts down gracefully on drop: the
//! injector channel is closed, workers drain the remaining queue and exit,
//! and the pool joins every worker thread.

use crossbeam::channel::{self, Receiver, Sender};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// A unit of work executed on a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Runs the wrapped hook when dropped — including during a panic unwind, so
/// completion notifications fire for jobs that died as well as jobs that
/// delivered (see [`WorkerPool::submit_with_reply_notify`]).
struct NotifyOnDrop<N: FnOnce()>(Option<N>);

impl<N: FnOnce()> Drop for NotifyOnDrop<N> {
    fn drop(&mut self) {
        if let Some(notify) = self.0.take() {
            notify();
        }
    }
}

/// Point-in-time counters of an engine's worker pool
/// (see [`Engine::pool_stats`](crate::Engine::pool_stats)).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Number of long-lived worker threads.
    pub workers: usize,
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Jobs fully executed since the pool was built.
    pub jobs_completed: u64,
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool: {} workers, queue depth {}, {} jobs completed",
            self.workers, self.queue_depth, self.jobs_completed
        )
    }
}

/// A fixed-size pool of long-lived worker threads fed by an MPMC job channel.
pub(crate) struct WorkerPool {
    /// `Some` for the pool's whole life; taken in `drop` to close the channel.
    injector: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    queue_depth: Arc<AtomicUsize>,
    jobs_completed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) worker threads.
    pub(crate) fn new(workers: usize) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let jobs_completed = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let queue_depth = Arc::clone(&queue_depth);
                let jobs_completed = Arc::clone(&jobs_completed);
                thread::Builder::new()
                    .name(format!("lcl-engine-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                            // A panicking job must not kill the worker: the
                            // pool would silently shrink for the engine's
                            // whole life. The job's reply channel is dropped
                            // by the unwind, which submitters observe as a
                            // disconnected reply.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            jobs_completed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn engine worker thread")
            })
            .collect();
        WorkerPool {
            injector: Some(tx),
            workers: handles,
            queue_depth,
            jobs_completed,
        }
    }

    /// Injects a job into the queue; some worker will pick it up in FIFO
    /// order. Never blocks (the queue is unbounded).
    pub(crate) fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        let injector = self.injector.as_ref().expect("injector lives until drop");
        if injector.send(Box::new(job)).is_err() {
            // Unreachable while the pool is alive (workers hold receivers
            // until the injector closes), but keep the accounting honest.
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Injects `task` and hands back the receiver its result will arrive on.
    ///
    /// This is the reply-channel dispatch primitive behind both the blocking
    /// request path ([`Engine::classify_pooled`](crate::Engine::classify_pooled)
    /// parks on the receiver) and the server's pipelined connection reader,
    /// which must *not* park: submission itself never blocks, so the caller
    /// is free to stash the receiver and keep reading frames while a worker
    /// computes. If the task panics on the worker, the sender is dropped by
    /// the unwind and the receiver observes disconnection instead of a value.
    pub(crate) fn submit_with_reply<T, F>(&self, task: F) -> mpsc::Receiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with_reply_notify(task, || {})
    }

    /// [`WorkerPool::submit_with_reply`] with a completion hook: `notify`
    /// runs on the worker *after* the reply has been made observable — the
    /// value was sent, or (on a panic) the sender was dropped by the unwind —
    /// so a receiver probed from the notification always sees the outcome.
    ///
    /// This is what lets a readiness-based consumer (the server's reactor
    /// thread, parked in `epoll_wait`) learn that a reply is ready without
    /// dedicating a parked thread per connection: the hook signals an eventfd
    /// instead.
    pub(crate) fn submit_with_reply_notify<T, F, N>(&self, task: F, notify: N) -> mpsc::Receiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        N: FnOnce() + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.submit(move || {
            // Drop order is load-bearing: on a panic in `task`, locals unwind
            // in reverse declaration order, so `tx` (declared last) drops
            // before `guard` fires `notify` — the receiver is guaranteed to
            // observe disconnection, never a pending-but-unnotified state.
            let guard = NotifyOnDrop(Some(notify));
            let tx = tx;
            let _ = tx.send(task());
            drop(tx);
            drop(guard);
        });
        rx
    }

    /// The number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector lets workers drain the queue and observe
        // disconnection; then join them so no worker outlives the engine.
        self.injector = None;
        let this_thread = thread::current().id();
        for handle in self.workers.drain(..) {
            // The pool can be dropped *from one of its own workers*: jobs may
            // capture the last `Arc` holding the engine (the server's
            // pipelined request jobs capture `Arc<Service>`), and whichever
            // thread drops that Arc last runs this destructor. Joining our
            // own thread would park the worker forever; detach it instead —
            // it exits on its own once `recv` observes the closed channel.
            if handle.thread().id() == this_thread {
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth.load(Ordering::Relaxed))
            .field(
                "jobs_completed",
                &self.jobs_completed.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_counters_settle() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).expect("collector alive"));
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        // jobs_completed is incremented after the job body runs; give the
        // workers a moment to finish their bookkeeping.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().jobs_completed < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "counters never settled"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.stats().queue_depth, 0);
    }

    #[test]
    fn submit_with_reply_returns_without_blocking_and_delivers() {
        let pool = WorkerPool::new(1);
        // Park the only worker so the submissions below cannot have run yet
        // when submit_with_reply returns: returning at all proves the call
        // does not wait for a worker.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            let _ = gate_rx.recv();
        });
        let replies: Vec<mpsc::Receiver<u64>> = (0..4u64)
            .map(|i| pool.submit_with_reply(move || i * i))
            .collect();
        gate_tx.send(()).expect("worker parked on the gate");
        let got: Vec<u64> = replies.iter().map(|rx| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 4, 9]);
    }

    #[test]
    fn notify_fires_after_the_reply_is_observable() {
        let pool = WorkerPool::new(1);
        let (notified_tx, notified_rx) = mpsc::channel::<()>();
        let rx = pool.submit_with_reply_notify(
            || 41u32,
            move || {
                let _ = notified_tx.send(());
            },
        );
        notified_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("notify must fire");
        // The notification promises the reply is already observable: no
        // blocking recv needed.
        assert_eq!(rx.try_recv(), Ok(41));
    }

    #[test]
    fn notify_fires_even_when_the_job_panics() {
        let pool = WorkerPool::new(1);
        let (notified_tx, notified_rx) = mpsc::channel::<()>();
        let rx = pool.submit_with_reply_notify(
            || -> u32 { panic!("job blew up") },
            move || {
                let _ = notified_tx.send(());
            },
        );
        notified_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("notify must fire on panic too");
        // By notification time the unwind has already dropped the sender.
        assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected));
    }

    #[test]
    fn submit_with_reply_panic_drops_the_sender() {
        let pool = WorkerPool::new(1);
        let rx = pool.submit_with_reply(|| -> u32 { panic!("job blew up") });
        assert!(rx.recv().is_err(), "panicked job must disconnect its reply");
        // The worker survived the panic.
        assert_eq!(pool.submit_with_reply(|| 3u32).recv(), Ok(3));
    }

    #[test]
    fn zero_requested_workers_still_yields_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("job blew up"));
        // The single worker must survive and serve the next job.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).expect("collector alive"));
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn drop_from_a_worker_does_not_self_join() {
        // A job may own the last handle to its own pool (via an Arc); the
        // pool destructor then runs on the worker, which must detach rather
        // than join itself. Without the detach this leaks a permanently
        // parked worker thread (and the reply below would still arrive, so
        // the leak is only visible to this ordering guard).
        let pool = Arc::new(WorkerPool::new(1));
        let pool_for_job = Arc::clone(&pool);
        let (tx, rx) = mpsc::channel();
        let (dropped_main_tx, dropped_main_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            // Wait until the main thread has dropped its Arc, so this job's
            // clone is provably the last one.
            dropped_main_rx.recv().expect("main signals its drop");
            drop(pool_for_job); // runs WorkerPool::drop on this worker
            tx.send(42u8).expect("collector alive");
        });
        drop(pool);
        dropped_main_tx.send(()).expect("worker waiting");
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                let _ = tx.send(());
            });
        }
        drop(tx);
        drop(pool); // joins the worker; all queued jobs must have run
        assert_eq!(rx.into_iter().count(), 8);
    }
}
