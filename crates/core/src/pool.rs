//! The persistent worker pool behind [`Engine`](crate::Engine).
//!
//! [`EngineBuilder::build`](crate::EngineBuilder::build) spawns a fixed set of
//! long-lived worker threads once, at engine construction. Work enters the
//! pool through a multi-producer multi-consumer channel (the crossbeam shim),
//! so any number of callers — [`Engine::classify_many`](crate::Engine::classify_many)
//! batches, server connection threads — can inject jobs concurrently without
//! spawning a single thread on the request path. This replaces the original
//! design where `classify_many` created a fresh `std::thread::scope` per call,
//! which was unacceptable churn for a long-lived service.
//!
//! Jobs are plain boxed closures; deterministic result reassembly is the
//! submitter's job (each submission carries its own reply channel and slot
//! index — see `Engine::classify_many`). The pool exposes point-in-time
//! counters through [`PoolStats`], and shuts down gracefully on drop: the
//! injector channel is closed, workers drain the remaining queue and exit,
//! and the pool joins every worker thread.

use crossbeam::channel::{self, Receiver, Sender};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A unit of work executed on a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time counters of an engine's worker pool
/// (see [`Engine::pool_stats`](crate::Engine::pool_stats)).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Number of long-lived worker threads.
    pub workers: usize,
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Jobs fully executed since the pool was built.
    pub jobs_completed: u64,
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool: {} workers, queue depth {}, {} jobs completed",
            self.workers, self.queue_depth, self.jobs_completed
        )
    }
}

/// A fixed-size pool of long-lived worker threads fed by an MPMC job channel.
pub(crate) struct WorkerPool {
    /// `Some` for the pool's whole life; taken in `drop` to close the channel.
    injector: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    queue_depth: Arc<AtomicUsize>,
    jobs_completed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) worker threads.
    pub(crate) fn new(workers: usize) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let jobs_completed = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let queue_depth = Arc::clone(&queue_depth);
                let jobs_completed = Arc::clone(&jobs_completed);
                thread::Builder::new()
                    .name(format!("lcl-engine-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                            // A panicking job must not kill the worker: the
                            // pool would silently shrink for the engine's
                            // whole life. The job's reply channel is dropped
                            // by the unwind, which submitters observe as a
                            // disconnected reply.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            jobs_completed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn engine worker thread")
            })
            .collect();
        WorkerPool {
            injector: Some(tx),
            workers: handles,
            queue_depth,
            jobs_completed,
        }
    }

    /// Injects a job into the queue; some worker will pick it up in FIFO
    /// order. Never blocks (the queue is unbounded).
    pub(crate) fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        let injector = self.injector.as_ref().expect("injector lives until drop");
        if injector.send(Box::new(job)).is_err() {
            // Unreachable while the pool is alive (workers hold receivers
            // until the injector closes), but keep the accounting honest.
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector lets workers drain the queue and observe
        // disconnection; then join them so no worker outlives the engine.
        self.injector = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth.load(Ordering::Relaxed))
            .field(
                "jobs_completed",
                &self.jobs_completed.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_counters_settle() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).expect("collector alive"));
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        // jobs_completed is incremented after the job body runs; give the
        // workers a moment to finish their bookkeeping.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().jobs_completed < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "counters never settled"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.stats().queue_depth, 0);
    }

    #[test]
    fn zero_requested_workers_still_yields_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("job blew up"));
        // The single worker must survive and serve the next job.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).expect("collector alive"));
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                let _ = tx.send(());
            });
        }
        drop(tx);
        drop(pool); // joins the worker; all queued jobs must have run
        assert_eq!(rx.into_iter().count(), 8);
    }
}
