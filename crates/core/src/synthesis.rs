//! Synthesis of asymptotically optimal LOCAL algorithms from a feasible
//! structure — the constructive halves of Theorems 8 and 9 (Lemmas 17 and 27).
//!
//! * [`LogStarAlgorithm`] — the `O(log* n)` algorithm: compute a well-spaced
//!   ruling set (Lemma 16 via the doubling construction of `lcl-algorithms`),
//!   label the 2-node block at each anchor with the feasible function applied
//!   to the types of the two adjacent gaps, and complete every gap with a
//!   deterministic dynamic program — possible by the definition of a feasible
//!   structure, whatever the gap's input is.
//! * [`ConstantAlgorithm`] — the `O(1)` algorithm: nodes deep inside an input
//!   region that repeats a short primitive pattern output the chosen periodic
//!   labeling of that pattern (aligned to the canonical occurrence
//!   boundaries, Lemma 26); the remaining nodes complete the gaps between
//!   labeled regions with the same dynamic program. Small networks and
//!   networks whose irregular stretches exceed the practical constant fall
//!   back to gathering everything (see DESIGN.md for the documented scope of
//!   this fallback).
//! * [`SynthesizedAlgorithm`] — the tagged union returned by the classifier;
//!   `Θ(n)` and unsolvable problems get the trivial gather-everything
//!   algorithm.

use crate::feasibility::FeasibleStructure;
use crate::types_info::GapTypes;
use lcl_algorithms::{
    classify_position, ruling_set_gap_bounds, ruling_set_radius, GatherAndSolve, PartitionParams,
    PositionClass, RulingSetComputer,
};
use lcl_local_sim::{BallView, LocalAlgorithm};
use lcl_problem::{InLabel, Instance, NormalizedLcl, OutLabel};
use lcl_semigroup::{TypeId, TypeSemigroup};

/// The algorithm attached to a classification verdict.
#[derive(Clone, Debug)]
pub enum SynthesizedAlgorithm {
    /// An `O(1)`-round algorithm (the problem is in the constant class).
    Constant(ConstantAlgorithm),
    /// A `Θ(log* n)`-round algorithm.
    LogStar(LogStarAlgorithm),
    /// The trivial gather-everything algorithm (`Θ(n)` and unsolvable
    /// problems).
    GatherAll(GatherAndSolve),
    /// A classification restored from a cache snapshot (see
    /// [`crate::snapshot`]): the verdict fields are exact, but the
    /// synthesized feasible structure was not persisted, so the restored
    /// entry runs the always-correct gather-everything algorithm while
    /// reporting the original algorithm's name — serialized verdicts stay
    /// byte-identical across a snapshot/restore cycle.
    Restored(RestoredAlgorithm),
}

impl LocalAlgorithm for SynthesizedAlgorithm {
    fn radius(&self, n: usize) -> usize {
        match self {
            SynthesizedAlgorithm::Constant(a) => a.radius(n),
            SynthesizedAlgorithm::LogStar(a) => a.radius(n),
            SynthesizedAlgorithm::GatherAll(a) => a.radius(n),
            SynthesizedAlgorithm::Restored(a) => a.radius(n),
        }
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        match self {
            SynthesizedAlgorithm::Constant(a) => a.compute(view),
            SynthesizedAlgorithm::LogStar(a) => a.compute(view),
            SynthesizedAlgorithm::GatherAll(a) => a.compute(view),
            SynthesizedAlgorithm::Restored(a) => a.compute(view),
        }
    }

    fn name(&self) -> &str {
        match self {
            SynthesizedAlgorithm::Constant(a) => a.name(),
            SynthesizedAlgorithm::LogStar(a) => a.name(),
            SynthesizedAlgorithm::GatherAll(a) => a.name(),
            SynthesizedAlgorithm::Restored(a) => a.name(),
        }
    }
}

/// The stand-in algorithm attached to snapshot-restored classifications: a
/// [`GatherAndSolve`] under the snapshotted algorithm's *name*. Restoring
/// rebuilds the problem from its structural key but not the feasible
/// structure the fast synthesized algorithms need, so a restored entry
/// answers `solve` correctly (gathering is valid for every class) while its
/// verdict — which embeds only the algorithm name — serializes exactly as the
/// original did. The first post-restore `classify` miss would rebuild the
/// fast algorithm; verdict-serving traffic never needs to.
#[derive(Clone, Debug)]
pub struct RestoredAlgorithm {
    name: Box<str>,
    gather: GatherAndSolve,
}

impl RestoredAlgorithm {
    /// Builds the stand-in for `problem`, reporting `name` as the algorithm
    /// name.
    pub fn new(problem: &NormalizedLcl, name: &str) -> Self {
        RestoredAlgorithm {
            name: name.into(),
            gather: GatherAndSolve::new(problem),
        }
    }
}

impl LocalAlgorithm for RestoredAlgorithm {
    fn radius(&self, n: usize) -> usize {
        self.gather.radius(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        self.gather.compute(view)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Shared pieces of the two fast synthesized algorithms.
#[derive(Clone, Debug)]
struct SynthesisCore {
    problem: NormalizedLcl,
    semigroup: TypeSemigroup,
    quantified: Vec<TypeId>,
    structure: FeasibleStructure,
    min_gap: usize,
}

impl SynthesisCore {
    fn new(info: &GapTypes, structure: FeasibleStructure) -> Self {
        SynthesisCore {
            problem: info.problem().clone(),
            semigroup: info.semigroup().clone(),
            quantified: info.quantified().to_vec(),
            structure,
            min_gap: info.min_gap(),
        }
    }

    /// The quantified-type index of a gap word (must have length ≥ 1).
    fn gap_type_index(&self, word: &[InLabel]) -> Option<usize> {
        let t = self.semigroup.type_of_word(word).ok()?;
        self.quantified.iter().position(|&x| x == t)
    }

    /// Fills a gap with inputs `gap` between a node already labeled `pred`
    /// and a node already labeled `succ`, returning the gap labels.
    fn fill_gap(&self, gap: &[InLabel], pred: OutLabel, succ: OutLabel) -> Option<Vec<OutLabel>> {
        if gap.is_empty() {
            return if self.problem.edge_ok(pred, succ) {
                Some(vec![])
            } else {
                None
            };
        }
        let instance = Instance::path(gap.to_vec());
        let labeling =
            self.problem
                .solve_path_between(&instance, 0, gap.len() - 1, Some(pred), Some(succ))?;
        Some(labeling.outputs().to_vec())
    }
}

// ---------------------------------------------------------------------------
// The Θ(log* n) algorithm.
// ---------------------------------------------------------------------------

/// The synthesized `O(log* n)` algorithm (Lemma 17 on top of Lemma 16).
#[derive(Clone, Debug)]
pub struct LogStarAlgorithm {
    core: SynthesisCore,
    gather: GatherAndSolve,
    level: usize,
}

impl LogStarAlgorithm {
    /// Builds the algorithm from the problem's type information and a feasible
    /// structure found by [`crate::feasibility::find_feasible`].
    pub fn new(info: &GapTypes, structure: FeasibleStructure) -> Self {
        let core = SynthesisCore::new(info, structure);
        // Smallest ruling-set level whose minimum anchor spacing leaves gaps of
        // at least `min_gap` nodes between 2-node anchor blocks.
        let mut level = 1usize;
        while ruling_set_gap_bounds(level).0 < core.min_gap + 2 {
            level += 1;
        }
        LogStarAlgorithm {
            gather: GatherAndSolve::new(&core.problem),
            core,
            level,
        }
    }

    /// The ruling-set level used for the anchors.
    pub fn level(&self) -> usize {
        self.level
    }

    fn max_spacing(&self) -> usize {
        ruling_set_gap_bounds(self.level).1
    }

    fn small_threshold(&self) -> usize {
        4 * self.max_spacing() + 8
    }

    /// Computes the block labels of the anchor at `anchor` (an offset within
    /// the view) from the types of its two adjacent gaps.
    fn block_labels(
        &self,
        view: &BallView,
        rs: &RulingSetComputer<'_>,
        anchor: isize,
    ) -> Option<(OutLabel, OutLabel)> {
        let hi = self.max_spacing() as isize;
        // Previous anchor (left of `anchor`).
        let mut prev = None;
        for d in 1..=hi + 1 {
            if rs.is_member(self.level, anchor - d)? {
                prev = Some(anchor - d);
                break;
            }
        }
        let prev = prev?;
        // Next anchor (right of `anchor`).
        let mut next = None;
        for d in 1..=hi + 1 {
            if rs.is_member(self.level, anchor + d)? {
                next = Some(anchor + d);
                break;
            }
        }
        let next = next?;
        // Left gap: between the previous anchor's block and this block.
        let left_gap: Vec<InLabel> = ((prev + 2)..anchor)
            .map(|o| view.input_at(o))
            .collect::<Option<Vec<_>>>()?;
        let right_gap: Vec<InLabel> = ((anchor + 2)..next)
            .map(|o| view.input_at(o))
            .collect::<Option<Vec<_>>>()?;
        let left_type = self.core.gap_type_index(&left_gap)?;
        let right_type = self.core.gap_type_index(&right_gap)?;
        let s0 = view.input_at(anchor)?;
        let s1 = view.input_at(anchor + 1)?;
        self.core.structure.block(left_type, s0, s1, right_type)
    }
}

impl LocalAlgorithm for LogStarAlgorithm {
    fn radius(&self, n: usize) -> usize {
        if n <= self.small_threshold() {
            return n;
        }
        ruling_set_radius(self.level, n, 6 * self.max_spacing() + 16)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        let n = view.n;
        if n <= self.small_threshold() {
            return self.gather.compute(view);
        }
        let rs = RulingSetComputer::new(view);
        let hi = self.max_spacing() as isize;
        // The nearest anchor at or before me.
        let mut anchor = None;
        for d in 0..=hi {
            if rs.is_member(self.level, -d) == Some(true) {
                anchor = Some(-d);
                break;
            }
        }
        let Some(anchor) = anchor else {
            return OutLabel(0);
        };
        if anchor >= -1 {
            // I am inside the anchor block {anchor, anchor + 1}.
            let Some((first, last)) = self.block_labels(view, &rs, anchor) else {
                return OutLabel(0);
            };
            return if anchor == 0 { first } else { last };
        }
        // I am inside the gap that follows the block {anchor, anchor+1}.
        let mut next = None;
        for d in 1..=hi + 1 {
            if rs.is_member(self.level, anchor + d) == Some(true) {
                next = Some(anchor + d);
                break;
            }
        }
        let Some(next) = next else {
            return OutLabel(0);
        };
        let Some((_, left_last)) = self.block_labels(view, &rs, anchor) else {
            return OutLabel(0);
        };
        let Some((right_first, _)) = self.block_labels(view, &rs, next) else {
            return OutLabel(0);
        };
        let gap: Option<Vec<InLabel>> = ((anchor + 2)..next).map(|o| view.input_at(o)).collect();
        let Some(gap) = gap else {
            return OutLabel(0);
        };
        let my_index = (0 - (anchor + 2)) as usize;
        match self.core.fill_gap(&gap, left_last, right_first) {
            Some(labels) if my_index < labels.len() => labels[my_index],
            _ => OutLabel(0),
        }
    }

    fn name(&self) -> &str {
        "synthesized-log-star"
    }
}

// ---------------------------------------------------------------------------
// The O(1) algorithm.
// ---------------------------------------------------------------------------

/// The synthesized `O(1)` algorithm (Lemma 27 on top of the
/// `(ℓ_width, ℓ_count, ℓ_pattern)`-partition).
#[derive(Clone, Debug)]
pub struct ConstantAlgorithm {
    core: SynthesisCore,
    gather: GatherAndSolve,
    params: PartitionParams,
    /// Maximum gap (in nodes) between two labeled periodic regions that the
    /// view-based gap filling handles; longer irregular stretches fall back to
    /// gathering (see the module documentation).
    max_handled_gap: usize,
    practical_radius: usize,
}

impl ConstantAlgorithm {
    /// Builds the algorithm from the type information, the feasible structure
    /// (which must contain periodic pattern labelings) and the pattern length
    /// bound `κ` that was used for the feasibility check.
    pub fn new(info: &GapTypes, structure: FeasibleStructure, kappa: usize) -> Self {
        let core = SynthesisCore::new(info, structure);
        let kappa = kappa.max(1);
        // The core radius must exceed min_gap + 2κ so that two distinct
        // periodic regions are always separated by a gap of at least min_gap
        // unlabeled nodes (Fine–Wilf argument, see DESIGN.md).
        let count = (core.min_gap + 2 * kappa + 2).div_ceil(kappa) + 2;
        let params = PartitionParams::new(kappa, count, 1);
        let d = params.core_radius();
        let max_handled_gap = 8 * (d + core.min_gap) + 64;
        let practical_radius = 2 * (max_handled_gap + d + kappa) + 32;
        ConstantAlgorithm {
            gather: GatherAndSolve::new(&core.problem),
            core,
            params,
            max_handled_gap,
            practical_radius,
        }
    }

    /// The partition parameters in use.
    pub fn partition_params(&self) -> &PartitionParams {
        &self.params
    }

    /// The constant radius used on large networks.
    pub fn practical_radius(&self) -> usize {
        self.practical_radius
    }

    /// Whether the node at `offset` is *labeled by a periodic core*: its
    /// radius-`D` window repeats a primitive pattern of length ≤ κ, and the
    /// entire canonical occurrence containing it is likewise deep. Returns the
    /// output label in that case.
    fn core_label(&self, view: &BallView, offset: isize) -> Option<OutLabel> {
        let (pattern, phase) = self.deep_pattern(view, offset)?;
        // The canonical occurrence containing `offset` spans
        // [offset - phase, offset - phase + |p| - 1]; all of it must be deep
        // with the same pattern.
        let start = offset - phase as isize;
        for j in 0..pattern.len() as isize {
            let (p2, _) = self.deep_pattern(view, start + j)?;
            if p2 != pattern {
                return None;
            }
        }
        let labeling = self.core.structure.pattern_labeling(&pattern)?;
        Some(labeling.labeling[phase])
    }

    /// The canonical pattern and phase of the node at `offset`, if its
    /// radius-`D` window is periodic with period ≤ κ.
    fn deep_pattern(&self, view: &BallView, offset: isize) -> Option<(Vec<InLabel>, usize)> {
        let d = self.params.core_radius() as isize;
        let window: Option<Vec<InLabel>> = ((offset - d)..=(offset + d))
            .map(|o| view.input_at(o))
            .collect();
        let window = window?;
        match classify_position(&window, d as usize, &self.params) {
            PositionClass::PeriodicCore { pattern, phase } => Some((pattern, phase)),
            PositionClass::Other => None,
        }
    }
}

impl LocalAlgorithm for ConstantAlgorithm {
    fn radius(&self, n: usize) -> usize {
        n.min(self.practical_radius)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        let n = view.n;
        if n <= self.practical_radius {
            return self.gather.compute(view);
        }
        if let Some(label) = self.core_label(view, 0) {
            return label;
        }
        // I am in a gap: find the nearest core-labeled nodes on both sides.
        let limit = self.max_handled_gap as isize;
        let mut left = None;
        for d in 1..=limit {
            if let Some(label) = self.core_label(view, -d) {
                left = Some((-d, label));
                break;
            }
        }
        let mut right = None;
        for d in 1..=limit {
            if let Some(label) = self.core_label(view, d) {
                right = Some((d, label));
                break;
            }
        }
        let (Some((l_off, l_label)), Some((r_off, r_label))) = (left, right) else {
            // Irregular stretch longer than the practical constant: fall back
            // to a locally valid label (documented limitation; the benchmark
            // workloads keep irregular stretches bounded).
            return self
                .core
                .problem
                .outputs_for_input(view.center.1)
                .next()
                .unwrap_or(OutLabel(0));
        };
        let gap: Option<Vec<InLabel>> = ((l_off + 1)..r_off).map(|o| view.input_at(o)).collect();
        let Some(gap) = gap else {
            return OutLabel(0);
        };
        let my_index = (0 - (l_off + 1)) as usize;
        match self.core.fill_gap(&gap, l_label, r_label) {
            Some(labels) if my_index < labels.len() => labels[my_index],
            _ => OutLabel(0),
        }
    }

    fn name(&self) -> &str {
        "synthesized-constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::find_feasible;
    use lcl_local_sim::{validate_algorithm, IdAssignment, Network, SyncSimulator};
    use lcl_problem::Topology;
    use lcl_semigroup::primitive_strings_up_to;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    /// Input-phase 2-coloring: on `(0 1)`-periodic inputs the nodes must
    /// 2-colour according to the input phase; elsewhere anything goes.
    /// This problem is `O(1)` but its solution genuinely depends on the input.
    fn phase_locked() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("phase-locked");
        b.input_labels(&["0", "1"]);
        b.output_labels(&["A", "B"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    fn random_cycle(n: usize, alpha: u16, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..alpha)).collect();
        let mut rng2 = StdRng::seed_from_u64(seed ^ 0xabcdef);
        Network::new(
            Instance::from_indices(Topology::Cycle, &inputs),
            IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng2,
        )
        .unwrap()
    }

    #[test]
    fn logstar_algorithm_three_coloring_is_valid() {
        let p = three_coloring();
        let info = GapTypes::compute(&p, 10_000).unwrap();
        let structure = find_feasible(&info, &[], 1_000_000).unwrap().unwrap();
        let alg = LogStarAlgorithm::new(&info, structure);
        assert!(alg.level() >= 1);
        assert_eq!(alg.name(), "synthesized-log-star");
        // Small cycles use the gather-all fallback; larger ones the anchors.
        let nets: Vec<Network> = [8usize, 20, 90, 200]
            .iter()
            .enumerate()
            .map(|(i, &n)| random_cycle(n, 1, i as u64))
            .collect();
        let outcome = validate_algorithm(&p, &alg, &nets).unwrap();
        assert!(outcome.is_valid(), "{outcome:?}");
    }

    #[test]
    fn logstar_radius_grows_slowly() {
        let p = three_coloring();
        let info = GapTypes::compute(&p, 10_000).unwrap();
        let structure = find_feasible(&info, &[], 1_000_000).unwrap().unwrap();
        let alg = LogStarAlgorithm::new(&info, structure);
        let r_small = alg.radius(1 << 10);
        let r_large = alg.radius(1 << 20);
        assert!(r_large >= r_small);
        assert!(
            r_large - r_small <= 200,
            "log* growth only: {r_small} -> {r_large}"
        );
        assert!(r_large < 1 << 10, "far below linear");
    }

    #[test]
    fn constant_algorithm_phase_locked_is_valid() {
        let p = phase_locked();
        let info = GapTypes::compute(&p, 10_000).unwrap();
        let kappa = info.min_gap().clamp(1, 3);
        let patterns: Vec<Vec<InLabel>> = primitive_strings_up_to(2, kappa)
            .into_iter()
            .filter(|w| {
                // canonical rotations only
                let mut best = w.clone();
                for s in 1..w.len() {
                    let rot: Vec<InLabel> = (0..w.len()).map(|i| w[(i + s) % w.len()]).collect();
                    if rot < best {
                        best = rot;
                    }
                }
                best == *w
            })
            .collect();
        let structure = find_feasible(&info, &patterns, 1_000_000).unwrap().unwrap();
        let alg = ConstantAlgorithm::new(&info, structure, kappa);
        assert_eq!(alg.name(), "synthesized-constant");
        assert!(alg.partition_params().pattern >= 1);
        // Radius is a constant for large n.
        assert_eq!(alg.radius(1 << 30), alg.practical_radius());
        assert!(alg.radius(10) <= 10);

        // Workload 1: small random cycles (gather-all path).
        let mut nets: Vec<Network> = (0..4)
            .map(|i| random_cycle(24 + 3 * i, 2, 77 + i as u64))
            .collect();
        // Workload 2: large periodic cycles with sparse defects (periodic-core
        // + gap-filling path).
        let n = 2 * alg.practical_radius() + 64;
        for seed in 0..2u64 {
            let mut inputs: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            // two defects far apart
            let d1 = rng.gen_range(0..n / 2);
            let d2 = d1 + n / 2;
            inputs[d1] = 1 - inputs[d1];
            inputs[d2 % n] = 1 - inputs[d2 % n];
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            nets.push(
                Network::new(
                    Instance::from_indices(Topology::Cycle, &inputs),
                    IdAssignment::RandomFromSpace { multiplier: 4 },
                    &mut rng2,
                )
                .unwrap(),
            );
        }
        let outcome = validate_algorithm(&p, &alg, &nets).unwrap();
        assert!(outcome.is_valid(), "{outcome:?}");
    }

    #[test]
    fn synthesized_enum_delegates() {
        let p = three_coloring();
        let info = GapTypes::compute(&p, 10_000).unwrap();
        let structure = find_feasible(&info, &[], 1_000_000).unwrap().unwrap();
        let alg = SynthesizedAlgorithm::LogStar(LogStarAlgorithm::new(&info, structure));
        assert_eq!(alg.name(), "synthesized-log-star");
        assert!(alg.radius(1000) > 0);
        let gather = SynthesizedAlgorithm::GatherAll(GatherAndSolve::new(&p));
        assert_eq!(gather.radius(123), 123);
        assert_eq!(gather.name(), "gather-and-solve");
        let net = random_cycle(9, 1, 3);
        let out = SyncSimulator::new().run(&net, &gather).unwrap();
        assert!(p.is_valid(net.instance(), &out));
    }
}
