//! The service-ready classification engine.
//!
//! [`Engine`] is the long-lived entry point this crate exposes to servers,
//! batch jobs and tools. Where the free function [`crate::classify`] performs
//! one classification from scratch, an engine
//!
//! * **memoizes**: classifications are cached under the problem's exact
//!   [`structural key`](lcl_problem::NormalizedLcl::structural_key) (name-
//!   and label-name-insensitive, collision-free), so once a problem is
//!   cached, the expensive type-semigroup and feasibility work is never
//!   repeated for that structure. Misses are **single-flight**: threads that
//!   miss a *cold* cache concurrently elect one leader that computes while
//!   the rest park and receive the committed value, so N concurrent requests
//!   for one cold problem perform exactly one classification (a leader that
//!   panics or errors wakes its waiters into electing a successor — see
//!   [`ShardedLruCache::get_or_compute`]). [`Engine::classify_many`]
//!   additionally deduplicates its batch up front so duplicates never even
//!   reach the flight table. The cache is a bounded [`ShardedLruCache`]
//!   ([`EngineBuilder::cache_capacity`] entries split across
//!   [`EngineBuilder::cache_shards`] independently locked shards, O(1)
//!   touch-on-hit LRU eviction per shard, hits on a read-locked fast lane
//!   that never blocks on the shard mutex), and [`Engine::cache_stats`]
//!   aggregates the per-shard hit/miss/insert/eviction/flight counters;
//! * **owns a persistent worker pool**: [`EngineBuilder::build`] spawns
//!   [`Engine::parallelism`] long-lived worker threads once; batch
//!   classification and server request dispatch inject jobs into the pool's
//!   MPMC queue, so no thread is ever spawned on the per-request path
//!   ([`Engine::pool_stats`] exposes queue depth and completed-job counters);
//! * **batches**: [`Engine::classify_many`] classifies a whole workload on
//!   the pool (structurally identical problems are deduplicated first),
//!   returning verdicts in deterministic input order;
//! * **solves end-to-end**: [`Engine::solve`] classifies, synthesizes the
//!   optimal LOCAL algorithm and runs it on a concrete
//!   [`Instance`] in the ball-view simulator, returning the labeling together
//!   with the round count;
//! * **speaks the wire format**: [`Engine::verdict`] produces a serializable
//!   [`Verdict`] summary, and problems enter the engine through
//!   [`lcl_problem::ProblemSpec`] just as well as through built values.
//!
//! Parallelism note: the pool uses plain `std::thread` workers over an MPMC
//! channel rather than rayon — the offline build environment cannot fetch
//! rayon, and per-job reply channels with slot indices give the same
//! deterministic-order guarantee for this fan-out shape.
//!
//! # Example
//!
//! ```
//! use lcl_classifier::{Complexity, Engine};
//! use lcl_problem::NormalizedLcl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NormalizedLcl::builder("3-coloring");
//! b.input_labels(&["x"]);
//! b.output_labels(&["1", "2", "3"]);
//! b.allow_all_node_pairs();
//! for p in 0..3u16 {
//!     for q in 0..3u16 {
//!         if p != q {
//!             b.allow_edge_idx(p, q);
//!         }
//!     }
//! }
//! let problem = b.build()?;
//!
//! let engine = Engine::new();
//! let first = engine.classify(&problem)?;
//! let second = engine.classify(&problem)?; // served from the memo cache
//! assert_eq!(first.complexity(), Complexity::LogStar);
//! assert_eq!(second.complexity(), Complexity::LogStar);
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::cache::{CacheStats, ShardStats, ShardedLruCache};
use crate::classify::{classify_with_options, ClassifierOptions};
use crate::pool::{PoolStats, WorkerPool};
use crate::verdict::{Classification, Complexity, Verdict};
use crate::Result;
use lcl_local_sim::{LocalAlgorithm, Network, SyncSimulator};
use lcl_problem::{Instance, Labeling, NormalizedLcl};
use std::collections::HashMap;
use std::sync::{mpsc, Arc, OnceLock};
use std::thread;

/// Builder for [`Engine`].
///
/// Wraps [`ClassifierOptions`] and adds engine-level knobs: worker-pool
/// width ([`EngineBuilder::parallelism`]) and memo-cache bound
/// ([`EngineBuilder::cache_capacity`]). Building spawns the persistent
/// worker pool, so construct one engine and share it.
///
/// ```
/// use lcl_classifier::{Complexity, Engine};
/// use lcl_problems::coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::builder()
///     .parallelism(2)       // two persistent pool workers
///     .cache_capacity(64)   // LRU-bounded memo cache
///     .build();
/// assert_eq!(engine.parallelism(), 2);
///
/// let verdicts = engine.classify_many(&[coloring(3), coloring(2)]);
/// assert_eq!(verdicts[0].as_ref().unwrap().complexity(), Complexity::LogStar);
/// assert_eq!(
///     verdicts[1].as_ref().unwrap().complexity(),
///     Complexity::Unsolvable, // odd cycles are not 2-colorable
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    options: ClassifierOptions,
    parallelism: Option<usize>,
    cache_capacity: Option<usize>,
    cache_shards: Option<usize>,
    cache_weight_capacity: Option<u64>,
}

/// Default bound on the number of cached classifications per engine.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

impl EngineBuilder {
    /// Starts from default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the classifier options wholesale.
    pub fn options(mut self, options: ClassifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Caps the number of types (transfer relations) enumerated per problem.
    pub fn type_budget(mut self, budget: usize) -> Self {
        self.options.type_budget = budget;
        self
    }

    /// Caps the number of backtracking nodes in the feasibility search.
    pub fn search_budget(mut self, budget: usize) -> Self {
        self.options.search_budget = budget;
        self
    }

    /// Caps the primitive-pattern length used by the `O(1)` conditions.
    pub fn pattern_length_cap(mut self, cap: usize) -> Self {
        self.options.pattern_length_cap = cap;
        self
    }

    /// Sets the number of persistent worker threads the engine's pool spawns.
    /// Defaults to the machine's available parallelism.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Bounds the number of cached classifications; when full, the least
    /// recently used entry is evicted. Defaults to
    /// [`DEFAULT_CACHE_CAPACITY`].
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries.max(1));
        self
    }

    /// Sets the number of independently locked memo-cache shards. Rounded up
    /// to a power of two and clamped so every shard owns at least one cache
    /// slot (see [`ShardedLruCache::new`](crate::cache::ShardedLruCache::new)).
    /// Defaults to the next power of two of the worker-pool width, so there
    /// are at least as many shard locks as pool workers (keys hash-route, so
    /// workers whose keys land on the same shard still contend — just
    /// rarely).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = Some(shards.max(1));
        self
    }

    /// Bounds the memo cache by approximate resident **bytes** instead of
    /// entry count: each cached entry is priced by
    /// [`approximate_entry_weight`] (classification plus the reply-bytes
    /// reservation) and inserts evict least-recently-used entries until at
    /// most `bytes` remain resident.
    /// Overrides [`EngineBuilder::cache_capacity`]; the default remains the
    /// count bound, which treats a tiny 2-type classification and one
    /// carrying a long unsolvability witness as equally expensive.
    pub fn cache_weight_capacity(mut self, bytes: u64) -> Self {
        self.cache_weight_capacity = Some(bytes.max(1));
        self
    }

    /// Builds the engine, spawning its persistent worker pool.
    pub fn build(self) -> Engine {
        let parallelism = self
            .parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |p| p.get()));
        let capacity = self.cache_capacity.unwrap_or(DEFAULT_CACHE_CAPACITY);
        let shards = self
            .cache_shards
            .unwrap_or_else(|| parallelism.next_power_of_two());
        let cache = match self.cache_weight_capacity {
            Some(bytes) => ShardedLruCache::with_weigher(bytes, shards, entry_weight),
            None => ShardedLruCache::new(capacity, shards),
        };
        let core = Arc::new(EngineCore {
            options: self.options,
            cache,
        });
        Engine {
            core,
            pool: WorkerPool::new(parallelism),
        }
    }
}

/// One memo-cache entry: the classification plus the **reply-bytes lane** —
/// a lazily attached, pre-serialized reply payload (`Arc<[u8]>`) so a
/// serving layer can answer a hot hit by splicing the request id around
/// cached bytes instead of re-serializing the verdict per frame.
///
/// The payload is attached at most once per entry generation
/// ([`Engine::cached_reply`]) and lives and dies with the entry: eviction or
/// [`Engine::clear_cache`] drops entry and payload together, so the lane can
/// never serve bytes for a classification that is no longer resident.
///
/// Because the cache key is the *structural* fingerprint — deliberately
/// name-insensitive — while a serialized verdict embeds the problem's name,
/// the payload remembers the name it was rendered for; a structurally
/// identical problem under a different name is served [`ReplyLane::Render`]
/// instead of someone else's bytes.
#[derive(Debug)]
pub struct CacheEntry {
    classification: Arc<Classification>,
    reply: OnceLock<ReplyPayload>,
}

/// The attached pre-serialized reply payload plus the problem *name* it was
/// rendered for (see [`CacheEntry`]). The name is the only per-problem field
/// of a verdict the structural key does not pin: the embedded canonical hash
/// digests the same name-insensitive structure as the key, so a key match
/// implies a hash match.
#[derive(Debug)]
struct ReplyPayload {
    name: Box<str>,
    bytes: Arc<[u8]>,
}

impl CacheEntry {
    pub(crate) fn new(classification: Arc<Classification>) -> Self {
        CacheEntry {
            classification,
            reply: OnceLock::new(),
        }
    }

    /// The cached classification.
    pub fn classification(&self) -> &Arc<Classification> {
        &self.classification
    }

    /// The attached reply payload bytes, if any request rendered them yet.
    pub fn reply_bytes(&self) -> Option<&Arc<[u8]>> {
        self.reply.get().map(|payload| &payload.bytes)
    }
}

/// How [`Engine::cached_reply`] served a memo-cache hit.
#[derive(Clone, Debug)]
pub enum ReplyLane {
    /// The pre-serialized reply payload: the caller splices its request id
    /// around these bytes and writes — no serialization.
    Bytes(Arc<[u8]>),
    /// The classification is cached but the attached payload was rendered
    /// for a structurally identical problem under a *different* name or
    /// hash; the caller must serialize freshly for this request's identity.
    Render(Arc<Classification>),
}

/// The result of [`Engine::solve`]: the classification together with the
/// labeling the synthesized algorithm produced on the given instance and the
/// number of LOCAL rounds it used.
#[derive(Clone, Debug)]
pub struct Solution {
    classification: Arc<Classification>,
    labeling: Labeling,
    rounds: usize,
}

impl Solution {
    /// The classification backing the run.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The complexity class of the problem.
    pub fn complexity(&self) -> Complexity {
        self.classification.complexity()
    }

    /// The valid labeling produced by the synthesized algorithm.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The number of LOCAL rounds (= view radius) the algorithm used on this
    /// instance.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// The sharable inner state of an [`Engine`]: options, memo cache and
/// counters. Pool workers hold an `Arc` to this, never to the `Engine`
/// itself, so the engine can own (and on drop, join) its pool.
#[derive(Debug)]
struct EngineCore {
    options: ClassifierOptions,
    /// The memo store: [`CacheEntry`]s (classification + lazily attached
    /// reply bytes) keyed by the problem's exact
    /// [`structural key`](NormalizedLcl::structural_key) (collision-free,
    /// unlike the 64-bit canonical hash), sharded for uncontended access
    /// from the worker pool.
    cache: ShardedLruCache<Arc<CacheEntry>>,
}

impl EngineCore {
    /// Probes the cache, refreshing recency and counting a hit on success.
    /// A miss is *not* counted here — only actual computations count as
    /// misses (see `classify`).
    fn lookup(&self, key: &[u8]) -> Option<Arc<CacheEntry>> {
        self.cache.get(key)
    }

    /// Memoized classification on the calling thread.
    fn classify(&self, problem: &NormalizedLcl) -> Result<Arc<Classification>> {
        self.classify_observed(problem).map(|(c, _)| c)
    }

    /// [`EngineCore::classify`] that also reports whether the memo cache
    /// served the result (`true` = hit), for callers that attribute latency.
    fn classify_observed(&self, problem: &NormalizedLcl) -> Result<(Arc<Classification>, bool)> {
        self.classify_entry(problem)
            .map(|(entry, hit)| (Arc::clone(&entry.classification), hit))
    }

    /// The full memoized path: returns the whole cache entry, so callers
    /// that splice replies can reach the bytes lane without a second probe.
    fn classify_entry(&self, problem: &NormalizedLcl) -> Result<(Arc<CacheEntry>, bool)> {
        let key = problem.structural_key();
        // Single-flight: at most one thread per cold key runs the closure
        // (counting the miss when it commits to computing); concurrent
        // requesters park on the leader's flight and share its Arc. Waiting
        // is on the leader's in-place computation, never on pool capacity,
        // so this is safe from pool workers too (see `Engine::dispatch`).
        let computed = self.cache.get_or_compute(&key, || {
            classify_with_options(problem, &self.options)
                .map(|c| Arc::new(CacheEntry::new(Arc::new(c))))
        })?;
        Ok((computed.value, computed.outcome.served_from_cache()))
    }

    /// The error reported when a pool job died (panicked) before sending its
    /// reply; the engine and its pool remain usable.
    fn dropped_reply() -> crate::ClassifierError {
        crate::ClassifierError::Internal {
            what: "worker-pool job dropped its reply (the job panicked); retry the request"
                .to_string(),
        }
    }
}

/// A long-lived, concurrency-safe classification service.
///
/// See the [module documentation](self) for the design and an example. An
/// engine is cheap to share: all methods take `&self`, and the memo cache is
/// sharded ([`EngineBuilder::cache_shards`]), so concurrent classifications
/// only contend when their keys land on the same shard — and each shard
/// operation is O(1). Construction spawns the persistent worker pool;
/// dropping the engine closes the pool's queue and joins every worker.
#[derive(Debug)]
pub struct Engine {
    core: Arc<EngineCore>,
    pool: WorkerPool,
}

impl Default for Engine {
    fn default() -> Self {
        EngineBuilder::new().build()
    }
}

impl Engine {
    /// Creates an engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building an engine with custom options.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The classifier options this engine runs with.
    pub fn options(&self) -> &ClassifierOptions {
        &self.core.options
    }

    /// The number of persistent worker threads in the engine's pool.
    pub fn parallelism(&self) -> usize {
        self.pool.workers()
    }

    /// Peeks the memo cache: returns the cached classification without
    /// computing anything on a miss.
    ///
    /// A hit refreshes the entry's LRU recency and counts as a cache hit; a
    /// miss counts nothing (misses are only counted when a classification
    /// is actually computed). Use this when a thread must never block on
    /// classification work — e.g. to answer memoized requests on a
    /// latency-sensitive thread and route only the misses to
    /// [`Engine::dispatch`].
    pub fn cached(&self, problem: &NormalizedLcl) -> Option<Arc<Classification>> {
        self.core
            .lookup(&problem.structural_key())
            .map(|entry| Arc::clone(&entry.classification))
    }

    /// The zero-serialization fast lane: peeks the memo cache and, on a hit,
    /// returns the entry's pre-serialized reply payload — attaching it first
    /// (via `render`) if this entry has never been served through the lane.
    ///
    /// Accounting: a hit counts one ordinary cache hit (exactly like
    /// [`Engine::cached`]); serving previously attached bytes additionally
    /// counts a `bytes_hit` on the entry's shard, and the one-time attach
    /// counts a `bytes_miss`. A cache miss returns `None` and counts
    /// nothing — route it to the ordinary compute path.
    ///
    /// Because the cache key ignores problem names while the serialized
    /// verdict embeds them, a hit for a problem whose *name* differs from
    /// the one the payload was rendered for yields [`ReplyLane::Render`]:
    /// the caller serializes freshly from the returned classification (no
    /// bytes tally — the lane neither hit nor changed). Either way the reply
    /// a client observes is byte-identical to what the envelope serializer
    /// would produce for *this* request.
    pub fn cached_reply(
        &self,
        problem: &NormalizedLcl,
        render: impl FnOnce(&Classification) -> Vec<u8>,
    ) -> Option<ReplyLane> {
        let key = problem.structural_key();
        let entry = self.core.lookup(&key)?;
        let mut fresh = false;
        let payload = entry.reply.get_or_init(|| {
            fresh = true;
            ReplyPayload {
                name: problem.name().into(),
                bytes: render(&entry.classification).into(),
            }
        });
        if payload.name.as_ref() == problem.name() {
            if fresh {
                self.core.cache.record_bytes_miss(&key);
            } else {
                self.core.cache.record_bytes_hit(&key);
            }
            Some(ReplyLane::Bytes(Arc::clone(&payload.bytes)))
        } else {
            Some(ReplyLane::Render(Arc::clone(&entry.classification)))
        }
    }

    /// The re-probe half of the zero-serialization lane: serves the attached
    /// reply payload for a *remembered* structural key, skipping problem
    /// parsing and normalization entirely.
    ///
    /// A front-end that served a request through [`Engine::cached_reply`]
    /// may remember the problem's `(structural key, name)` pair alongside
    /// the raw request text and answer a byte-identical later request with
    /// this call. The probe behaves exactly like any cache lookup — it
    /// counts an ordinary hit and refreshes the entry's LRU recency — and
    /// the payload is returned only when the entry is still resident, has
    /// bytes attached, and those bytes were rendered for the same problem
    /// `name` (counting a `bytes_hit` on the entry's shard). Any other
    /// outcome returns `None` with no bytes tally: the remembered mapping
    /// went stale (the entry was evicted, or recomputed and not yet
    /// re-rendered), so the caller should forget it and fall back to the
    /// parse path — whose own probe then counts separately.
    pub fn cached_reply_for_key(&self, key: &[u8], name: &str) -> Option<Arc<[u8]>> {
        let entry = self.core.lookup(key)?;
        let payload = entry.reply.get()?;
        if payload.name.as_ref() == name {
            self.core.cache.record_bytes_hit(key);
            Some(Arc::clone(&payload.bytes))
        } else {
            None
        }
    }

    /// Classifies a problem on the calling thread, serving repeated requests
    /// for structurally identical problems from the memo cache.
    ///
    /// # Errors
    ///
    /// See [`crate::classify_with_options`]. Errors are not cached; a retry
    /// with the same engine recomputes.
    pub fn classify(&self, problem: &NormalizedLcl) -> Result<Arc<Classification>> {
        self.core.classify(problem)
    }

    /// [`Engine::classify`] that also reports whether the memo cache served
    /// the result (`true` = hit, `false` = computed now). This is what
    /// request tracing uses to attribute a request's latency to cache or
    /// compute without an extra (stats-perturbing) cache probe.
    ///
    /// # Errors
    ///
    /// See [`Engine::classify`].
    pub fn classify_observed(
        &self,
        problem: &NormalizedLcl,
    ) -> Result<(Arc<Classification>, bool)> {
        self.core.classify_observed(problem)
    }

    /// Classifies a problem on the worker pool: cache hits are served
    /// directly on the calling thread, misses are computed by a pool worker
    /// while the caller blocks on the reply.
    ///
    /// This is the request-dispatch path of the network service: connection
    /// threads stay I/O-bound and all classification CPU burns on the
    /// engine's persistent workers, without spawning any thread. Must not be
    /// called from a pool worker itself (a single-worker pool would
    /// deadlock); the engine never does this internally.
    ///
    /// # Errors
    ///
    /// See [`Engine::classify`].
    pub fn classify_pooled(&self, problem: &NormalizedLcl) -> Result<Arc<Classification>> {
        let key = problem.structural_key();
        if let Some(cached) = self.core.lookup(&key) {
            return Ok(Arc::clone(&cached.classification));
        }
        let core = Arc::clone(&self.core);
        let problem = problem.clone();
        let rx = self.pool.submit_with_reply(move || core.classify(&problem));
        // A disconnected reply means the job died (panicked) on the worker;
        // surface that as a typed error instead of poisoning the caller.
        rx.recv()
            .unwrap_or_else(|_| Err(EngineCore::dropped_reply()))
    }

    /// Submits an arbitrary task to the worker pool **without blocking** and
    /// returns the receiver its result will arrive on.
    ///
    /// This is the dispatch primitive of the server's *pipelined* connection
    /// path: the connection's reader thread submits one task per request
    /// frame and immediately goes back to reading, while the writer thread
    /// later parks on each receiver in request order. Submission never
    /// blocks (the pool queue is unbounded); the receiver disconnects
    /// without a value if the task panics on its worker.
    ///
    /// Deadlock warning: the task runs *on* a pool worker, so it must not
    /// itself park on other pool jobs ([`Engine::classify_pooled`],
    /// [`Engine::classify_many`], [`Engine::solve`]) — with a single-worker
    /// pool that self-wait can never be served. Inside a dispatched task,
    /// classify with [`Engine::classify`] and solve with
    /// [`Engine::solve_inline`], which do all work on the worker itself.
    pub fn dispatch<T, F>(&self, task: F) -> mpsc::Receiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.pool.submit_with_reply(task)
    }

    /// [`Engine::dispatch`] with a completion hook: `notify` runs on the
    /// worker after the task's reply became observable on the returned
    /// receiver — the value was sent, or, if the task panicked, the sender
    /// was already dropped by the unwind. Either way, a `try_recv` performed
    /// from inside (or after) the notification is guaranteed to see the
    /// outcome rather than `Empty`.
    ///
    /// This is the waker half of a readiness-based server: instead of a
    /// writer thread parked per connection, a single reactor thread sleeps in
    /// `epoll_wait` and `notify` signals its eventfd when a reply completes.
    /// The same deadlock rules as [`Engine::dispatch`] apply to `task`;
    /// `notify` must be cheap and must not touch the pool.
    pub fn dispatch_notify<T, F, N>(&self, task: F, notify: N) -> mpsc::Receiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        N: FnOnce() + Send + 'static,
    {
        self.pool.submit_with_reply_notify(task, notify)
    }

    /// Classifies a batch of problems on the persistent worker pool,
    /// returning verdicts in the order of the input slice.
    ///
    /// Structurally identical problems (equal structural key) are classified
    /// once and share the resulting `Arc`. Each unique problem becomes one
    /// pool job carrying a slot index and a reply channel, so the output
    /// order is deterministic regardless of scheduling — and no thread is
    /// spawned, however large the batch.
    pub fn classify_many(&self, problems: &[NormalizedLcl]) -> Vec<Result<Arc<Classification>>> {
        if problems.is_empty() {
            return Vec::new();
        }
        // Deduplicate by structure: owners[i] is the index of the first
        // problem with the same structural key.
        let mut first_of: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut owners = Vec::with_capacity(problems.len());
        let mut unique = Vec::new();
        for (i, problem) in problems.iter().enumerate() {
            let rep = *first_of.entry(problem.structural_key()).or_insert_with(|| {
                unique.push(i);
                i
            });
            owners.push(rep);
        }

        let (tx, rx) = mpsc::channel();
        for &index in &unique {
            let tx = tx.clone();
            let core = Arc::clone(&self.core);
            let problem = problems[index].clone();
            self.pool.submit(move || {
                let _ = tx.send((index, core.classify(&problem)));
            });
        }
        drop(tx);
        let by_rep: HashMap<usize, Result<Arc<Classification>>> = rx.into_iter().collect();
        owners
            .iter()
            .map(|rep| {
                // A missing representative means its job died (panicked) on
                // the worker without sending; report it per item.
                by_rep
                    .get(rep)
                    .cloned()
                    .unwrap_or_else(|| Err(EngineCore::dropped_reply()))
            })
            .collect()
    }

    /// Classifies the problem, then runs the synthesized optimal algorithm on
    /// the instance (sequential identifiers, ball-view simulator) and verifies
    /// the output: classify → synthesize → execute in one call. The
    /// classification itself runs on the worker pool (cache hits short-cut on
    /// the calling thread); the simulation runs on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ClassifierError::Problem`] when the instance carries
    /// input labels outside the problem's alphabet (wire payloads are not
    /// validated before this point), [`crate::ClassifierError::Solve`] when
    /// the problem is unsolvable (globally, or on this specific instance),
    /// propagates classification errors, and wraps simulator failures in
    /// [`crate::ClassifierError::Sim`].
    pub fn solve(&self, problem: &NormalizedLcl, instance: &Instance) -> Result<Solution> {
        // Instances can arrive straight off the wire; validate against the
        // problem's alphabet before the verifier's assertions would panic.
        instance.check_alphabet(problem.num_inputs())?;
        let classification = self.classify_pooled(problem)?;
        self.solve_classified(problem, instance, classification)
    }

    /// [`Engine::solve`], with the classification done on the calling thread
    /// instead of the worker pool.
    ///
    /// This exists for callers that are *already running on a pool worker*
    /// (tasks submitted through [`Engine::dispatch`], such as the server's
    /// pipelined request jobs): parking a worker on another pool job can
    /// deadlock a narrow pool, so such callers must burn the classification
    /// CPU in place.
    ///
    /// # Errors
    ///
    /// See [`Engine::solve`].
    pub fn solve_inline(&self, problem: &NormalizedLcl, instance: &Instance) -> Result<Solution> {
        instance.check_alphabet(problem.num_inputs())?;
        let classification = self.classify(problem)?;
        self.solve_classified(problem, instance, classification)
    }

    /// The shared tail of [`Engine::solve`] / [`Engine::solve_inline`]:
    /// synthesize, simulate, verify, diagnose.
    fn solve_classified(
        &self,
        problem: &NormalizedLcl,
        instance: &Instance,
        classification: Arc<Classification>,
    ) -> Result<Solution> {
        if classification.complexity() == Complexity::Unsolvable {
            return Err(crate::ClassifierError::Solve {
                what: format!(
                    "problem {} is unsolvable (witness of length {})",
                    problem.name(),
                    classification
                        .unsolvability_witness()
                        .map_or(0, Instance::len),
                ),
            });
        }
        let network = Network::with_sequential_ids(instance.clone());
        let algorithm = classification.algorithm();
        let rounds = algorithm.radius(instance.len());
        let labeling = SyncSimulator::new().run(&network, algorithm)?;
        let report = problem.check(instance, &labeling);
        if !report.is_valid() {
            // Asymptotically solvable problems can still have degenerate
            // instances with no valid labeling at all (e.g. a 1-node cycle
            // for 3-coloring); diagnose that before blaming the synthesizer.
            let solvable =
                lcl_semigroup::TransferSystem::new(problem).instance_solvable(instance)?;
            if !solvable {
                return Err(crate::ClassifierError::Solve {
                    what: format!(
                        "this {}-node {} instance admits no valid labeling for problem {}",
                        instance.len(),
                        instance.topology(),
                        problem.name(),
                    ),
                });
            }
            return Err(crate::ClassifierError::Solve {
                what: format!(
                    "synthesized {} algorithm produced an invalid labeling on a {}-node {} ({} violations)",
                    classification.complexity(),
                    instance.len(),
                    instance.topology(),
                    report.violations().len(),
                ),
            });
        }
        Ok(Solution {
            classification,
            labeling,
            rounds,
        })
    }

    /// Classifies the problem and returns the serializable [`Verdict`]
    /// summary (the wire-format view of a [`Classification`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::classify`].
    pub fn verdict(&self, problem: &NormalizedLcl) -> Result<Verdict> {
        let classification = self.classify(problem)?;
        Ok(Verdict::new(problem, &classification))
    }

    /// Current cache counters: one internally consistent snapshot per shard
    /// (each shard's numbers are read in a single critical section, so
    /// `entries + evictions == inserts` holds for every snapshot),
    /// aggregated.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// Per-shard cache counters, in shard order; each entry is an
    /// internally consistent snapshot (see [`Engine::cache_stats`]).
    pub fn cache_shard_stats(&self) -> Vec<ShardStats> {
        self.core.cache.shard_stats()
    }

    /// The effective (power-of-two) number of memo-cache shards.
    pub fn cache_shards(&self) -> usize {
        self.core.cache.shards()
    }

    /// Current worker-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drops every cached classification (counters are kept; the dropped
    /// entries count as evictions, keeping `entries + evictions == inserts`).
    pub fn clear_cache(&self) {
        self.core.cache.clear();
    }

    /// Serializes the memo cache's resident classifications into a versioned,
    /// checksummed snapshot document (see [`crate::snapshot`]): key bytes
    /// plus verdict fields, coldest entries first, volatile reply bytes
    /// excluded. Safe to call under live traffic — each shard is captured in
    /// one consistent critical section.
    pub fn snapshot_document(&self) -> String {
        crate::snapshot::serialize_entries(&self.core.cache.snapshot_entries())
    }

    /// Restores a snapshot produced by [`Engine::snapshot_document`] into
    /// this engine's memo cache, re-inserting entries in file order through
    /// the ordinary insert path (recency reproduced, stats invariants
    /// preserved, present keys kept). Restored entries serve verdicts
    /// byte-identically to the originals; their synthesized algorithm is the
    /// gather-everything stand-in
    /// ([`crate::synthesis::RestoredAlgorithm`]).
    ///
    /// # Errors
    ///
    /// Returns a wire-format error when the document's envelope is invalid
    /// (bad header, version skew, checksum mismatch, truncation); individual
    /// undecodable entries are skipped and counted in the report instead.
    /// Callers treating snapshots as best-effort warmth should log the error
    /// and continue with a cold cache.
    pub fn restore_snapshot(&self, document: &str) -> Result<crate::snapshot::RestoreReport> {
        crate::snapshot::restore_entries(document, |key, entry| {
            self.core.cache.insert(key, Arc::new(entry));
        })
    }
}

/// Prices a cached classification in approximate resident bytes, for
/// [`EngineBuilder::cache_weight_capacity`]: a fixed overhead for the entry
/// itself (key, slab node, map slot, synthesized algorithm core), plus the
/// per-type tables and the unsolvability witness, the two components that
/// actually grow with the problem. Deliberately coarse — the bound exists to
/// keep cache memory proportional to what is cached, not to audit the
/// allocator.
pub fn approximate_classification_weight(classification: &Arc<Classification>) -> u64 {
    let types = classification.num_types() as u64;
    let witness = classification
        .unsolvability_witness()
        .map_or(0, |w| w.len() as u64);
    256 + 64 * types + 2 * witness
}

/// Prices a whole [`CacheEntry`] in approximate resident bytes:
/// [`approximate_classification_weight`] plus a conservative reservation for
/// the reply-bytes lane. The lane fills *after* insertion (the weigher runs
/// once, at insert time, and never re-prices), so the serialized payload —
/// a fixed verdict skeleton plus the JSON-rendered witness, about six bytes
/// per witness node — must be paid for up front whether or not a reply is
/// ever attached.
pub fn approximate_entry_weight(classification: &Arc<Classification>) -> u64 {
    let witness = classification
        .unsolvability_witness()
        .map_or(0, |w| w.len() as u64);
    approximate_classification_weight(classification) + 256 + 6 * witness
}

/// The cache weigher: adapts [`approximate_entry_weight`] to the cache's
/// value type.
fn entry_weight(entry: &Arc<CacheEntry>) -> u64 {
    approximate_entry_weight(&entry.classification)
}

/// The process-wide engine backing the legacy free functions
/// ([`crate::classify`]). Built on first use with default options.
pub fn default_engine() -> &'static Engine {
    static DEFAULT: OnceLock<Engine> = OnceLock::new();
    DEFAULT.get_or_init(Engine::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::Topology;

    fn coloring(k: u16) -> NormalizedLcl {
        let mut b = NormalizedLcl::builder(format!("{k}-coloring"));
        b.input_labels(&["x"]);
        let names: Vec<String> = (1..=k).map(|i| i.to_string()).collect();
        b.output_labels(&names);
        b.allow_all_node_pairs();
        for p in 0..k {
            for q in 0..k {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn three_coloring() -> NormalizedLcl {
        coloring(3)
    }

    fn two_coloring() -> NormalizedLcl {
        coloring(2)
    }

    #[test]
    fn cache_hits_skip_recomputation() {
        let engine = Engine::new();
        let first = engine.classify(&three_coloring()).unwrap();
        assert_eq!(
            engine.cache_stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 1,
                evictions: 0,
                inserts: 1,
                peak_entries: 1,
                weight: 1,
                peak_weight: 1,
                fast_hits: 0,
                locked_hits: 0,
                flight_leaders: 1,
                flight_joins: 0,
                bytes_hits: 0,
                bytes_misses: 0,
                shards: engine.cache_shards(),
            }
        );
        let second = engine.classify(&three_coloring()).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "served from cache");
        assert_eq!(engine.cache_stats().hits, 1);
        engine.clear_cache();
        let cleared = engine.cache_stats();
        assert_eq!(cleared.entries, 0);
        assert_eq!(cleared.evictions, 1, "clear accounts dropped entries");
        assert_eq!(
            cleared.entries as u64 + cleared.evictions,
            cleared.inserts,
            "snapshot invariant survives a clear"
        );
    }

    #[test]
    fn batch_matches_sequential_and_dedupes() {
        let problems = vec![three_coloring(), two_coloring(), three_coloring()];
        let engine = Engine::builder().parallelism(2).build();
        let batch = engine.classify_many(&problems);
        assert_eq!(batch.len(), 3);
        // Duplicates are classified once and share the Arc.
        let first = batch[0].as_ref().unwrap();
        let third = batch[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(first, third));
        assert_eq!(engine.cache_stats().misses, 2);
        for (problem, result) in problems.iter().zip(&batch) {
            let fresh = Engine::new().classify(problem).unwrap();
            assert_eq!(
                fresh.complexity(),
                result.as_ref().unwrap().complexity(),
                "batch and sequential disagree on {}",
                problem.name()
            );
        }
        assert!(engine.classify_many(&[]).is_empty());
    }

    #[test]
    fn batches_run_on_the_persistent_pool() {
        let engine = Engine::builder().parallelism(2).build();
        assert_eq!(engine.pool_stats().workers, 2);
        let problems = vec![three_coloring(), two_coloring(), coloring(4)];
        let batch = engine.classify_many(&problems);
        assert!(batch.iter().all(Result::is_ok));
        // The pool's completion counter is incremented just after each job
        // body finishes; poll briefly for the bookkeeping to settle.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while engine.pool_stats().jobs_completed < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never recorded the batch: {:?}",
                engine.pool_stats()
            );
            std::thread::yield_now();
        }
        assert_eq!(engine.pool_stats().queue_depth, 0);
        let shown = engine.pool_stats().to_string();
        assert!(shown.contains("2 workers"), "{shown}");
    }

    #[test]
    fn cached_peeks_without_computing() {
        let engine = Engine::new();
        let problem = three_coloring();
        assert!(engine.cached(&problem).is_none());
        // A peek miss is not a cache miss: nothing was computed.
        assert_eq!(engine.cache_stats().misses, 0);
        let computed = engine.classify(&problem).unwrap();
        let peeked = engine.cached(&problem).expect("memoized now");
        assert!(Arc::ptr_eq(&computed, &peeked));
        assert_eq!(engine.cache_stats().hits, 1, "a peek hit counts as a hit");
    }

    #[test]
    fn classify_pooled_agrees_with_classify() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = three_coloring();
        let pooled = engine.classify_pooled(&problem).unwrap();
        assert_eq!(engine.cache_stats().misses, 1);
        // Warm path: served on the calling thread straight from the cache.
        let direct = engine.classify(&problem).unwrap();
        assert!(Arc::ptr_eq(&pooled, &direct));
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn dispatch_returns_before_the_task_runs() {
        let engine = Engine::builder().parallelism(1).build();
        // Park the only worker: dispatch must still return immediately.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate = engine.dispatch(move || {
            let _ = gate_rx.recv();
        });
        let problem = three_coloring();
        let core_engine = Engine::builder().parallelism(1).build();
        let rx = engine.dispatch(move || core_engine.classify(&problem).map(|c| c.complexity()));
        gate_tx.send(()).expect("worker parked on the gate");
        assert_eq!(rx.recv().unwrap().unwrap(), Complexity::LogStar);
        gate.recv().expect("gate task completed");
    }

    #[test]
    fn dispatch_notify_signals_after_the_reply_exists() {
        let engine = Engine::builder().parallelism(1).build();
        let (notified_tx, notified_rx) = mpsc::channel::<()>();
        let rx = engine.dispatch_notify(
            || 7u32,
            move || {
                let _ = notified_tx.send(());
            },
        );
        notified_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("notify fires");
        assert_eq!(rx.try_recv(), Ok(7), "reply observable at notify time");
    }

    #[test]
    fn solve_inline_matches_solve() {
        let engine = Engine::builder().parallelism(1).build();
        let problem = three_coloring();
        let instance = Instance::from_indices(Topology::Cycle, &[0; 30]);
        let inline = engine.solve_inline(&problem, &instance).unwrap();
        let pooled = engine.solve(&problem, &instance).unwrap();
        assert_eq!(inline.complexity(), pooled.complexity());
        assert_eq!(inline.labeling(), pooled.labeling());
        assert_eq!(inline.rounds(), pooled.rounds());
        // solve_inline classifies on the calling thread, so it is safe from
        // a dispatched task even on this single-worker pool. The Arc must
        // outlive the task: an engine dropped on its own worker would
        // self-join.
        let inner = std::sync::Arc::new(Engine::builder().parallelism(1).build());
        let inner_for_task = std::sync::Arc::clone(&inner);
        let rx = inner.dispatch(move || {
            inner_for_task
                .solve_inline(&problem, &instance)
                .map(|s| s.rounds())
        });
        assert_eq!(rx.recv().unwrap().unwrap(), pooled.rounds());
        drop(inner);
    }

    #[test]
    fn solve_runs_the_synthesized_algorithm() {
        let engine = Engine::new();
        let problem = three_coloring();
        let instance = Instance::from_indices(Topology::Cycle, &[0; 60]);
        let solution = engine.solve(&problem, &instance).unwrap();
        assert_eq!(solution.complexity(), Complexity::LogStar);
        assert_eq!(solution.labeling().len(), 60);
        assert!(solution.rounds() > 0);
        assert!(problem.is_valid(&instance, solution.labeling()));
        assert!(solution.classification().num_types() >= 1);
    }

    #[test]
    fn solve_reports_unsolvable_problems() {
        let engine = Engine::new();
        let instance = Instance::from_indices(Topology::Cycle, &[0; 5]);
        let err = engine.solve(&two_coloring(), &instance).unwrap_err();
        assert!(matches!(err, crate::ClassifierError::Solve { .. }));
        assert!(err.to_string().contains("unsolvable"));
    }

    #[test]
    fn builder_knobs_are_applied() {
        let engine = Engine::builder()
            .type_budget(1)
            .search_budget(10)
            .pattern_length_cap(2)
            .parallelism(3)
            .cache_shards(2)
            .build();
        assert_eq!(engine.options().type_budget, 1);
        assert_eq!(engine.options().search_budget, 10);
        assert_eq!(engine.options().pattern_length_cap, 2);
        assert_eq!(engine.parallelism(), 3);
        assert_eq!(engine.cache_shards(), 2);
        // A budget of one type is too small for any real problem.
        assert!(engine.classify(&three_coloring()).is_err());
        // Errors are not cached.
        assert_eq!(engine.cache_stats().entries, 0);
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn cache_shards_default_to_pool_width() {
        // next_pow2(workers), so at default settings no two pool workers
        // must contend on one shard lock.
        let engine = Engine::builder().parallelism(3).build();
        assert_eq!(engine.cache_shards(), 4);
        assert_eq!(engine.cache_stats().shards, 4);
        // A tiny capacity clamps the shard count: every shard keeps >= 1 slot.
        let tiny = Engine::builder().parallelism(8).cache_capacity(2).build();
        assert_eq!(tiny.cache_shards(), 2);
        // Per-shard snapshots are exposed in shard order.
        assert_eq!(engine.cache_shard_stats().len(), 4);
    }

    #[test]
    fn solve_diagnoses_unsolvable_instances_of_solvable_problems() {
        // 3-coloring is Θ(log* n) on long cycles, but a 1-node cycle admits
        // no valid labeling; the error must blame the instance, not the
        // synthesized algorithm.
        let engine = Engine::new();
        let singleton = Instance::from_indices(Topology::Cycle, &[0]);
        let err = engine.solve(&three_coloring(), &singleton).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("admits no valid labeling"),
            "wrong diagnosis: {message}"
        );
    }

    #[test]
    fn solve_rejects_out_of_alphabet_instances() {
        // Wire payloads only guarantee labels fit in u16; solve must reject
        // labels outside the problem's alphabet instead of panicking.
        let engine = Engine::new();
        let instance = Instance::from_indices(Topology::Cycle, &[5; 10]);
        let err = engine.solve(&three_coloring(), &instance).unwrap_err();
        assert!(matches!(err, crate::ClassifierError::Problem(_)));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn full_cache_evicts_somebody() {
        let engine = Engine::builder().cache_capacity(1).build();
        engine.classify(&three_coloring()).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);
        engine.classify(&two_coloring()).unwrap();
        // Capacity 1: three-coloring was evicted, two-coloring remains.
        assert_eq!(engine.cache_stats().entries, 1);
        engine.classify(&three_coloring()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 0, "evicted entry cannot hit");
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        // Regression test for the FIFO → LRU upgrade, ported to the sharded
        // cache: pinned to one shard, where per-shard LRU *is* the exact
        // global LRU the old single-lock cache implemented (the raw-cache
        // twin asserting the victim keys lives in cache.rs:
        // `one_shard_reproduces_global_lru_victim_order`).
        let engine = Engine::builder()
            .cache_capacity(2)
            .cache_shards(1)
            .parallelism(1)
            .build();
        let a = three_coloring();
        let b = two_coloring();
        let c = coloring(4);

        engine.classify(&a).unwrap(); // cache: [a]
        engine.classify(&b).unwrap(); // cache: [a, b]
        engine.classify(&a).unwrap(); // hit: a becomes most recent
        engine.classify(&c).unwrap(); // full → evicts b (LRU), NOT a (FIFO)
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        assert_eq!(stats.entries, 2);

        engine.classify(&a).unwrap(); // still cached: hit
        assert_eq!(engine.cache_stats().hits, 2, "a must have survived");
        engine.classify(&b).unwrap(); // recompute: b was the victim
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 4, "b must have been evicted");
        assert_eq!(stats.evictions, 2, "inserting b evicted c (the new LRU)");

        engine.classify(&a).unwrap(); // a outlived both evictions
        assert_eq!(engine.cache_stats().hits, 3);
    }

    #[test]
    fn cache_stats_hit_ratio_and_display() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            evictions: 0,
            inserts: 1,
            peak_entries: 1,
            weight: 1,
            peak_weight: 1,
            fast_hits: 1,
            locked_hits: 2,
            flight_leaders: 1,
            flight_joins: 0,
            bytes_hits: 0,
            bytes_misses: 0,
            shards: 2,
        };
        assert!((stats.hit_ratio() - 0.75).abs() < 1e-12);
        let shown = stats.to_string();
        assert!(shown.contains("3 hits"), "{shown}");
        assert!(shown.contains("1 fast"), "{shown}");
        assert!(shown.contains("2 locked"), "{shown}");
        assert!(shown.contains("75.0%"), "{shown}");
        assert!(shown.contains("2 shards"), "{shown}");
        let empty = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
            evictions: 0,
            inserts: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
            fast_hits: 0,
            locked_hits: 0,
            flight_leaders: 0,
            flight_joins: 0,
            bytes_hits: 0,
            bytes_misses: 0,
            shards: 1,
        };
        assert_eq!(empty.hit_ratio(), 0.0);
    }

    #[test]
    fn weight_bounded_cache_evicts_by_classification_size() {
        // Price one classification, then budget the cache to hold exactly
        // one of them: a second distinct problem must displace the first.
        let probe = Engine::builder().parallelism(1).build();
        let priced = probe.classify(&three_coloring()).unwrap();
        let weight = approximate_entry_weight(&priced);
        assert!(
            weight >= approximate_classification_weight(&priced) + 256,
            "the reply-bytes reservation is priced in"
        );
        let engine = Engine::builder()
            .parallelism(1)
            .cache_shards(1)
            .cache_weight_capacity(weight)
            .build();
        engine.classify(&three_coloring()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.entries, stats.weight), (1, weight));
        engine.classify(&two_coloring()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1, "budget holds one classification");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries as u64 + stats.evictions, stats.inserts);
    }

    #[test]
    fn concurrent_cold_classify_computes_once() {
        // Eight threads race the same cold problem through the barrier: the
        // single-flight cache must elect exactly one leader, and every
        // thread must share the leader's allocation.
        const THREADS: usize = 8;
        let engine = std::sync::Arc::new(Engine::builder().parallelism(2).build());
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let engine = std::sync::Arc::clone(&engine);
            let barrier = std::sync::Arc::clone(&barrier);
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                engine.classify(&three_coloring()).unwrap()
            }));
        }
        let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for other in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], other),
                "all threads share the leader's classification"
            );
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one computation, however many racers");
        assert_eq!(stats.flight_leaders, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(
            stats.hits + stats.misses,
            THREADS as u64,
            "every thread is exactly one of hit/join/leader: {stats:?}"
        );
        for shard in engine.cache_shard_stats() {
            assert!(shard.is_consistent(), "{shard:?}");
        }
    }

    #[test]
    fn cached_reply_attaches_once_and_serves_shared_bytes() {
        let engine = Engine::new();
        let problem = three_coloring();
        // Cold cache: the lane declines without computing or counting.
        assert!(engine
            .cached_reply(&problem, |_| unreachable!("no entry to render for"))
            .is_none());
        assert_eq!(engine.cache_stats().misses, 0);

        engine.classify(&problem).unwrap();
        let first = match engine.cached_reply(&problem, |c| {
            format!("payload for {} types", c.num_types()).into_bytes()
        }) {
            Some(ReplyLane::Bytes(bytes)) => bytes,
            other => panic!("expected attached bytes, got {other:?}"),
        };
        let second = match engine.cached_reply(&problem, |_| unreachable!("attached already")) {
            Some(ReplyLane::Bytes(bytes)) => bytes,
            other => panic!("expected cached bytes, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&first, &second), "one payload allocation");
        let stats = engine.cache_stats();
        assert_eq!((stats.bytes_misses, stats.bytes_hits), (1, 1));
        assert_eq!(stats.hits, 2, "each lane probe is an ordinary hit too");

        // Clearing the cache drops the payload with its entry.
        engine.clear_cache();
        assert!(engine.cached_reply(&problem, |_| Vec::new()).is_none());
    }

    #[test]
    fn cached_reply_refuses_bytes_rendered_for_another_name() {
        // Structural twins share a cache entry, but the serialized verdict
        // embeds the problem name — the lane must hand back the
        // classification for fresh serialization instead of the twin's bytes.
        let engine = Engine::new();
        let original = three_coloring();
        let renamed = {
            let mut b = NormalizedLcl::builder("same-structure-other-name");
            b.input_labels(&["x"]);
            b.output_labels(&["1", "2", "3"]);
            b.allow_all_node_pairs();
            for p in 0..3u16 {
                for q in 0..3u16 {
                    if p != q {
                        b.allow_edge_idx(p, q);
                    }
                }
            }
            b.build().unwrap()
        };
        assert_eq!(original.structural_key(), renamed.structural_key());

        let classified = engine.classify(&original).unwrap();
        match engine.cached_reply(&original, |_| b"original bytes".to_vec()) {
            Some(ReplyLane::Bytes(_)) => {}
            other => panic!("expected attached bytes, got {other:?}"),
        }
        match engine.cached_reply(&renamed, |_| unreachable!("must not re-render")) {
            Some(ReplyLane::Render(classification)) => {
                assert!(Arc::ptr_eq(&classification, &classified));
            }
            other => panic!("expected fresh-render verdict, got {other:?}"),
        }
        let stats = engine.cache_stats();
        assert_eq!(
            (stats.bytes_misses, stats.bytes_hits),
            (1, 0),
            "an alias probe is neither a bytes hit nor a bytes miss"
        );
    }

    #[test]
    fn default_engine_is_shared() {
        let a = default_engine();
        let b = default_engine();
        assert!(std::ptr::eq(a, b));
    }
}
