//! The service-ready classification engine.
//!
//! [`Engine`] is the long-lived entry point this crate exposes to servers,
//! batch jobs and tools. Where the free function [`crate::classify`] performs
//! one classification from scratch, an engine
//!
//! * **memoizes**: classifications are cached under the problem's exact
//!   [`structural key`](lcl_problem::NormalizedLcl::structural_key) (name-
//!   and label-name-insensitive, collision-free), so once a problem is
//!   cached, the expensive type-semigroup and feasibility work is never
//!   repeated for that structure. Threads that miss a *cold* cache
//!   concurrently may duplicate the computation (one result wins; each such
//!   computation counts as a miss) — [`Engine::classify_many`] avoids this by
//!   deduplicating its batch up front. The cache is bounded
//!   ([`EngineBuilder::cache_capacity`], FIFO eviction), and
//!   [`Engine::cache_stats`] exposes hit/miss counters;
//! * **batches**: [`Engine::classify_many`] classifies a whole workload in
//!   parallel on a scoped thread pool (structurally identical problems are
//!   deduplicated first), returning verdicts in deterministic input order;
//! * **solves end-to-end**: [`Engine::solve`] classifies, synthesizes the
//!   optimal LOCAL algorithm and runs it on a concrete
//!   [`Instance`] in the ball-view simulator, returning the labeling together
//!   with the round count;
//! * **speaks the wire format**: [`Engine::verdict`] produces a serializable
//!   [`Verdict`] summary, and problems enter the engine through
//!   [`lcl_problem::ProblemSpec`] just as well as through built values.
//!
//! Parallelism note: the batch path uses `std::thread::scope` with a
//! work-stealing index rather than rayon — the offline build environment
//! cannot fetch rayon, and a scoped pool over an atomic cursor gives the same
//! deterministic-order guarantee for this fan-out shape.
//!
//! # Example
//!
//! ```
//! use lcl_classifier::{Complexity, Engine};
//! use lcl_problem::NormalizedLcl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NormalizedLcl::builder("3-coloring");
//! b.input_labels(&["x"]);
//! b.output_labels(&["1", "2", "3"]);
//! b.allow_all_node_pairs();
//! for p in 0..3u16 {
//!     for q in 0..3u16 {
//!         if p != q {
//!             b.allow_edge_idx(p, q);
//!         }
//!     }
//! }
//! let problem = b.build()?;
//!
//! let engine = Engine::new();
//! let first = engine.classify(&problem)?;
//! let second = engine.classify(&problem)?; // served from the memo cache
//! assert_eq!(first.complexity(), Complexity::LogStar);
//! assert_eq!(second.complexity(), Complexity::LogStar);
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::classify::{classify_with_options, ClassifierOptions};
use crate::verdict::{Classification, Complexity, Verdict};
use crate::Result;
use lcl_local_sim::{LocalAlgorithm, Network, SyncSimulator};
use lcl_problem::{Instance, Labeling, NormalizedLcl};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock, RwLock};
use std::thread;

/// Builder for [`Engine`].
///
/// Wraps [`ClassifierOptions`] and adds engine-level knobs (parallelism).
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    options: ClassifierOptions,
    parallelism: Option<usize>,
    cache_capacity: Option<usize>,
}

/// Default bound on the number of cached classifications per engine.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

impl EngineBuilder {
    /// Starts from default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the classifier options wholesale.
    pub fn options(mut self, options: ClassifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Caps the number of types (transfer relations) enumerated per problem.
    pub fn type_budget(mut self, budget: usize) -> Self {
        self.options.type_budget = budget;
        self
    }

    /// Caps the number of backtracking nodes in the feasibility search.
    pub fn search_budget(mut self, budget: usize) -> Self {
        self.options.search_budget = budget;
        self
    }

    /// Caps the primitive-pattern length used by the `O(1)` conditions.
    pub fn pattern_length_cap(mut self, cap: usize) -> Self {
        self.options.pattern_length_cap = cap;
        self
    }

    /// Sets the number of worker threads [`Engine::classify_many`] uses.
    /// Defaults to the machine's available parallelism.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Bounds the number of cached classifications; when full, the oldest
    /// entry is evicted. Defaults to [`DEFAULT_CACHE_CAPACITY`].
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries.max(1));
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        let parallelism = self
            .parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |p| p.get()));
        Engine {
            options: self.options,
            parallelism,
            cache_capacity: self.cache_capacity.unwrap_or(DEFAULT_CACHE_CAPACITY),
            cache: RwLock::new(Cache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// The memo store: classifications keyed by the problem's exact
/// [`structural key`](NormalizedLcl::structural_key) (collision-free, unlike
/// the 64-bit canonical hash), with insertion order tracked for FIFO
/// eviction at capacity.
#[derive(Debug, Default)]
struct Cache {
    map: HashMap<Vec<u8>, Arc<Classification>>,
    order: VecDeque<Vec<u8>>,
}

/// Cache-effectiveness counters of an [`Engine`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Classifications served from the memo cache.
    pub hits: u64,
    /// Classifications that had to be computed.
    pub misses: u64,
    /// Distinct problems currently cached.
    pub entries: usize,
}

/// The result of [`Engine::solve`]: the classification together with the
/// labeling the synthesized algorithm produced on the given instance and the
/// number of LOCAL rounds it used.
#[derive(Clone, Debug)]
pub struct Solution {
    classification: Arc<Classification>,
    labeling: Labeling,
    rounds: usize,
}

impl Solution {
    /// The classification backing the run.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The complexity class of the problem.
    pub fn complexity(&self) -> Complexity {
        self.classification.complexity()
    }

    /// The valid labeling produced by the synthesized algorithm.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The number of LOCAL rounds (= view radius) the algorithm used on this
    /// instance.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// A long-lived, concurrency-safe classification service.
///
/// See the [module documentation](self) for the design and an example. An
/// engine is cheap to share: all methods take `&self`, and the memo cache is
/// guarded by a reader–writer lock, so concurrent classifications of cached
/// problems do not contend.
#[derive(Debug)]
pub struct Engine {
    options: ClassifierOptions,
    parallelism: usize,
    cache_capacity: usize,
    cache: RwLock<Cache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        EngineBuilder::new().build()
    }
}

impl Engine {
    /// Creates an engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building an engine with custom options.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The classifier options this engine runs with.
    pub fn options(&self) -> &ClassifierOptions {
        &self.options
    }

    /// The number of worker threads [`Engine::classify_many`] uses.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Classifies a problem, serving repeated requests for structurally
    /// identical problems from the memo cache.
    ///
    /// # Errors
    ///
    /// See [`crate::classify_with_options`]. Errors are not cached; a retry
    /// with the same engine recomputes.
    pub fn classify(&self, problem: &NormalizedLcl) -> Result<Arc<Classification>> {
        let key = problem.structural_key();
        if let Some(cached) = self.cache.read().expect("cache lock").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(cached));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(classify_with_options(problem, &self.options)?);
        let mut cache = self.cache.write().expect("cache lock");
        // Another thread may have raced us to the same problem; keep the
        // first entry so every caller shares one allocation.
        if let Some(existing) = cache.map.get(&key) {
            return Ok(Arc::clone(existing));
        }
        while cache.map.len() >= self.cache_capacity {
            let Some(oldest) = cache.order.pop_front() else {
                break;
            };
            cache.map.remove(&oldest);
        }
        cache.map.insert(key.clone(), Arc::clone(&computed));
        cache.order.push_back(key);
        Ok(computed)
    }

    /// Classifies a batch of problems in parallel, returning verdicts in the
    /// order of the input slice.
    ///
    /// Structurally identical problems (equal structural key) are classified
    /// once and share the resulting `Arc`. The work runs on
    /// [`Engine::parallelism`] scoped threads; the output order is
    /// deterministic regardless of scheduling.
    pub fn classify_many(&self, problems: &[NormalizedLcl]) -> Vec<Result<Arc<Classification>>> {
        if problems.is_empty() {
            return Vec::new();
        }
        // Deduplicate by structure: owners[i] is the index of the first
        // problem with the same structural key.
        let mut first_of: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut owners = Vec::with_capacity(problems.len());
        let mut unique = Vec::new();
        for (i, problem) in problems.iter().enumerate() {
            let rep = *first_of.entry(problem.structural_key()).or_insert_with(|| {
                unique.push(i);
                i
            });
            owners.push(rep);
        }

        let workers = self.parallelism.min(unique.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let unique = &unique;
                scope.spawn(move || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = unique.get(k) else { break };
                    let result = self.classify(&problems[index]);
                    if tx.send((index, result)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut by_rep: HashMap<usize, Result<Arc<Classification>>> = rx.into_iter().collect();
        debug_assert_eq!(by_rep.len(), unique.len());
        owners
            .iter()
            .map(|rep| {
                by_rep
                    .get_mut(rep)
                    .expect("every representative was classified")
                    .clone()
            })
            .collect()
    }

    /// Classifies the problem, then runs the synthesized optimal algorithm on
    /// the instance (sequential identifiers, ball-view simulator) and verifies
    /// the output: classify → synthesize → execute in one call.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ClassifierError::Problem`] when the instance carries
    /// input labels outside the problem's alphabet (wire payloads are not
    /// validated before this point), [`crate::ClassifierError::Solve`] when
    /// the problem is unsolvable (globally, or on this specific instance),
    /// propagates classification errors, and wraps simulator failures in
    /// [`crate::ClassifierError::Sim`].
    pub fn solve(&self, problem: &NormalizedLcl, instance: &Instance) -> Result<Solution> {
        // Instances can arrive straight off the wire; validate against the
        // problem's alphabet before the verifier's assertions would panic.
        instance.check_alphabet(problem.num_inputs())?;
        let classification = self.classify(problem)?;
        if classification.complexity() == Complexity::Unsolvable {
            return Err(crate::ClassifierError::Solve {
                what: format!(
                    "problem {} is unsolvable (witness of length {})",
                    problem.name(),
                    classification
                        .unsolvability_witness()
                        .map_or(0, Instance::len),
                ),
            });
        }
        let network = Network::with_sequential_ids(instance.clone());
        let algorithm = classification.algorithm();
        let rounds = algorithm.radius(instance.len());
        let labeling = SyncSimulator::new().run(&network, algorithm)?;
        let report = problem.check(instance, &labeling);
        if !report.is_valid() {
            // Asymptotically solvable problems can still have degenerate
            // instances with no valid labeling at all (e.g. a 1-node cycle
            // for 3-coloring); diagnose that before blaming the synthesizer.
            let solvable =
                lcl_semigroup::TransferSystem::new(problem).instance_solvable(instance)?;
            if !solvable {
                return Err(crate::ClassifierError::Solve {
                    what: format!(
                        "this {}-node {} instance admits no valid labeling for problem {}",
                        instance.len(),
                        instance.topology(),
                        problem.name(),
                    ),
                });
            }
            return Err(crate::ClassifierError::Solve {
                what: format!(
                    "synthesized {} algorithm produced an invalid labeling on a {}-node {} ({} violations)",
                    classification.complexity(),
                    instance.len(),
                    instance.topology(),
                    report.violations().len(),
                ),
            });
        }
        Ok(Solution {
            classification,
            labeling,
            rounds,
        })
    }

    /// Classifies the problem and returns the serializable [`Verdict`]
    /// summary (the wire-format view of a [`Classification`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::classify`].
    pub fn verdict(&self, problem: &NormalizedLcl) -> Result<Verdict> {
        let classification = self.classify(problem)?;
        Ok(Verdict::new(problem, &classification))
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.read().expect("cache lock").map.len(),
        }
    }

    /// Drops every cached classification (counters are kept).
    pub fn clear_cache(&self) {
        let mut cache = self.cache.write().expect("cache lock");
        cache.map.clear();
        cache.order.clear();
    }
}

/// The process-wide engine backing the legacy free functions
/// ([`crate::classify`]). Built on first use with default options.
pub fn default_engine() -> &'static Engine {
    static DEFAULT: OnceLock<Engine> = OnceLock::new();
    DEFAULT.get_or_init(Engine::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::Topology;

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    #[test]
    fn cache_hits_skip_recomputation() {
        let engine = Engine::new();
        let first = engine.classify(&three_coloring()).unwrap();
        assert_eq!(
            engine.cache_stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 1
            }
        );
        let second = engine.classify(&three_coloring()).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "served from cache");
        assert_eq!(engine.cache_stats().hits, 1);
        engine.clear_cache();
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn batch_matches_sequential_and_dedupes() {
        let problems = vec![three_coloring(), two_coloring(), three_coloring()];
        let engine = Engine::builder().parallelism(2).build();
        let batch = engine.classify_many(&problems);
        assert_eq!(batch.len(), 3);
        // Duplicates are classified once and share the Arc.
        let first = batch[0].as_ref().unwrap();
        let third = batch[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(first, third));
        assert_eq!(engine.cache_stats().misses, 2);
        for (problem, result) in problems.iter().zip(&batch) {
            let fresh = Engine::new().classify(problem).unwrap();
            assert_eq!(
                fresh.complexity(),
                result.as_ref().unwrap().complexity(),
                "batch and sequential disagree on {}",
                problem.name()
            );
        }
        assert!(engine.classify_many(&[]).is_empty());
    }

    #[test]
    fn solve_runs_the_synthesized_algorithm() {
        let engine = Engine::new();
        let problem = three_coloring();
        let instance = Instance::from_indices(Topology::Cycle, &[0; 60]);
        let solution = engine.solve(&problem, &instance).unwrap();
        assert_eq!(solution.complexity(), Complexity::LogStar);
        assert_eq!(solution.labeling().len(), 60);
        assert!(solution.rounds() > 0);
        assert!(problem.is_valid(&instance, solution.labeling()));
        assert!(solution.classification().num_types() >= 1);
    }

    #[test]
    fn solve_reports_unsolvable_problems() {
        let engine = Engine::new();
        let instance = Instance::from_indices(Topology::Cycle, &[0; 5]);
        let err = engine.solve(&two_coloring(), &instance).unwrap_err();
        assert!(matches!(err, crate::ClassifierError::Solve { .. }));
        assert!(err.to_string().contains("unsolvable"));
    }

    #[test]
    fn builder_knobs_are_applied() {
        let engine = Engine::builder()
            .type_budget(1)
            .search_budget(10)
            .pattern_length_cap(2)
            .parallelism(3)
            .build();
        assert_eq!(engine.options().type_budget, 1);
        assert_eq!(engine.options().search_budget, 10);
        assert_eq!(engine.options().pattern_length_cap, 2);
        assert_eq!(engine.parallelism(), 3);
        // A budget of one type is too small for any real problem.
        assert!(engine.classify(&three_coloring()).is_err());
        // Errors are not cached.
        assert_eq!(engine.cache_stats().entries, 0);
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn solve_diagnoses_unsolvable_instances_of_solvable_problems() {
        // 3-coloring is Θ(log* n) on long cycles, but a 1-node cycle admits
        // no valid labeling; the error must blame the instance, not the
        // synthesized algorithm.
        let engine = Engine::new();
        let singleton = Instance::from_indices(Topology::Cycle, &[0]);
        let err = engine.solve(&three_coloring(), &singleton).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("admits no valid labeling"),
            "wrong diagnosis: {message}"
        );
    }

    #[test]
    fn solve_rejects_out_of_alphabet_instances() {
        // Wire payloads only guarantee labels fit in u16; solve must reject
        // labels outside the problem's alphabet instead of panicking.
        let engine = Engine::new();
        let instance = Instance::from_indices(Topology::Cycle, &[5; 10]);
        let err = engine.solve(&three_coloring(), &instance).unwrap_err();
        assert!(matches!(err, crate::ClassifierError::Problem(_)));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn cache_capacity_evicts_oldest() {
        let engine = Engine::builder().cache_capacity(1).build();
        engine.classify(&three_coloring()).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);
        engine.classify(&two_coloring()).unwrap();
        // Capacity 1: three-coloring was evicted, two-coloring remains.
        assert_eq!(engine.cache_stats().entries, 1);
        engine.classify(&three_coloring()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 0, "evicted entry cannot hit");
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn default_engine_is_shared() {
        let a = default_engine();
        let b = default_engine();
        assert!(std::ptr::eq(a, b));
    }
}
