//! Classification verdicts.

use lcl_problem::Instance;
use std::fmt;

/// The deterministic LOCAL complexity class of an LCL problem on labeled
/// directed cycles (and paths, via the endpoint-label lift).
///
/// The paper shows these are the only possible classes for `∆ = 2`
/// (§1, "the time complexity of any LCL problem is either O(1), Θ(log* n), or
/// Θ(n)"); we add an explicit `Unsolvable` verdict for problems that admit no
/// valid labeling on some instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Complexity {
    /// Some input-labeled cycle admits no valid output labeling at all.
    Unsolvable,
    /// Solvable in a constant number of rounds.
    Constant,
    /// Solvable in `Θ(log* n)` rounds and not faster.
    LogStar,
    /// Requires `Θ(n)` rounds.
    Linear,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Unsolvable => write!(f, "unsolvable"),
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "Θ(log* n)"),
            Complexity::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// The full result of classifying a problem: the complexity class, an optional
/// unsolvability witness, and the synthesized algorithm for the class.
#[derive(Clone, Debug)]
pub struct Classification {
    pub(crate) complexity: Complexity,
    pub(crate) witness: Option<Instance>,
    pub(crate) synthesized: crate::synthesis::SynthesizedAlgorithm,
    pub(crate) num_types: usize,
    pub(crate) pump_threshold: usize,
}

impl Classification {
    /// The complexity class.
    pub fn complexity(&self) -> Complexity {
        self.complexity.clone()
    }

    /// A witness instance with no valid labeling, for unsolvable problems.
    pub fn unsolvability_witness(&self) -> Option<&Instance> {
        self.witness.as_ref()
    }

    /// The synthesized asymptotically optimal LOCAL algorithm (the trivial
    /// gather-all algorithm for `Θ(n)` and unsolvable problems).
    pub fn algorithm(&self) -> &crate::synthesis::SynthesizedAlgorithm {
        &self.synthesized
    }

    /// The number of path types (transfer relations) of the problem —
    /// the size of the object the decision procedure works with.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The computed pumping threshold (the stand-in for the paper's `ℓ_pump`).
    pub fn pump_threshold(&self) -> usize {
        self.pump_threshold
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} types, pump threshold {})",
            self.complexity, self.num_types, self.pump_threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Complexity::Constant.to_string(), "O(1)");
        assert_eq!(Complexity::LogStar.to_string(), "Θ(log* n)");
        assert_eq!(Complexity::Linear.to_string(), "Θ(n)");
        assert_eq!(Complexity::Unsolvable.to_string(), "unsolvable");
    }
}
