//! Classification verdicts, including the serializable wire-format summary.

use crate::Result;
use lcl_local_sim::LocalAlgorithm;
use lcl_problem::json::JsonValue;
use lcl_problem::{Instance, NormalizedLcl, ProblemError};
use std::fmt;

/// The deterministic LOCAL complexity class of an LCL problem on labeled
/// directed cycles (and paths, via the endpoint-label lift).
///
/// The paper shows these are the only possible classes for `∆ = 2`
/// (§1, "the time complexity of any LCL problem is either O(1), Θ(log* n), or
/// Θ(n)"); we add an explicit `Unsolvable` verdict for problems that admit no
/// valid labeling on some instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Complexity {
    /// Some input-labeled cycle admits no valid output labeling at all.
    Unsolvable,
    /// Solvable in a constant number of rounds.
    Constant,
    /// Solvable in `Θ(log* n)` rounds and not faster.
    LogStar,
    /// Requires `Θ(n)` rounds.
    Linear,
}

impl Complexity {
    /// The stable ASCII identifier used by the wire format (as opposed to the
    /// human-oriented [`fmt::Display`] form, which uses mathematical
    /// notation).
    pub fn wire_name(&self) -> &'static str {
        match self {
            Complexity::Unsolvable => "unsolvable",
            Complexity::Constant => "constant",
            Complexity::LogStar => "log-star",
            Complexity::Linear => "linear",
        }
    }

    /// Parses a wire identifier produced by [`Complexity::wire_name`].
    pub fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "unsolvable" => Some(Complexity::Unsolvable),
            "constant" => Some(Complexity::Constant),
            "log-star" => Some(Complexity::LogStar),
            "linear" => Some(Complexity::Linear),
            _ => None,
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Unsolvable => write!(f, "unsolvable"),
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "Θ(log* n)"),
            Complexity::Linear => write!(f, "Θ(n)"),
        }
    }
}

/// The full result of classifying a problem: the complexity class, an optional
/// unsolvability witness, and the synthesized algorithm for the class.
#[derive(Clone, Debug)]
pub struct Classification {
    pub(crate) complexity: Complexity,
    pub(crate) witness: Option<Instance>,
    pub(crate) synthesized: crate::synthesis::SynthesizedAlgorithm,
    pub(crate) num_types: usize,
    pub(crate) pump_threshold: usize,
}

impl Classification {
    /// The complexity class.
    pub fn complexity(&self) -> Complexity {
        self.complexity.clone()
    }

    /// A witness instance with no valid labeling, for unsolvable problems.
    pub fn unsolvability_witness(&self) -> Option<&Instance> {
        self.witness.as_ref()
    }

    /// The synthesized asymptotically optimal LOCAL algorithm (the trivial
    /// gather-all algorithm for `Θ(n)` and unsolvable problems).
    pub fn algorithm(&self) -> &crate::synthesis::SynthesizedAlgorithm {
        &self.synthesized
    }

    /// The number of path types (transfer relations) of the problem —
    /// the size of the object the decision procedure works with.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The computed pumping threshold (the stand-in for the paper's `ℓ_pump`).
    pub fn pump_threshold(&self) -> usize {
        self.pump_threshold
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} types, pump threshold {})",
            self.complexity, self.num_types, self.pump_threshold
        )
    }
}

/// The serializable summary of a classification: everything a service client
/// needs to know about a verdict, without the (non-serializable) synthesized
/// algorithm. Produced by [`crate::Engine::verdict`] or [`Verdict::new`];
/// round-trips through JSON.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// The complexity class.
    pub complexity: Complexity,
    /// Number of path types of the problem.
    pub num_types: usize,
    /// The computed pumping threshold.
    pub pump_threshold: usize,
    /// Name of the classified problem.
    pub problem_name: String,
    /// The problem's canonical structural hash
    /// ([`NormalizedLcl::canonical_hash`]).
    pub problem_hash: u64,
    /// Name of the synthesized algorithm.
    pub algorithm: String,
    /// Witness instance with no valid labeling, for unsolvable problems.
    pub witness: Option<Instance>,
}

impl Verdict {
    /// Summarizes a classification of `problem`.
    pub fn new(problem: &NormalizedLcl, classification: &Classification) -> Self {
        Verdict {
            complexity: classification.complexity(),
            num_types: classification.num_types(),
            pump_threshold: classification.pump_threshold(),
            problem_name: problem.name().to_string(),
            problem_hash: problem.canonical_hash(),
            algorithm: classification.algorithm().name().to_string(),
            witness: classification.unsolvability_witness().cloned(),
        }
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "complexity",
                JsonValue::Str(self.complexity.wire_name().into()),
            ),
            ("num_types", JsonValue::Int(self.num_types as i64)),
            ("pump_threshold", JsonValue::Int(self.pump_threshold as i64)),
            ("problem_name", JsonValue::Str(self.problem_name.clone())),
            (
                "problem_hash",
                JsonValue::Str(format!("{:016x}", self.problem_hash)),
            ),
            ("algorithm", JsonValue::Str(self.algorithm.clone())),
            (
                "witness",
                match &self.witness {
                    Some(instance) => instance.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }

    /// Serializes to a compact JSON string with canonical field order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Parses a verdict from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on malformed JSON, unknown complexity
    /// identifiers, or invalid hash/witness fields.
    pub fn from_json_str(text: &str) -> Result<Self> {
        let wire = |what: String| crate::ClassifierError::Problem(ProblemError::Wire { what });
        let value = JsonValue::parse(text).map_err(|e| wire(e.to_string()))?;
        Self::from_json(&value)
    }

    /// Reads a verdict back from a parsed JSON document
    /// (see [`Verdict::from_json_str`]).
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on missing fields, unknown complexity
    /// identifiers, or invalid hash/witness fields.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let wire = |what: String| crate::ClassifierError::Problem(ProblemError::Wire { what });
        let json_err = |e: lcl_problem::json::JsonError| wire(e.to_string());
        let complexity_name = value.require("complexity").map_err(json_err)?;
        let complexity = Complexity::from_wire_name(complexity_name.as_str().map_err(json_err)?)
            .ok_or_else(|| wire(format!("unknown complexity {complexity_name:?}")))?;
        let count = |field: &str| -> Result<usize> {
            let v = value
                .require(field)
                .and_then(|v| v.as_int())
                .map_err(json_err)?;
            usize::try_from(v)
                .map_err(|_| wire(format!("field `{field}` must be non-negative, got {v}")))
        };
        let num_types = count("num_types")?;
        let pump_threshold = count("pump_threshold")?;
        let problem_name = value
            .require("problem_name")
            .and_then(|v| v.as_str())
            .map_err(json_err)?
            .to_string();
        let hash_text = value
            .require("problem_hash")
            .and_then(|v| v.as_str())
            .map_err(json_err)?;
        if hash_text.is_empty() || !hash_text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(wire(format!("invalid problem hash `{hash_text}`")));
        }
        let problem_hash = u64::from_str_radix(hash_text, 16)
            .map_err(|_| wire(format!("invalid problem hash `{hash_text}`")))?;
        let algorithm = value
            .require("algorithm")
            .and_then(|v| v.as_str())
            .map_err(json_err)?
            .to_string();
        let witness = match value.require("witness").map_err(json_err)? {
            JsonValue::Null => None,
            instance => Some(Instance::from_json(instance)?),
        };
        Ok(Verdict {
            complexity,
            num_types,
            pump_threshold,
            problem_name,
            problem_hash,
            algorithm,
            witness,
        })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} types, pump threshold {}, via {})",
            self.problem_name, self.complexity, self.num_types, self.pump_threshold, self.algorithm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    #[test]
    fn display() {
        assert_eq!(Complexity::Constant.to_string(), "O(1)");
        assert_eq!(Complexity::LogStar.to_string(), "Θ(log* n)");
        assert_eq!(Complexity::Linear.to_string(), "Θ(n)");
        assert_eq!(Complexity::Unsolvable.to_string(), "unsolvable");
    }

    #[test]
    fn wire_names_roundtrip() {
        for c in [
            Complexity::Unsolvable,
            Complexity::Constant,
            Complexity::LogStar,
            Complexity::Linear,
        ] {
            assert_eq!(Complexity::from_wire_name(c.wire_name()), Some(c));
        }
        assert_eq!(Complexity::from_wire_name("O(1)"), None);
    }

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    #[test]
    fn verdict_roundtrips_through_json() {
        let problem = two_coloring();
        let classification = classify(&problem).unwrap();
        let verdict = Verdict::new(&problem, &classification);
        assert_eq!(verdict.complexity, Complexity::Unsolvable);
        assert!(
            verdict.witness.is_some(),
            "unsolvable verdicts carry witnesses"
        );
        let text = verdict.to_json_string();
        let back = Verdict::from_json_str(&text).unwrap();
        assert_eq!(back, verdict);
        assert!(verdict.to_string().contains("2-coloring"));
    }

    #[test]
    fn malformed_verdicts_are_rejected() {
        assert!(Verdict::from_json_str("{").is_err());
        assert!(Verdict::from_json_str("{}").is_err());
        let bad_complexity = r#"{"algorithm":"a","complexity":"sublinear","num_types":1,"problem_hash":"00","problem_name":"p","pump_threshold":1,"witness":null}"#;
        assert!(Verdict::from_json_str(bad_complexity).is_err());
        let bad_hash = r#"{"algorithm":"a","complexity":"linear","num_types":1,"problem_hash":"zz","problem_name":"p","pump_threshold":1,"witness":null}"#;
        assert!(Verdict::from_json_str(bad_hash).is_err());
        let plus_hash = r#"{"algorithm":"a","complexity":"linear","num_types":1,"problem_hash":"+ff","problem_name":"p","pump_threshold":1,"witness":null}"#;
        assert!(Verdict::from_json_str(plus_hash).is_err());
        let negative_count = r#"{"algorithm":"a","complexity":"linear","num_types":-1,"problem_hash":"00","problem_name":"p","pump_threshold":1,"witness":null}"#;
        assert!(Verdict::from_json_str(negative_count).is_err());
    }
}
