//! # lcl-classifier
//!
//! The decidability algorithm of *"The distributed complexity of locally
//! checkable problems on paths is decidable"* (PODC 2019), Section 4: given an
//! LCL problem with input labels on directed paths/cycles, decide whether its
//! deterministic LOCAL complexity is `O(1)`, `Θ(log* n)` or `Θ(n)` — and
//! produce an asymptotically optimal LOCAL algorithm for the class.
//!
//! The crate follows the paper's proof plan, with the type machinery of
//! `lcl-semigroup` standing in for the equivalence classes of §4.1 (see
//! DESIGN.md for the documented substitutions):
//!
//! * **Solvability** — a problem that admits no valid labeling on some
//!   input-labeled cycle is reported as [`Complexity::Unsolvable`] together
//!   with a witness instance (the paper implicitly restricts attention to
//!   always-solvable problems).
//! * **The `ω(log* n) — o(n)` gap (Theorem 8)** — decided by searching for a
//!   *feasible function* that labels constant-size anchor blocks so that any
//!   gap between two anchored blocks can always be completed, whatever its
//!   input; the search is over the finite type semigroup
//!   ([`feasibility`]).
//! * **The `ω(1) — o(log* n)` gap (Theorem 9)** — decided by additionally
//!   requiring periodic output labelings for every short primitive input
//!   pattern (the `G_{w,z}` condition of §4.4) that are compatible with the
//!   anchored blocks across arbitrary middles (the `G_{w1,w2,S}` condition).
//! * **Synthesis** — each verdict comes with a runnable
//!   [`LocalAlgorithm`](lcl_local_sim::LocalAlgorithm): the trivial gather-all
//!   algorithm for `Θ(n)`, the anchored-block algorithm on top of the
//!   `O(log* n)` ruling set for `Θ(log* n)` (Lemma 16/17), and the
//!   periodic-core algorithm on top of the `(ℓ_width, ℓ_count, ℓ_pattern)`
//!   partition for `O(1)` (Lemmas 19–22, 26, 27).
//!
//! # Example
//!
//! ```
//! use lcl_classifier::{classify, Complexity};
//! use lcl_problem::NormalizedLcl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Proper 3-coloring of a directed cycle: Θ(log* n).
//! let mut b = NormalizedLcl::builder("3-coloring");
//! b.input_labels(&["x"]);
//! b.output_labels(&["1", "2", "3"]);
//! b.allow_all_node_pairs();
//! for p in 0..3u16 {
//!     for q in 0..3u16 {
//!         if p != q {
//!             b.allow_edge_idx(p, q);
//!         }
//!     }
//! }
//! let problem = b.build()?;
//! let classification = classify(&problem)?;
//! assert_eq!(classification.complexity(), Complexity::LogStar);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod classify;
pub mod engine;
mod error;
pub mod feasibility;
pub mod obs;
mod pool;
pub mod snapshot;
mod stream;
pub mod synthesis;
mod types_info;
mod verdict;

pub use cache::{CacheStats, Computed, FlightOutcome, Inserted, ShardStats, ShardedLruCache};
pub use classify::{classify, classify_with_options, ClassifierOptions};
pub use engine::{
    approximate_classification_weight, approximate_entry_weight, default_engine, CacheEntry,
    Engine, EngineBuilder, ReplyLane, Solution, DEFAULT_CACHE_CAPACITY,
};
pub use error::ClassifierError;
pub use feasibility::{FeasibleStructure, PatternLabeling};
pub use obs::{HistogramSnapshot, LatencyHistogram, TraceRecord, TraceRing};
pub use pool::PoolStats;
pub use snapshot::{RestoreReport, SNAPSHOT_FORMAT, SNAPSHOT_VERSION};
pub use stream::{StreamSolution, STREAM_RADIUS_CAP};
pub use synthesis::{ConstantAlgorithm, LogStarAlgorithm, RestoredAlgorithm, SynthesizedAlgorithm};
pub use types_info::GapTypes;
pub use verdict::{Classification, Complexity, Verdict};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ClassifierError>;
