//! # lcl-gen
//!
//! Seeded, deterministic random LCL-problem generation — the workload side of
//! the classification service. The paper (PODC 2019) proves the classifier
//! decides *every* LCL problem on paths/cycles; this crate manufactures
//! problems nobody hand-wrote so the decision procedure can be stressed far
//! beyond the fixed corpus: randomized differential soaks (engine vs the
//! naive semigroup path), adversarial fuzzing over the `generate` protocol
//! kind, and benchmark corpora of any size.
//!
//! Generation is **a pure function of the knobs**: the same [`GenConfig`]
//! always produces a byte-identical [`ProblemSpec`](lcl_problem::ProblemSpec)
//! and therefore the same
//! [`canonical_hash`](lcl_problem::NormalizedLcl::canonical_hash). The RNG
//! draw order is part of that contract (pinned by tests), so seeds recorded
//! in bug reports reproduce forever.
//!
//! Four shaped [`Family`] variants cover the interesting regions of problem
//! space:
//!
//! * [`Family::Uniform`] — every node/edge constraint pair allowed
//!   independently with the configured density: the unshaped adversarial
//!   baseline (any complexity class, including unsolvable).
//! * [`Family::Solvable`] — trivially solvable by construction: a secret
//!   output `b*` is allowed for every input and self-chains, then random
//!   pairs are sprinkled on top. The uniform-`b*` labeling is always valid,
//!   so these classify `O(1)` by definition.
//! * [`Family::Unsolvable`] — unsolvable by construction: a victim input is
//!   stripped of *all* allowed outputs, so any instance containing it (the
//!   one-node cycle is a witness) admits no labeling.
//! * [`Family::NearThreshold`] — allow-all node constraints over a sparse
//!   random successor digraph on outputs with self-loops excluded: the
//!   constant class is unreachable by construction, so these straddle the
//!   `Θ(log* n)` / `Θ(n)` / unsolvable boundary that makes the decision
//!   procedure earn its keep.
//!
//! # Example
//!
//! ```
//! use lcl_gen::{generate, Family, GenConfig};
//!
//! let config = GenConfig::new(42).family(Family::Solvable);
//! let problem = generate(&config).unwrap();
//! let again = generate(&config).unwrap();
//! assert_eq!(problem.to_spec().to_json_string(), again.to_spec().to_json_string());
//! assert_eq!(problem.canonical_hash(), again.canonical_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lcl_problem::json::JsonValue;
use lcl_problem::NormalizedLcl;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Largest input or output alphabet [`generate`] accepts. Classification
/// cost grows steeply with alphabet size; this bound keeps a single
/// `generate` request from manufacturing a problem the classifier cannot
/// digest.
pub const MAX_ALPHABET: usize = 256;

/// The shaped problem families the generator can produce.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Family {
    /// Independent coin flips per constraint pair at the configured density.
    Uniform,
    /// Trivially solvable by construction (a universal output label exists).
    Solvable,
    /// Unsolvable by construction (one input admits no output at all).
    Unsolvable,
    /// Sparse self-loop-free successor constraints: never `O(1)`, so the
    /// verdict sits on the `Θ(log* n)` / `Θ(n)` / unsolvable boundary.
    NearThreshold,
}

impl Family {
    /// Every family, in wire-name order (used by error messages and sweeps).
    pub const ALL: [Family; 4] = [
        Family::Uniform,
        Family::Solvable,
        Family::Unsolvable,
        Family::NearThreshold,
    ];

    /// The stable ASCII identifier used by the `generate` wire format.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Solvable => "solvable",
            Family::Unsolvable => "unsolvable",
            Family::NearThreshold => "near-threshold",
        }
    }

    /// Parses a wire identifier produced by [`Family::wire_name`].
    pub fn from_wire_name(name: &str) -> Option<Self> {
        Family::ALL.into_iter().find(|f| f.wire_name() == name)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Errors produced by the generator.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GenError {
    /// A knob is out of range.
    Config {
        /// Description of the rejected knob.
        what: String,
    },
    /// A `generate` wire payload could not be interpreted.
    Wire {
        /// Description of the malformed field.
        what: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Config { what } => write!(f, "invalid generator config: {what}"),
            GenError::Wire { what } => write!(f, "generate wire format: {what}"),
        }
    }
}

impl std::error::Error for GenError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GenError>;

/// The generator's knobs. Construct with [`GenConfig::new`] and adjust via
/// the chainable setters; every field is also public for direct use.
///
/// Densities are integer percentages (`0..=100`) because the wire format is
/// exact-integer JSON; `out_degree` bounds the per-output successor count of
/// the [`Family::NearThreshold`] constraint digraph (the network degree
/// itself is fixed at 2 on paths/cycles, so "degree" here shapes the
/// constraint graph, not the topology).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GenConfig {
    /// RNG seed; the identity of the generated problem.
    pub seed: u64,
    /// The shaped family to draw from.
    pub family: Family,
    /// Input alphabet size (`1..=`[`MAX_ALPHABET`]).
    pub input_labels: usize,
    /// Output alphabet size (`1..=`[`MAX_ALPHABET`]).
    pub output_labels: usize,
    /// Probability (percent) that a node constraint pair is allowed.
    pub node_density_pct: u32,
    /// Probability (percent) that an edge constraint pair is allowed.
    pub edge_density_pct: u32,
    /// Maximum out-degree of the near-threshold successor digraph (`>= 1`).
    pub out_degree: u32,
}

impl GenConfig {
    /// A config with the default knobs: uniform family, 2 input labels,
    /// 3 output labels, 60% densities, out-degree 2.
    pub fn new(seed: u64) -> Self {
        GenConfig {
            seed,
            family: Family::Uniform,
            input_labels: 2,
            output_labels: 3,
            node_density_pct: 60,
            edge_density_pct: 60,
            out_degree: 2,
        }
    }

    /// Sets the family.
    pub fn family(mut self, family: Family) -> Self {
        self.family = family;
        self
    }

    /// Sets the input alphabet size.
    pub fn input_labels(mut self, n: usize) -> Self {
        self.input_labels = n;
        self
    }

    /// Sets the output alphabet size.
    pub fn output_labels(mut self, n: usize) -> Self {
        self.output_labels = n;
        self
    }

    /// Sets the node-constraint density (percent).
    pub fn node_density_pct(mut self, pct: u32) -> Self {
        self.node_density_pct = pct;
        self
    }

    /// Sets the edge-constraint density (percent).
    pub fn edge_density_pct(mut self, pct: u32) -> Self {
        self.edge_density_pct = pct;
        self
    }

    /// Sets the near-threshold out-degree bound.
    pub fn out_degree(mut self, d: u32) -> Self {
        self.out_degree = d;
        self
    }

    /// Checks every knob against its documented range.
    pub fn validate(&self) -> Result<()> {
        let bound = |what: &str, got: usize| -> Result<()> {
            if (1..=MAX_ALPHABET).contains(&got) {
                Ok(())
            } else {
                Err(GenError::Config {
                    what: format!("{what} must be in 1..={MAX_ALPHABET}, got {got}"),
                })
            }
        };
        bound("input_labels", self.input_labels)?;
        bound("output_labels", self.output_labels)?;
        for (what, pct) in [
            ("node_density_pct", self.node_density_pct),
            ("edge_density_pct", self.edge_density_pct),
        ] {
            if pct > 100 {
                return Err(GenError::Config {
                    what: format!("{what} must be at most 100, got {pct}"),
                });
            }
        }
        if self.out_degree == 0 {
            return Err(GenError::Config {
                what: "out_degree must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// The deterministic name the generated problem carries: every knob is
    /// encoded, so two generated problems with equal names are equal.
    pub fn problem_name(&self) -> String {
        format!(
            "gen-{}-s{}-a{}x{}-n{}-e{}-d{}",
            self.family,
            self.seed,
            self.input_labels,
            self.output_labels,
            self.node_density_pct,
            self.edge_density_pct,
            self.out_degree
        )
    }

    /// Serializes the config as a `generate` request payload.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seed", JsonValue::Int(self.seed as i64)),
            ("family", JsonValue::Str(self.family.wire_name().into())),
            ("input_labels", JsonValue::Int(self.input_labels as i64)),
            ("output_labels", JsonValue::Int(self.output_labels as i64)),
            (
                "node_density_pct",
                JsonValue::Int(i64::from(self.node_density_pct)),
            ),
            (
                "edge_density_pct",
                JsonValue::Int(i64::from(self.edge_density_pct)),
            ),
            ("out_degree", JsonValue::Int(i64::from(self.out_degree))),
        ])
    }

    /// Parses a `generate` request payload. `seed` is required; every other
    /// knob is optional and falls back to the [`GenConfig::new`] default.
    /// Knob ranges are *not* checked here — call [`GenConfig::validate`]
    /// (or just [`generate`], which validates first).
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let wire = |what: String| GenError::Wire { what };
        let int_field = |field: &str| -> Result<Option<i64>> {
            match value.get(field) {
                None => Ok(None),
                Some(v) => v.as_int().map(Some).map_err(|e| wire(e.to_string())),
            }
        };
        let non_negative = |field: &str, v: i64| -> Result<u64> {
            u64::try_from(v)
                .map_err(|_| wire(format!("field `{field}` must be non-negative, got {v}")))
        };
        let seed = match int_field("seed")? {
            Some(v) => non_negative("seed", v)?,
            None => return Err(wire("missing required field `seed`".to_string())),
        };
        let mut config = GenConfig::new(seed);
        if let Some(v) = value.get("family") {
            let name = v.as_str().map_err(|e| wire(e.to_string()))?;
            config.family = Family::from_wire_name(name).ok_or_else(|| {
                wire(format!(
                    "unknown family `{name}` (expected uniform, solvable, unsolvable or near-threshold)"
                ))
            })?;
        }
        if let Some(v) = int_field("input_labels")? {
            config.input_labels = non_negative("input_labels", v)? as usize;
        }
        if let Some(v) = int_field("output_labels")? {
            config.output_labels = non_negative("output_labels", v)? as usize;
        }
        if let Some(v) = int_field("node_density_pct")? {
            config.node_density_pct =
                non_negative("node_density_pct", v)?.min(u64::from(u32::MAX)) as u32;
        }
        if let Some(v) = int_field("edge_density_pct")? {
            config.edge_density_pct =
                non_negative("edge_density_pct", v)?.min(u64::from(u32::MAX)) as u32;
        }
        if let Some(v) = int_field("out_degree")? {
            config.out_degree = non_negative("out_degree", v)?.min(u64::from(u32::MAX)) as u32;
        }
        Ok(config)
    }
}

/// Generates the problem described by `config`.
///
/// Deterministic: equal configs produce byte-identical
/// [`ProblemSpec`](lcl_problem::ProblemSpec) serializations (and therefore
/// equal [`canonical_hash`](lcl_problem::NormalizedLcl::canonical_hash)es).
/// The RNG draw order per family is part of the wire-stability contract and
/// is pinned by this crate's tests.
///
/// # Errors
///
/// Returns [`GenError::Config`] when a knob is out of its documented range.
pub fn generate(config: &GenConfig) -> Result<NormalizedLcl> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let alpha = config.input_labels;
    let beta = config.output_labels;

    let mut b = NormalizedLcl::builder(config.problem_name());
    let input_names: Vec<String> = (0..alpha).map(|i| format!("i{i}")).collect();
    let output_names: Vec<String> = (0..beta).map(|i| format!("o{i}")).collect();
    b.input_labels(&input_names);
    b.output_labels(&output_names);

    let allow = |rng: &mut StdRng, pct: u32| rng.gen_range(0..100u32) < pct;
    match config.family {
        Family::Uniform => {
            for a in 0..alpha as u16 {
                for o in 0..beta as u16 {
                    if allow(&mut rng, config.node_density_pct) {
                        b.allow_node_idx(a, o);
                    }
                }
            }
            for p in 0..beta as u16 {
                for q in 0..beta as u16 {
                    if allow(&mut rng, config.edge_density_pct) {
                        b.allow_edge_idx(p, q);
                    }
                }
            }
        }
        Family::Solvable => {
            // The universal output: allowed for every input and self-chaining,
            // so the constant labeling `b*` everywhere is valid on every
            // instance — drawn first, then random pairs sprinkled on top
            // (extra allowances can only preserve solvability).
            let universal = rng.gen_range(0..beta as u16);
            for a in 0..alpha as u16 {
                b.allow_node_idx(a, universal);
                for o in 0..beta as u16 {
                    if allow(&mut rng, config.node_density_pct) {
                        b.allow_node_idx(a, o);
                    }
                }
            }
            b.allow_edge_idx(universal, universal);
            for p in 0..beta as u16 {
                for q in 0..beta as u16 {
                    if allow(&mut rng, config.edge_density_pct) {
                        b.allow_edge_idx(p, q);
                    }
                }
            }
        }
        Family::Unsolvable => {
            // The victim input keeps zero allowed outputs: any instance that
            // contains it (the one-node cycle suffices) admits no labeling.
            let victim = rng.gen_range(0..alpha as u16);
            for a in 0..alpha as u16 {
                if a == victim {
                    continue;
                }
                for o in 0..beta as u16 {
                    if allow(&mut rng, config.node_density_pct) {
                        b.allow_node_idx(a, o);
                    }
                }
            }
            for p in 0..beta as u16 {
                for q in 0..beta as u16 {
                    if allow(&mut rng, config.edge_density_pct) {
                        b.allow_edge_idx(p, q);
                    }
                }
            }
        }
        Family::NearThreshold => {
            // Allow-all node constraints over a sparse successor digraph with
            // self-loops excluded: no output can repeat, so the uniform
            // labeling is never valid and the problem cannot be O(1) via a
            // constant label — the verdict lands on the log*/linear/unsolvable
            // boundary. A 1-output alphabet leaves only the self-loop.
            b.allow_all_node_pairs();
            if beta == 1 {
                b.allow_edge_idx(0, 0);
            } else {
                for p in 0..beta as u16 {
                    let degree = (rng.gen_range(1..config.out_degree + 1) as usize).min(beta - 1);
                    let mut successors: Vec<u16> = Vec::with_capacity(degree);
                    while successors.len() < degree {
                        let q = rng.gen_range(0..beta as u16);
                        if q != p && !successors.contains(&q) {
                            successors.push(q);
                        }
                    }
                    for q in successors {
                        b.allow_edge_idx(p, q);
                    }
                }
            }
        }
    }

    b.build().map_err(|e| GenError::Config {
        what: format!("generated constraints did not build: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_classifier::{classify, Complexity};
    use lcl_problem::Instance;
    use lcl_semigroup::TransferSystem;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        for family in Family::ALL {
            let config = GenConfig::new(7).family(family);
            let first = generate(&config).unwrap();
            let second = generate(&config).unwrap();
            assert_eq!(
                first.to_spec().to_json_string(),
                second.to_spec().to_json_string(),
                "{family}: same seed must produce byte-identical specs"
            );
            assert_eq!(first.canonical_hash(), second.canonical_hash());
            let other = generate(&GenConfig::new(8).family(family)).unwrap();
            // Names differ by construction; the structural hash must differ
            // for at least some families/seeds (checked loosely: specs).
            assert_ne!(
                first.to_spec().to_json_string(),
                other.to_spec().to_json_string(),
                "{family}: different seeds must produce different specs"
            );
        }
    }

    #[test]
    fn rng_draw_order_is_pinned() {
        // The generated constraint tables are part of the wire-stability
        // contract: a change to the draw order shows up here first.
        let p = generate(&GenConfig::new(42)).unwrap();
        let spec = p.to_spec();
        assert_eq!(
            spec.to_json_string(),
            r#"{"edge_pairs":[[0,1],[1,1],[1,2]],"input_labels":["i0","i1"],"name":"gen-uniform-s42-a2x3-n60-e60-d2","node_pairs":[[0,0],[0,1],[0,2],[1,1]],"output_labels":["o0","o1","o2"],"version":1}"#,
            "draw order changed: this breaks seed reproducibility for recorded seeds"
        );
    }

    #[test]
    fn solvable_family_always_has_a_universal_output() {
        for seed in 0..20u64 {
            let p = generate(&GenConfig::new(seed).family(Family::Solvable)).unwrap();
            let universal = (0..p.num_outputs() as u16).any(|o| {
                let o = lcl_problem::OutLabel(o);
                p.edge_ok(o, o)
                    && (0..p.num_inputs() as u16).all(|a| p.node_ok(lcl_problem::InLabel(a), o))
            });
            assert!(universal, "seed {seed}: no universal output label");
        }
        // And the classifier agrees these are O(1).
        let p = generate(&GenConfig::new(3).family(Family::Solvable)).unwrap();
        assert_eq!(classify(&p).unwrap().complexity(), Complexity::Constant);
    }

    #[test]
    fn unsolvable_family_has_a_victim_input_with_a_one_node_witness() {
        for seed in 0..20u64 {
            let p = generate(&GenConfig::new(seed).family(Family::Unsolvable)).unwrap();
            let victim = (0..p.num_inputs() as u16).find(|&a| {
                p.outputs_for_input(lcl_problem::InLabel(a))
                    .next()
                    .is_none()
            });
            let victim = victim.unwrap_or_else(|| panic!("seed {seed}: no victim input"));
            let witness = Instance::cycle(vec![lcl_problem::InLabel(victim)]);
            let ts = TransferSystem::new(&p);
            assert!(
                !ts.instance_solvable(&witness).unwrap(),
                "seed {seed}: one-node witness cycle must be unsolvable"
            );
        }
        let p = generate(&GenConfig::new(5).family(Family::Unsolvable)).unwrap();
        assert_eq!(classify(&p).unwrap().complexity(), Complexity::Unsolvable);
    }

    #[test]
    fn near_threshold_family_straddles_the_boundary() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..12u64 {
            let p = generate(&GenConfig::new(seed).family(Family::NearThreshold)).unwrap();
            // Self-loop-free successor digraph: no constant labeling exists.
            for o in 0..p.num_outputs() as u16 {
                let o = lcl_problem::OutLabel(o);
                assert!(!p.edge_ok(o, o), "seed {seed}: self-loop slipped in");
            }
            let complexity = classify(&p).unwrap().complexity();
            assert_ne!(
                complexity,
                Complexity::Constant,
                "seed {seed}: near-threshold problems cannot be O(1)"
            );
            seen.insert(complexity.wire_name());
        }
        assert!(
            seen.len() >= 2,
            "the family should straddle classes, got only {seen:?}"
        );
    }

    #[test]
    fn knobs_are_validated() {
        assert!(generate(&GenConfig::new(1).input_labels(0)).is_err());
        assert!(generate(&GenConfig::new(1).output_labels(MAX_ALPHABET + 1)).is_err());
        assert!(generate(&GenConfig::new(1).node_density_pct(101)).is_err());
        assert!(generate(&GenConfig::new(1).edge_density_pct(200)).is_err());
        assert!(generate(&GenConfig::new(1).out_degree(0)).is_err());
        let err = generate(&GenConfig::new(1).out_degree(0)).unwrap_err();
        assert!(err.to_string().contains("out_degree"));
    }

    #[test]
    fn config_roundtrips_through_json() {
        let config = GenConfig::new(99)
            .family(Family::NearThreshold)
            .input_labels(3)
            .output_labels(4)
            .node_density_pct(35)
            .edge_density_pct(80)
            .out_degree(3);
        let json = config.to_json();
        let back = GenConfig::from_json(&json).unwrap();
        assert_eq!(back, config);
        // Defaults fill in for omitted knobs.
        let minimal = JsonValue::parse(r#"{"seed":5}"#).unwrap();
        let parsed = GenConfig::from_json(&minimal).unwrap();
        assert_eq!(parsed, GenConfig::new(5));
        // Required and malformed fields are rejected with wire errors.
        for bad in [
            r#"{}"#,
            r#"{"seed":-1}"#,
            r#"{"seed":1,"family":"cubic"}"#,
            r#"{"seed":1,"input_labels":"two"}"#,
        ] {
            let value = JsonValue::parse(bad).unwrap();
            assert!(GenConfig::from_json(&value).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn densities_shape_the_constraint_tables() {
        let sparse = generate(&GenConfig::new(11).node_density_pct(5).edge_density_pct(5)).unwrap();
        let dense =
            generate(&GenConfig::new(11).node_density_pct(95).edge_density_pct(95)).unwrap();
        let count = |p: &NormalizedLcl| {
            let spec = p.to_spec();
            (spec.node_pairs.len(), spec.edge_pairs.len())
        };
        let (sn, se) = count(&sparse);
        let (dn, de) = count(&dense);
        assert!(sn < dn, "node density must bite: {sn} vs {dn}");
        assert!(se < de, "edge density must bite: {se} vs {de}");
    }
}
