//! General radius-`r` LCL problems described by their allowed windows, and the
//! complexity-preserving conversion to the normalized (radius-1) form.
//!
//! An LCL of checkability radius `r` on directed paths/cycles accepts an
//! output labeling if, around every node, the sequence of `(input, output)`
//! pairs in its radius-`r` neighbourhood belongs to a finite allowed set
//! (paper §2). [`WindowLcl`] stores that allowed set explicitly.
//!
//! [`WindowLcl::to_normalized`] implements the classic "window alphabet"
//! construction: the new output of a node is its entire allowed window, the
//! node constraint checks the centre input, and the edge constraint checks
//! that consecutive windows overlap consistently. On cycles (and in the
//! interior of long paths) the construction preserves the set of valid
//! labelings up to projection, and changes the time complexity by at most an
//! additive `r` — hence it preserves the paper's complexity classes
//! `O(1) / Θ(log* n) / Θ(n)`.

use crate::verify::{ConsistencyReport, Violation, ViolationKind};
use crate::{
    Alphabet, InLabel, Instance, Labeling, NormalizedLcl, OutLabel, ProblemError, Result, Topology,
};
use std::collections::HashSet;
use std::fmt;

/// A radius-`r` window: the `(input, output)` pairs of the nodes
/// `v_{i-r}, …, v_{i+r}` around a centre node `v_i`, clipped at path
/// endpoints.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Window {
    /// Offset of the centre node within `cells` (equals `r` for interior
    /// nodes, less near the start of a path).
    pub center: usize,
    /// `(input, output)` pairs in path order.
    pub cells: Vec<(InLabel, OutLabel)>,
}

impl Window {
    /// Creates a window.
    pub fn new(center: usize, cells: Vec<(InLabel, OutLabel)>) -> Self {
        Window { center, cells }
    }

    /// The `(input, output)` pair of the centre node.
    ///
    /// # Panics
    ///
    /// Panics if `center` is out of range (malformed window).
    pub fn center_cell(&self) -> (InLabel, OutLabel) {
        self.cells[self.center]
    }

    /// Number of nodes covered by the window.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the window covers no node.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Returns `true` if this window covers the full `2r + 1` nodes.
    pub fn is_full(&self, radius: usize) -> bool {
        self.center == radius && self.cells.len() == 2 * radius + 1
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, o)) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if i == self.center {
                write!(f, "({a}/{o})*")?;
            } else {
                write!(f, "({a}/{o})")?;
            }
        }
        write!(f, "]")
    }
}

/// An LCL problem of checkability radius `r ≥ 1` on directed paths and cycles,
/// given by its finite set of allowed windows.
#[derive(Clone, Debug)]
pub struct WindowLcl {
    name: String,
    input: Alphabet,
    output: Alphabet,
    radius: usize,
    allowed: HashSet<Window>,
}

impl WindowLcl {
    /// Starts building a window LCL.
    pub fn builder(name: impl Into<String>, radius: usize) -> WindowLclBuilder {
        WindowLclBuilder::new(name, radius)
    }

    /// The problem name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The checkability radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.input
    }

    /// The output alphabet.
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.output
    }

    /// Number of allowed windows.
    pub fn num_allowed_windows(&self) -> usize {
        self.allowed.len()
    }

    /// Returns `true` if the given window is allowed.
    pub fn window_ok(&self, window: &Window) -> bool {
        self.allowed.contains(window)
    }

    /// Extracts the window centred at `node` from an instance/labeling pair.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the labeling length differs from
    /// the instance length.
    pub fn window_at(&self, instance: &Instance, labeling: &Labeling, node: usize) -> Window {
        assert_eq!(instance.len(), labeling.len(), "length mismatch");
        assert!(node < instance.len(), "node out of range");
        let n = instance.len();
        let r = self.radius;
        match instance.topology() {
            Topology::Cycle => {
                let take = (2 * r + 1).min(n);
                let start = (node + n - r.min(n - 1).min(r)) % n;
                // On very short cycles the window wraps onto itself; we cap the
                // window length at n and keep the centre position consistent.
                let mut cells = Vec::with_capacity(take);
                let mut i = if n > 2 * r { (node + n - r) % n } else { start };
                for _ in 0..take {
                    cells.push((instance.input(i), labeling.output(i)));
                    i = (i + 1) % n;
                }
                let center = if n > 2 * r { r } else { node.min(take - 1) };
                Window::new(center, cells)
            }
            Topology::Path => {
                let lo = node.saturating_sub(r);
                let hi = (node + r).min(n - 1);
                let cells = (lo..=hi)
                    .map(|i| (instance.input(i), labeling.output(i)))
                    .collect();
                Window::new(node - lo, cells)
            }
        }
    }

    /// Returns `true` if the labeling is valid: every node's window is allowed.
    pub fn is_valid(&self, instance: &Instance, labeling: &Labeling) -> bool {
        self.check(instance, labeling).is_valid()
    }

    /// Verifies the labeling, reporting each node whose window is not allowed.
    pub fn check(&self, instance: &Instance, labeling: &Labeling) -> ConsistencyReport {
        let mut violations = Vec::new();
        if instance.len() != labeling.len() {
            violations.push(Violation {
                node: 0,
                kind: ViolationKind::LengthMismatch {
                    instance_len: instance.len(),
                    labeling_len: labeling.len(),
                },
            });
            return ConsistencyReport::new(violations);
        }
        for i in 0..instance.len() {
            let w = self.window_at(instance, labeling, i);
            if !self.window_ok(&w) {
                violations.push(Violation {
                    node: i,
                    kind: ViolationKind::WindowConstraint {
                        radius: self.radius,
                    },
                });
            }
        }
        ConsistencyReport::new(violations)
    }

    /// Converts the problem to an equivalent [`NormalizedLcl`] on cycles.
    ///
    /// The new output alphabet consists of the allowed *full* windows; the
    /// output of a node encodes its window, the node constraint checks that
    /// the centre input of the claimed window matches the node's real input,
    /// and the edge constraint checks that adjacent windows overlap (the
    /// predecessor's window shifted by one equals the successor's window on
    /// the shared `2r` nodes).
    ///
    /// Validity correspondence (on cycles of length `≥ 2r + 1`): a labeling of
    /// the original problem is valid iff the labeling that assigns each node
    /// its window is valid for the converted problem; conversely projecting a
    /// valid converted labeling to the centre output yields a valid original
    /// labeling. Time complexity changes by at most an additive `r`, so the
    /// complexity class is preserved.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem allows no full window (the converted
    /// problem would have an empty output alphabet).
    pub fn to_normalized(&self) -> Result<NormalizedLcl> {
        let r = self.radius;
        let mut full: Vec<&Window> = self.allowed.iter().filter(|w| w.is_full(r)).collect();
        if full.is_empty() {
            return Err(ProblemError::unsupported(
                "window LCL allows no full window; cannot normalize",
            ));
        }
        // Deterministic order for reproducible label indices.
        full.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));

        let mut b = NormalizedLcl::builder(format!("{}(normalized)", self.name));
        b.input_alphabet(self.input.clone());
        let names: Vec<String> = full.iter().map(|w| w.to_string()).collect();
        b.output_labels(&names);
        for (wi, w) in full.iter().enumerate() {
            let (center_in, _) = w.center_cell();
            b.allow_node_idx(u16::from(center_in), wi as u16);
        }
        for (pi, p) in full.iter().enumerate() {
            for (qi, q) in full.iter().enumerate() {
                if p.cells[1..] == q.cells[..2 * r] {
                    b.allow_edge_idx(pi as u16, qi as u16);
                }
            }
        }
        b.build()
    }

    /// Projects a labeling of the normalized problem produced by
    /// [`Self::to_normalized`] back to a labeling of this problem.
    ///
    /// The `normalized` problem must be the one returned by
    /// [`Self::to_normalized`]; the projection picks the centre output of the
    /// window each label denotes.
    ///
    /// # Errors
    ///
    /// Returns an error if a label of `labeling` is not a label of
    /// `normalized`.
    pub fn project_normalized_labeling(
        &self,
        normalized: &NormalizedLcl,
        labeling: &Labeling,
    ) -> Result<Labeling> {
        let r = self.radius;
        let mut full: Vec<&Window> = self.allowed.iter().filter(|w| w.is_full(r)).collect();
        full.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        let mut outputs = Vec::with_capacity(labeling.len());
        for &l in labeling.outputs() {
            if l.index() >= normalized.num_outputs() || l.index() >= full.len() {
                return Err(ProblemError::LabelOutOfRange {
                    what: "normalized output",
                    index: l.index(),
                    alphabet_len: full.len(),
                });
            }
            outputs.push(full[l.index()].center_cell().1);
        }
        Ok(Labeling::new(outputs))
    }
}

impl fmt::Display for WindowLcl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (r={}, |Σ_in|={}, |Σ_out|={}, {} windows)",
            self.name,
            self.radius,
            self.input.len(),
            self.output.len(),
            self.allowed.len()
        )
    }
}

/// Builder for [`WindowLcl`].
#[derive(Clone)]
pub struct WindowLclBuilder {
    name: String,
    input: Alphabet,
    output: Alphabet,
    radius: usize,
    allowed: HashSet<Window>,
}

impl fmt::Debug for WindowLclBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowLclBuilder")
            .field("name", &self.name)
            .field("radius", &self.radius)
            .field("allowed", &self.allowed.len())
            .finish()
    }
}

impl WindowLclBuilder {
    /// Creates a builder for a radius-`radius` problem.
    pub fn new(name: impl Into<String>, radius: usize) -> Self {
        WindowLclBuilder {
            name: name.into(),
            input: Alphabet::new(Vec::<String>::new()),
            output: Alphabet::new(Vec::<String>::new()),
            radius,
            allowed: HashSet::new(),
        }
    }

    /// Sets the input alphabet from names.
    pub fn input_labels<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        self.input = Alphabet::new(names.iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Sets the output alphabet from names.
    pub fn output_labels<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        self.output = Alphabet::new(names.iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Allows one explicit window.
    pub fn allow_window(&mut self, window: Window) -> &mut Self {
        self.allowed.insert(window);
        self
    }

    /// Allows every *full* (interior) window satisfying `predicate`.
    ///
    /// The predicate receives the `2r + 1` cells in path order. All
    /// `(|Σ_in| · |Σ_out|)^{2r+1}` candidate windows are enumerated, so this
    /// is intended for small alphabets and radii.
    pub fn allow_full_windows_by<F>(&mut self, predicate: F) -> &mut Self
    where
        F: Fn(&[(InLabel, OutLabel)]) -> bool,
    {
        let width = 2 * self.radius + 1;
        let alpha = self.input.len();
        let beta = self.output.len();
        let cell_count = alpha * beta;
        if cell_count == 0 {
            return self;
        }
        let total = cell_count.checked_pow(width as u32).unwrap_or(usize::MAX);
        for code in 0..total {
            let mut c = code;
            let mut cells = Vec::with_capacity(width);
            for _ in 0..width {
                let cell = c % cell_count;
                c /= cell_count;
                cells.push((
                    InLabel::from_index(cell / beta),
                    OutLabel::from_index(cell % beta),
                ));
            }
            if predicate(&cells) {
                self.allowed.insert(Window::new(self.radius, cells));
            }
        }
        self
    }

    /// Allows every boundary (clipped) window satisfying `predicate`.
    ///
    /// Boundary windows occur only on paths: near the first node the window
    /// has fewer than `r` predecessors, near the last node fewer than `r`
    /// successors. The predicate receives `(center, cells)`.
    pub fn allow_boundary_windows_by<F>(&mut self, predicate: F) -> &mut Self
    where
        F: Fn(usize, &[(InLabel, OutLabel)]) -> bool,
    {
        let alpha = self.input.len();
        let beta = self.output.len();
        let cell_count = alpha * beta;
        if cell_count == 0 {
            return self;
        }
        let full = 2 * self.radius + 1;
        for width in 1..full {
            let total = cell_count.checked_pow(width as u32).unwrap_or(usize::MAX);
            for code in 0..total {
                let mut c = code;
                let mut cells = Vec::with_capacity(width);
                for _ in 0..width {
                    let cell = c % cell_count;
                    c /= cell_count;
                    cells.push((
                        InLabel::from_index(cell / beta),
                        OutLabel::from_index(cell % beta),
                    ));
                }
                for center in 0..width {
                    // A clipped window must still be "as wide as possible":
                    // either the centre is near the left end (center < r) or
                    // near the right end (width - 1 - center < r).
                    if center >= self.radius && (width - 1 - center) >= self.radius {
                        continue;
                    }
                    if predicate(center, &cells) {
                        self.allowed.insert(Window::new(center, cells.clone()));
                    }
                }
            }
        }
        self
    }

    /// Builds the problem.
    ///
    /// # Errors
    ///
    /// Returns an error if the radius is zero or either alphabet is empty.
    pub fn build(&self) -> Result<WindowLcl> {
        if self.radius == 0 {
            return Err(ProblemError::unsupported("window LCL radius must be ≥ 1"));
        }
        if self.input.is_empty() {
            return Err(ProblemError::EmptyInputAlphabet);
        }
        if self.output.is_empty() {
            return Err(ProblemError::EmptyOutputAlphabet);
        }
        Ok(WindowLcl {
            name: self.name.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            radius: self.radius,
            allowed: self.allowed.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Radius-1 window formulation of proper 2-coloring (inputs irrelevant).
    fn window_two_coloring() -> WindowLcl {
        let mut b = WindowLcl::builder("2-coloring-window", 1);
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_full_windows_by(|cells| cells[0].1 != cells[1].1 && cells[1].1 != cells[2].1);
        b.allow_boundary_windows_by(|_, cells| cells.windows(2).all(|w| w[0].1 != w[1].1));
        b.build().unwrap()
    }

    #[test]
    fn window_accessors() {
        let w = Window::new(
            1,
            vec![
                (InLabel(0), OutLabel(0)),
                (InLabel(0), OutLabel(1)),
                (InLabel(0), OutLabel(0)),
            ],
        );
        assert_eq!(w.center_cell(), (InLabel(0), OutLabel(1)));
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert!(w.is_full(1));
        assert!(!w.is_full(2));
        assert!(w.to_string().contains("*"));
    }

    #[test]
    fn verifies_two_coloring_on_cycle() {
        let p = window_two_coloring();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let good = Labeling::from_indices(&[0, 1, 0, 1, 0, 1]);
        let bad = Labeling::from_indices(&[0, 1, 0, 1, 0, 0]);
        assert!(p.is_valid(&inst, &good));
        assert!(!p.is_valid(&inst, &bad));
        let report = p.check(&inst, &bad);
        assert!(!report.violating_nodes().is_empty());
    }

    #[test]
    fn verifies_two_coloring_on_path_with_boundaries() {
        let p = window_two_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0; 4]);
        let good = Labeling::from_indices(&[1, 0, 1, 0]);
        assert!(p.is_valid(&inst, &good));
        let bad = Labeling::from_indices(&[1, 1, 0, 1]);
        assert!(!p.is_valid(&inst, &bad));
    }

    #[test]
    fn length_mismatch_detected() {
        let p = window_two_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0; 4]);
        let short = Labeling::from_indices(&[0, 1]);
        assert!(!p.is_valid(&inst, &short));
    }

    #[test]
    fn normalization_preserves_validity() {
        let p = window_two_coloring();
        let norm = p.to_normalized().expect("normalizable");
        assert!(norm.num_outputs() > 0);
        // Build the window-labeling corresponding to the alternating coloring
        // and check it against the normalized problem.
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let coloring = Labeling::from_indices(&[0, 1, 0, 1, 0, 1]);
        assert!(p.is_valid(&inst, &coloring));
        // For each node, find its window's index in the normalized alphabet.
        let mut windows: Vec<Window> = Vec::new();
        for i in 0..6 {
            windows.push(p.window_at(&inst, &coloring, i));
        }
        let mut norm_labels = Vec::new();
        for w in &windows {
            let name = w.to_string();
            let idx = norm
                .output_alphabet()
                .index_of(&name)
                .expect("window present in normalized alphabet");
            norm_labels.push(idx as u16);
        }
        let norm_labeling = Labeling::from_indices(&norm_labels);
        assert!(norm.is_valid(&inst, &norm_labeling));
        // Project back and compare.
        let projected = p
            .project_normalized_labeling(&norm, &norm_labeling)
            .unwrap();
        assert_eq!(projected, coloring);
    }

    #[test]
    fn normalization_rejects_invalid_overlaps() {
        let p = window_two_coloring();
        let norm = p.to_normalized().unwrap();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        // All nodes claim the same window: overlaps are inconsistent for 2-coloring.
        let labeling = Labeling::from_indices(&[0; 6]);
        assert!(!norm.is_valid(&inst, &labeling));
    }

    #[test]
    fn builder_errors() {
        assert!(WindowLcl::builder("r0", 0).build().is_err());
        let mut b = WindowLcl::builder("no-alpha", 1);
        assert!(b.build().is_err());
        b.input_labels(&["a"]);
        assert!(b.build().is_err());
        b.output_labels(&["o"]);
        assert!(b.build().is_ok());
        assert!(format!("{b:?}").contains("WindowLclBuilder"));
    }

    #[test]
    fn to_normalized_requires_full_windows() {
        let mut b = WindowLcl::builder("empty", 1);
        b.input_labels(&["a"]);
        b.output_labels(&["o"]);
        let p = b.build().unwrap();
        assert!(p.to_normalized().is_err());
    }

    #[test]
    fn display_formats() {
        let p = window_two_coloring();
        let shown = p.to_string();
        assert!(shown.contains("r=1"));
        assert!(p.num_allowed_windows() > 0);
        assert_eq!(p.radius(), 1);
        assert_eq!(p.input_alphabet().len(), 1);
        assert_eq!(p.output_alphabet().len(), 2);
        assert_eq!(p.name(), "2-coloring-window");
    }
}
