//! Error type shared by all fallible operations in the crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing or manipulating LCL problems.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ProblemError {
    /// The input alphabet is empty.
    EmptyInputAlphabet,
    /// The output alphabet is empty.
    EmptyOutputAlphabet,
    /// A label index referenced a label outside its alphabet.
    LabelOutOfRange {
        /// Human-readable description of which label set was violated.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Size of the alphabet it was checked against.
        alphabet_len: usize,
    },
    /// An instance and a labeling (or problem) have mismatching lengths or alphabets.
    Mismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// A transformation was asked to operate on an unsupported shape
    /// (for example, an empty instance or a radius of zero where one is required).
    Unsupported {
        /// Description of the unsupported request.
        what: String,
    },
    /// A wire-format payload could not be parsed or interpreted
    /// (malformed JSON, unknown version, out-of-range indices).
    Wire {
        /// Description of the wire-format problem.
        what: String,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::EmptyInputAlphabet => write!(f, "input alphabet is empty"),
            ProblemError::EmptyOutputAlphabet => write!(f, "output alphabet is empty"),
            ProblemError::LabelOutOfRange {
                what,
                index,
                alphabet_len,
            } => write!(
                f,
                "{what} label index {index} is out of range for alphabet of size {alphabet_len}"
            ),
            ProblemError::Mismatch { what } => write!(f, "mismatch: {what}"),
            ProblemError::Unsupported { what } => write!(f, "unsupported: {what}"),
            ProblemError::Wire { what } => write!(f, "wire format: {what}"),
        }
    }
}

impl StdError for ProblemError {}

impl ProblemError {
    /// Convenience constructor for [`ProblemError::Mismatch`].
    pub fn mismatch(what: impl Into<String>) -> Self {
        ProblemError::Mismatch { what: what.into() }
    }

    /// Convenience constructor for [`ProblemError::Unsupported`].
    pub fn unsupported(what: impl Into<String>) -> Self {
        ProblemError::Unsupported { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ProblemError::EmptyInputAlphabet.to_string(),
            "input alphabet is empty"
        );
        assert_eq!(
            ProblemError::LabelOutOfRange {
                what: "output",
                index: 9,
                alphabet_len: 3
            }
            .to_string(),
            "output label index 9 is out of range for alphabet of size 3"
        );
        assert!(ProblemError::mismatch("lengths differ")
            .to_string()
            .contains("lengths differ"));
        assert!(ProblemError::unsupported("radius 0")
            .to_string()
            .contains("radius 0"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<ProblemError>();
    }
}
