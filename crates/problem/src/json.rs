//! A minimal, dependency-free JSON document model with an exact parser and
//! compact writer.
//!
//! This is the wire substrate for [`crate::ProblemSpec`] and the serializable
//! domain types. The build environment cannot fetch `serde`/`serde_json`, so
//! the workspace ships its own small implementation; the subset implemented
//! (null, booleans, 64-bit integers, strings with full escape handling,
//! arrays, objects) is exactly what the LCL wire format needs, and integers
//! are kept exact rather than routed through floating point.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects use a [`BTreeMap`] so that serialization is canonical: two equal
/// documents always print to the same string, which the engine's cache keys
/// and the round-trip tests rely on.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. The wire format never needs fractions; fractional input is
    /// rejected by the parser with a clear error.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with canonically ordered keys.
    Object(BTreeMap<String, JsonValue>),
}

/// Error produced when parsing or interpreting a JSON document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset the error was detected at (0 for semantic errors).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, JsonValue)>>(pairs: I) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of integers.
    pub fn int_array<I: IntoIterator<Item = i64>>(values: I) -> JsonValue {
        JsonValue::Array(values.into_iter().map(JsonValue::Int).collect())
    }

    /// Builds an array of strings.
    pub fn str_array<I, S>(values: I) -> JsonValue
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        JsonValue::Array(
            values
                .into_iter()
                .map(|s| JsonValue::Str(s.into()))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Looks up a required field, with a descriptive error.
    pub fn require(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            offset: 0,
            message: format!("missing required field `{key}`"),
        })
    }

    /// Interprets this value as an integer.
    pub fn as_int(&self) -> Result<i64, JsonError> {
        match self {
            JsonValue::Int(v) => Ok(*v),
            other => Err(type_error("integer", other)),
        }
    }

    /// Interprets this value as a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(type_error("boolean", other)),
        }
    }

    /// Interprets this value as a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// Interprets this value as an array.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(type_error("array", other)),
        }
    }

    /// Serializes to a compact JSON string with canonical key order.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// [`JsonValue::to_json_string`] into a caller-provided buffer: appends
    /// the serialized document to `out` without allocating a fresh string,
    /// so per-connection hot loops can reuse one scratch buffer across
    /// frames instead of paying an allocation per envelope.
    pub fn write_json_string(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring the whole input to be consumed.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }
}

fn type_error(expected: &str, got: &JsonValue) -> JsonError {
    let kind = match got {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "boolean",
        JsonValue::Int(_) => "integer",
        JsonValue::Str(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    };
    JsonError {
        offset: 0,
        message: format!("expected {expected}, found {kind}"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.error("fractional numbers are not part of the wire format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and minus are valid UTF-8");
        let digits = text.strip_prefix('-').unwrap_or(text);
        // RFC 8259: no leading zeros ("01" is invalid; "0" and "-0" are fine).
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(self.error(format!("leading zero in number `{text}`")));
        }
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| self.error(format!("invalid integer `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // RFC 8259: control characters must be escaped.
                    if b < 0x20 {
                        return Err(
                            self.error(format!("unescaped control character 0x{b:02x} in string"))
                        );
                    }
                    // Consume the full UTF-8 sequence starting at b.
                    let char_start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    self.pos = char_start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[char_start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        // from_str_radix would also accept a leading `+`; JSON requires pure
        // hex digits.
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.error("invalid unicode escape"));
        }
        let text = std::str::from_utf8(digits).expect("hex digits are UTF-8");
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                // Last-one-wins would let a duplicate silently override an
                // already-validated field; the wire format rejects it.
                return Err(self.error(format!("duplicate object key `{key}`")));
            }
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> Option<usize> {
    match first_byte {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "9007199254740993"] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_json_string(), text);
        }
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let original = JsonValue::Str("a\"b\\c\nd\te\u{1f600}π".to_string());
        let text = original.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), original);
        // Escapes and surrogate pairs parse.
        let parsed = JsonValue::parse(r#""\u00e9\ud83d\ude00\/""#).unwrap();
        assert_eq!(parsed, JsonValue::Str("é😀/".to_string()));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let doc = JsonValue::object([
            ("b", JsonValue::int_array([1, 2, 3])),
            ("a", JsonValue::str_array(["x", "y"])),
            (
                "c",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        let text = doc.to_json_string();
        // Canonical key order regardless of insertion order.
        assert_eq!(text, r#"{"a":["x","y"],"b":[1,2,3],"c":[null,true]}"#);
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "nul",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "1.5",
            "1e3",
            "[1] trailing",
            "{\"a\" 1}",
            "\"\\q\"",
            "--1",
            r#""\u+0ab""#,
            r#""\ud83d\u+e00""#,
            r#"{"a":1,"a":2}"#,
            "01",
            "-01",
            "\"raw\ncontrol\"",
            "\"tab\there\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_capped() {
        let mut text = String::new();
        for _ in 0..200 {
            text.push('[');
        }
        for _ in 0..200 {
            text.push(']');
        }
        assert!(JsonValue::parse(&text).is_err());
    }

    #[test]
    fn accessors_report_type_errors() {
        let v = JsonValue::parse(r#"{"n":3,"s":"x"}"#).unwrap();
        assert_eq!(v.require("n").unwrap().as_int().unwrap(), 3);
        assert_eq!(v.require("s").unwrap().as_str().unwrap(), "x");
        assert!(v.require("missing").is_err());
        assert!(v.require("n").unwrap().as_str().is_err());
        assert!(v.as_int().is_err());
        let err = v.require("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
