//! Streamed instance descriptions: `(topology, length, input rule)` instead
//! of a materialized node list.
//!
//! A [`StreamInstanceSpec`] describes a path or cycle of up to
//! [`MAX_STREAM_NODES`] nodes without storing the nodes. The input labeling is
//! given by a compact rule ([`StreamInputs`]) that can be evaluated at any
//! position in O(1), so a consumer can walk an instance of millions of nodes
//! with O(window) memory. This is the wire-level counterpart of the server's
//! `solve_stream` request kind.

use crate::alphabet::InLabel;
use crate::error::ProblemError;
use crate::instance::{Instance, Topology};
use crate::json::JsonValue;
use crate::Result;

/// Upper bound on the number of nodes a streamed instance may describe.
///
/// The limit exists so a hostile request cannot ask a server to stream an
/// effectively unbounded reply; 2^32 nodes is far beyond what any client can
/// consume in one request while still fitting comfortably in `u64` position
/// arithmetic.
pub const MAX_STREAM_NODES: u64 = 1 << 32;

/// The input-labeling rule of a streamed instance.
///
/// Each variant defines the input label of every node as a pure function of
/// the node's position, evaluable in O(1) via
/// [`StreamInstanceSpec::input_at`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StreamInputs {
    /// Every node carries the same input label.
    Uniform {
        /// The input-label index given to every node.
        label: u16,
    },
    /// Node `i` carries `pattern[i % pattern.len()]`; the pattern must be
    /// non-empty.
    Pattern {
        /// The repeating block of input-label indices.
        pattern: Vec<u16>,
    },
    /// Node `i` carries `splitmix64(seed ^ i) % alphabet_len`: a deterministic
    /// pseudo-random labeling reproducible from the seed alone.
    Seeded {
        /// The stream seed; equal seeds produce identical labelings.
        seed: u64,
    },
}

/// A path/cycle instance described by shape instead of by node list.
///
/// Unlike [`Instance`], which stores one label per node, this spec is O(1) in
/// the instance length: the topology, the node count, and an input rule.
/// [`Self::input_at`] reconstructs any node's input on demand.
///
/// ```
/// use lcl_problem::{StreamInstanceSpec, StreamInputs, Topology};
///
/// let spec = StreamInstanceSpec {
///     topology: Topology::Cycle,
///     length: 1_000_000,
///     inputs: StreamInputs::Pattern { pattern: vec![0, 1] },
/// };
/// spec.validate(2).unwrap();
/// assert_eq!(spec.input_at(999_999, 2).index(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamInstanceSpec {
    /// Whether the instance is a directed path or a directed cycle.
    pub topology: Topology,
    /// Number of nodes; must be in `1..=MAX_STREAM_NODES`.
    pub length: u64,
    /// The rule assigning each position its input label.
    pub inputs: StreamInputs,
}

/// The splitmix64 output mixer (Steele–Lea–Flood); used by
/// [`StreamInputs::Seeded`] so seeded streams are reproducible everywhere
/// without a PRNG dependency.
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StreamInstanceSpec {
    /// The input label of node `index`, evaluated in O(1).
    ///
    /// `alphabet_len` is the problem's input-alphabet size; it only matters
    /// for [`StreamInputs::Seeded`], where the mixed position is reduced
    /// modulo the alphabet. Positions are `0..length`; out-of-range positions
    /// are not checked here (the caller drives iteration).
    pub fn input_at(&self, index: u64, alphabet_len: usize) -> InLabel {
        let raw = match &self.inputs {
            StreamInputs::Uniform { label } => *label,
            StreamInputs::Pattern { pattern } => pattern[(index % pattern.len() as u64) as usize],
            StreamInputs::Seeded { seed } => {
                (splitmix64(*seed ^ index) % alphabet_len.max(1) as u64) as u16
            }
        };
        InLabel(raw)
    }

    /// Checks the spec against a problem's input-alphabet size.
    ///
    /// # Errors
    ///
    /// * `length` outside `1..=MAX_STREAM_NODES`;
    /// * a `Uniform` label or `Pattern` entry outside the alphabet;
    /// * an empty `Pattern`.
    pub fn validate(&self, alphabet_len: usize) -> Result<()> {
        if self.length == 0 {
            return Err(ProblemError::unsupported("stream instance of length 0"));
        }
        if self.length > MAX_STREAM_NODES {
            return Err(ProblemError::unsupported(format!(
                "stream instance of {} nodes exceeds the {MAX_STREAM_NODES}-node cap",
                self.length
            )));
        }
        let check = |label: u16| {
            if usize::from(label) >= alphabet_len {
                Err(ProblemError::LabelOutOfRange {
                    what: "input",
                    index: usize::from(label),
                    alphabet_len,
                })
            } else {
                Ok(())
            }
        };
        match &self.inputs {
            StreamInputs::Uniform { label } => check(*label)?,
            StreamInputs::Pattern { pattern } => {
                if pattern.is_empty() {
                    return Err(ProblemError::unsupported("empty input pattern"));
                }
                for &label in pattern {
                    check(label)?;
                }
            }
            StreamInputs::Seeded { .. } => {}
        }
        Ok(())
    }

    /// Materializes the spec into a concrete [`Instance`].
    ///
    /// Intended for tests and small instances — this allocates one label per
    /// node, which is exactly what streaming avoids. Callers must
    /// [`validate`](Self::validate) first if the spec is untrusted.
    ///
    /// # Panics
    ///
    /// Panics if `length` does not fit in `usize`.
    pub fn materialize(&self, alphabet_len: usize) -> Instance {
        let n = usize::try_from(self.length).expect("stream length exceeds usize");
        let inputs: Vec<InLabel> = (0..n as u64)
            .map(|i| self.input_at(i, alphabet_len))
            .collect();
        match self.topology {
            Topology::Path => Instance::path(inputs),
            Topology::Cycle => Instance::cycle(inputs),
        }
    }

    /// Serializes to the canonical JSON wire form:
    /// `{"topology":"path","length":N,"inputs":{"mode":…}}`.
    pub fn to_json(&self) -> JsonValue {
        let inputs = match &self.inputs {
            StreamInputs::Uniform { label } => JsonValue::object([
                ("mode", JsonValue::Str("uniform".to_string())),
                ("label", JsonValue::Int(i64::from(*label))),
            ]),
            StreamInputs::Pattern { pattern } => JsonValue::object([
                ("mode", JsonValue::Str("pattern".to_string())),
                (
                    "pattern",
                    JsonValue::int_array(pattern.iter().map(|&l| i64::from(l))),
                ),
            ]),
            StreamInputs::Seeded { seed } => JsonValue::object([
                ("mode", JsonValue::Str("seeded".to_string())),
                ("seed", JsonValue::Int(*seed as i64)),
            ]),
        };
        JsonValue::object([
            ("topology", JsonValue::Str(self.topology.to_string())),
            ("length", JsonValue::Int(self.length as i64)),
            ("inputs", inputs),
        ])
    }

    /// Serializes the spec to its JSON wire form.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Reads a spec back from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a wire error on a missing/mistyped field, an unknown topology
    /// or input mode, or a negative length/seed. Range checks beyond basic
    /// integer fit live in [`Self::validate`].
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let topology = match value.require("topology")?.as_str()? {
            "path" => Topology::Path,
            "cycle" => Topology::Cycle,
            other => {
                return Err(ProblemError::Wire {
                    what: format!("unknown topology `{other}`"),
                })
            }
        };
        let length = value.require("length")?.as_int()?;
        let length = u64::try_from(length).map_err(|_| ProblemError::Wire {
            what: format!("stream length {length} is negative"),
        })?;
        let rule = value.require("inputs")?;
        let inputs = match rule.require("mode")?.as_str()? {
            "uniform" => StreamInputs::Uniform {
                label: wire_u16(rule.require("label")?.as_int()?)?,
            },
            "pattern" => {
                let mut pattern = Vec::new();
                for v in rule.require("pattern")?.as_array()? {
                    pattern.push(wire_u16(v.as_int()?)?);
                }
                StreamInputs::Pattern { pattern }
            }
            "seeded" => {
                let seed = rule.require("seed")?.as_int()?;
                let seed = u64::try_from(seed).map_err(|_| ProblemError::Wire {
                    what: format!("stream seed {seed} is negative"),
                })?;
                StreamInputs::Seeded { seed }
            }
            other => {
                return Err(ProblemError::Wire {
                    what: format!(
                        "unknown input mode `{other}` (expected uniform, pattern or seeded)"
                    ),
                })
            }
        };
        Ok(StreamInstanceSpec {
            topology,
            length,
            inputs,
        })
    }

    /// Parses a spec from its JSON wire form.
    ///
    /// # Errors
    ///
    /// See [`Self::from_json`]; additionally reports JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

fn wire_u16(v: i64) -> Result<u16> {
    u16::try_from(v).map_err(|_| ProblemError::Wire {
        what: format!("label index {v} does not fit in u16"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: u64) -> StreamInstanceSpec {
        StreamInstanceSpec {
            topology: Topology::Path,
            length: n,
            inputs: StreamInputs::Seeded { seed: 7 },
        }
    }

    #[test]
    fn input_rules_are_deterministic_and_in_range() {
        let uniform = StreamInstanceSpec {
            topology: Topology::Cycle,
            length: 10,
            inputs: StreamInputs::Uniform { label: 1 },
        };
        assert!((0..10).all(|i| uniform.input_at(i, 3).index() == 1));

        let pattern = StreamInstanceSpec {
            topology: Topology::Cycle,
            length: 10,
            inputs: StreamInputs::Pattern {
                pattern: vec![2, 0, 1],
            },
        };
        let got: Vec<usize> = (0..7).map(|i| pattern.input_at(i, 3).index()).collect();
        assert_eq!(got, [2, 0, 1, 2, 0, 1, 2]);

        let a = seeded(1 << 20);
        let b = seeded(1 << 20);
        for i in [0u64, 1, 2, 1_000_000, (1 << 32) - 1] {
            assert_eq!(a.input_at(i, 3), b.input_at(i, 3));
            assert!(a.input_at(i, 3).index() < 3);
        }
        // Different seeds disagree somewhere in a short prefix.
        let c = StreamInstanceSpec {
            inputs: StreamInputs::Seeded { seed: 8 },
            ..seeded(1 << 20)
        };
        assert!((0..64).any(|i| a.input_at(i, 3) != c.input_at(i, 3)));
    }

    #[test]
    fn seeded_inputs_hit_every_label() {
        let spec = seeded(1 << 12);
        let mut seen = [false; 5];
        for i in 0..(1 << 12) {
            seen[spec.input_at(i, 5).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(seeded(0).validate(2).is_err());
        assert!(seeded(MAX_STREAM_NODES).validate(2).is_ok());
        assert!(seeded(MAX_STREAM_NODES + 1).validate(2).is_err());

        let bad_uniform = StreamInstanceSpec {
            inputs: StreamInputs::Uniform { label: 2 },
            ..seeded(4)
        };
        assert!(matches!(
            bad_uniform.validate(2),
            Err(ProblemError::LabelOutOfRange { .. })
        ));

        let empty = StreamInstanceSpec {
            inputs: StreamInputs::Pattern { pattern: vec![] },
            ..seeded(4)
        };
        assert!(empty.validate(2).is_err());
        let bad_pattern = StreamInstanceSpec {
            inputs: StreamInputs::Pattern {
                pattern: vec![0, 9],
            },
            ..seeded(4)
        };
        assert!(bad_pattern.validate(2).is_err());
    }

    #[test]
    fn json_roundtrips_canonically() {
        let specs = [
            StreamInstanceSpec {
                topology: Topology::Path,
                length: 5,
                inputs: StreamInputs::Uniform { label: 0 },
            },
            StreamInstanceSpec {
                topology: Topology::Cycle,
                length: 1 << 31,
                inputs: StreamInputs::Pattern {
                    pattern: vec![0, 1, 1],
                },
            },
            seeded(1_000_000),
        ];
        for spec in specs {
            let text = spec.to_json_string();
            let back = StreamInstanceSpec::from_json_str(&text).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.to_json_string(), text);
        }
        assert_eq!(
            seeded(3).to_json_string(),
            r#"{"inputs":{"mode":"seeded","seed":7},"length":3,"topology":"path"}"#
        );
    }

    #[test]
    fn json_rejects_malformed_specs() {
        for text in [
            r#"{}"#,
            r#"{"topology":"tree","length":3,"inputs":{"mode":"seeded","seed":7}}"#,
            r#"{"topology":"path","length":-1,"inputs":{"mode":"seeded","seed":7}}"#,
            r#"{"topology":"path","length":3,"inputs":{"mode":"seeded","seed":-7}}"#,
            r#"{"topology":"path","length":3,"inputs":{"mode":"magic"}}"#,
            r#"{"topology":"path","length":3,"inputs":{"mode":"uniform"}}"#,
            r#"{"topology":"path","length":3,"inputs":{"mode":"pattern","pattern":[70000]}}"#,
        ] {
            assert!(
                StreamInstanceSpec::from_json_str(text).is_err(),
                "accepted: {text}"
            );
        }
    }

    #[test]
    fn materialize_matches_input_at() {
        let spec = StreamInstanceSpec {
            topology: Topology::Cycle,
            length: 9,
            inputs: StreamInputs::Pattern {
                pattern: vec![1, 0],
            },
        };
        let instance = spec.materialize(2);
        assert_eq!(instance.len(), 9);
        assert_eq!(instance.topology(), Topology::Cycle);
        for i in 0..9usize {
            assert_eq!(instance.input(i), spec.input_at(i as u64, 2));
        }
    }
}
