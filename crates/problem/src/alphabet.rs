//! Label alphabets and typed label indices.
//!
//! The paper works with constant-sized input and output label sets `Σ_in` and
//! `Σ_out`. We represent labels as dense indices into an [`Alphabet`], and use
//! two distinct newtypes — [`InLabel`] and [`OutLabel`] — so that input and
//! output labels cannot be confused at compile time.

use std::fmt;

/// An input label: an index into the input alphabet `Σ_in` of a problem.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct InLabel(pub u16);

/// An output label: an index into the output alphabet `Σ_out` of a problem.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct OutLabel(pub u16);

macro_rules! impl_label {
    ($ty:ident) => {
        impl $ty {
            /// Returns the dense index of this label.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates a label from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u16`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u16::MAX as usize, "label index out of range");
                $ty(index as u16)
            }
        }

        impl From<u16> for $ty {
            fn from(v: u16) -> Self {
                $ty(v)
            }
        }

        impl From<$ty> for u16 {
            fn from(v: $ty) -> Self {
                v.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_label!(InLabel);
impl_label!(OutLabel);

/// A finite, ordered set of named labels.
///
/// Alphabets are immutable once constructed. Labels are referred to by their
/// dense index (`0..len()`); the stored names exist for display, debugging and
/// serialization purposes only.
///
/// # Example
///
/// ```
/// use lcl_problem::Alphabet;
///
/// let sigma = Alphabet::new(["a", "b", "c"]);
/// assert_eq!(sigma.len(), 3);
/// assert_eq!(sigma.index_of("b"), Some(1));
/// assert_eq!(sigma.name(2), "c");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Creates an alphabet from an ordered list of label names.
    ///
    /// Duplicate names are allowed (they denote distinct labels that merely
    /// display identically), but most callers will want unique names.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Alphabet {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an alphabet of `n` labels named `prefix0`, `prefix1`, ….
    pub fn numbered(prefix: &str, n: usize) -> Self {
        Alphabet {
            names: (0..n).map(|i| format!("{prefix}{i}")).collect(),
        }
    }

    /// Number of labels in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the alphabet has no labels.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of the label with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Looks up the dense index of the first label with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Iterates over `(index, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    /// All names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Extends the alphabet with a new label, returning its index.
    ///
    /// Mainly useful when deriving a problem's alphabet from another one (for
    /// example when adding escape or marker labels in a transformation).
    pub fn push(&mut self, name: impl Into<String>) -> usize {
        self.names.push(name.into());
        self.names.len() - 1
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        let l = InLabel::from_index(7);
        assert_eq!(l.index(), 7);
        assert_eq!(u16::from(l), 7);
        let o: OutLabel = 3u16.into();
        assert_eq!(o.index(), 3);
    }

    #[test]
    fn display_is_index() {
        assert_eq!(InLabel(4).to_string(), "4");
        assert_eq!(OutLabel(9).to_string(), "9");
    }

    #[test]
    fn alphabet_basic() {
        let a = Alphabet::new(["L", "R", "0", "1"]);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.index_of("R"), Some(1));
        assert_eq!(a.index_of("missing"), None);
        assert_eq!(a.name(3), "1");
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected[0], (0, "L"));
        assert_eq!(collected.len(), 4);
    }

    #[test]
    fn numbered_alphabet() {
        let a = Alphabet::numbered("q", 3);
        assert_eq!(a.names(), &["q0".to_string(), "q1".into(), "q2".into()]);
        assert_eq!(a.to_string(), "{q0, q1, q2}");
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new(Vec::<String>::new());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn push_extends() {
        let mut a = Alphabet::new(["a"]);
        let idx = a.push("b");
        assert_eq!(idx, 1);
        assert_eq!(a.name(1), "b");
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_index_panics() {
        let _ = InLabel::from_index(usize::from(u16::MAX) + 1);
    }
}
