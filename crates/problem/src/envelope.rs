//! The versioned NDJSON request/response envelope of the classification
//! service.
//!
//! Where [`crate::ProblemSpec`] is the wire form of one *problem*, the
//! envelope types here are the wire form of one *exchange*: every frame the
//! `lcl-server` crate reads or writes is a single line of JSON shaped as a
//! [`RequestEnvelope`] or a [`ResponseEnvelope`]. The envelope lives in this
//! crate (next to the rest of the wire format) so that clients, servers and
//! test harnesses share one strict parser and one canonical serializer —
//! equal envelopes always print byte-identically.
//!
//! A request carries the protocol version (`"v"`), a caller-chosen integer
//! request id (`"id"`, echoed back verbatim), a request kind (`"kind"`) and
//! an optional kind-specific `"payload"` object. A response echoes the id and
//! kind and carries either `"ok": true` with a `"payload"`, or `"ok": false`
//! with a structured [`ErrorReply`] (`category` + `message`). The request
//! kinds themselves (`classify`, `classify_many`, `solve`, `stats`,
//! `health`) are interpreted by the server crate; this module only fixes the
//! frame shape. See `docs/PROTOCOL.md` at the repository root for the full
//! protocol specification with examples.

use crate::json::JsonValue;
use crate::{ProblemError, Result};
use std::fmt;

/// The current version of the service protocol. Requests carrying any other
/// version are rejected before their payload is interpreted.
pub const PROTOCOL_VERSION: i64 = 1;

/// One parsed request frame: `{"v":1,"id":7,"kind":"classify","payload":…}`.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestEnvelope {
    /// Caller-chosen request id; the response echoes it, which lets a client
    /// detect desynchronized streams.
    pub id: i64,
    /// The request kind (e.g. `classify`); interpreted by the server.
    pub kind: String,
    /// Kind-specific payload document; [`JsonValue::Null`] when absent.
    pub payload: JsonValue,
}

impl RequestEnvelope {
    /// Builds a request envelope for the current protocol version.
    pub fn new(id: i64, kind: impl Into<String>, payload: JsonValue) -> Self {
        RequestEnvelope {
            id,
            kind: kind.into(),
            payload,
        }
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        self.clone().into_json()
    }

    /// Serializes to a JSON document, consuming the envelope. Unlike
    /// [`RequestEnvelope::to_json`] this does not deep-copy the payload
    /// tree — the difference matters to pipelining clients serializing
    /// thousands of frames per second.
    pub fn into_json(self) -> JsonValue {
        JsonValue::object([
            ("v", JsonValue::Int(PROTOCOL_VERSION)),
            ("id", JsonValue::Int(self.id)),
            ("kind", JsonValue::Str(self.kind)),
            ("payload", self.payload),
        ])
    }

    /// Serializes to a compact single-line JSON string (one NDJSON frame).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// [`RequestEnvelope::into_json`], serialized to one NDJSON frame.
    pub fn into_json_string(self) -> String {
        self.into_json().to_json_string()
    }

    /// Reads a request back from a parsed JSON document, enforcing the
    /// protocol version and field types.
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on a missing/unsupported `v`, a missing or
    /// non-integer `id`, or a missing/empty `kind`. The payload is *not*
    /// validated here — its shape depends on the kind.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let version = value.require("v")?.as_int()?;
        if version != PROTOCOL_VERSION {
            return Err(ProblemError::Wire {
                what: format!(
                    "unsupported protocol version {version} (supported: {PROTOCOL_VERSION})"
                ),
            });
        }
        let id = value.require("id")?.as_int()?;
        let kind = value.require("kind")?.as_str()?.to_string();
        if kind.is_empty() {
            return Err(ProblemError::Wire {
                what: "request kind must not be empty".to_string(),
            });
        }
        let payload = value.get("payload").cloned().unwrap_or(JsonValue::Null);
        Ok(RequestEnvelope { id, kind, payload })
    }

    /// Parses a request from one NDJSON frame.
    ///
    /// # Errors
    ///
    /// See [`RequestEnvelope::from_json`]; additionally reports JSON syntax
    /// errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

/// A structured error carried by a failed response: a stable machine-readable
/// `category` (which subsystem produced the error — `problem`, `semigroup`,
/// `simulator`, `lba`, `classifier` — or `protocol` for malformed frames and
/// `overloaded` for admission-control rejections) and a human-readable
/// `message`. Overloaded rejections additionally carry a `retryable` flag
/// and a `retry_after_millis` backoff hint; both fields are **optional** on
/// the wire and omitted entirely when absent, so every pre-existing error
/// reply serializes byte-identically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ErrorReply {
    /// Stable error category identifier.
    pub category: String,
    /// Human-readable description.
    pub message: String,
    /// Whether retrying the identical request later may succeed (present on
    /// `overloaded` rejections; absent — and omitted from the wire — on
    /// every other error).
    pub retryable: Option<bool>,
    /// Suggested client backoff before retrying, in milliseconds (present
    /// only alongside [`ErrorReply::retryable`]).
    pub retry_after_millis: Option<u64>,
}

impl ErrorReply {
    /// Builds an error reply.
    pub fn new(category: impl Into<String>, message: impl Into<String>) -> Self {
        ErrorReply {
            category: category.into(),
            message: message.into(),
            retryable: None,
            retry_after_millis: None,
        }
    }

    /// Builds an `overloaded` admission-control rejection: retryable, with a
    /// suggested backoff of `retry_after_millis`.
    pub fn overloaded(message: impl Into<String>, retry_after_millis: u64) -> Self {
        ErrorReply {
            category: "overloaded".to_string(),
            message: message.into(),
            retryable: Some(true),
            retry_after_millis: Some(retry_after_millis),
        }
    }

    /// Serializes to a JSON document. The retry fields are emitted only when
    /// present, so non-overloaded errors keep their historical byte shape.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("category", JsonValue::Str(self.category.clone())),
            ("message", JsonValue::Str(self.message.clone())),
        ];
        if let Some(millis) = self.retry_after_millis {
            fields.push(("retry_after_millis", JsonValue::Int(millis as i64)));
        }
        if let Some(retryable) = self.retryable {
            fields.push(("retryable", JsonValue::Bool(retryable)));
        }
        JsonValue::object(fields)
    }

    /// Reads an error reply back from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on missing or non-string required fields,
    /// or mistyped optional retry fields.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let retryable = match value.get("retryable") {
            Some(v) => Some(v.as_bool()?),
            None => None,
        };
        let retry_after_millis = match value.get("retry_after_millis") {
            Some(v) => {
                let millis = v.as_int()?;
                Some(u64::try_from(millis).map_err(|_| ProblemError::Wire {
                    what: format!("retry_after_millis must be non-negative, got {millis}"),
                })?)
            }
            None => None,
        };
        Ok(ErrorReply {
            category: value.require("category")?.as_str()?.to_string(),
            message: value.require("message")?.as_str()?.to_string(),
            retryable,
            retry_after_millis,
        })
    }
}

impl fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category, self.message)
    }
}

/// One response frame: either
/// `{"id":7,"kind":"classify","ok":true,"payload":…}` or
/// `{"id":7,"kind":"classify","ok":false,"error":{…}}`.
#[derive(Clone, PartialEq, Debug)]
pub struct ResponseEnvelope {
    /// The echoed request id; `None` when the request was so malformed that
    /// no id could be recovered (serialized as JSON `null`).
    pub id: Option<i64>,
    /// The echoed request kind (the literal `invalid` when unknown).
    pub kind: String,
    /// The outcome: a kind-specific payload, or a structured error.
    pub result: std::result::Result<JsonValue, ErrorReply>,
}

impl ResponseEnvelope {
    /// Builds a success response.
    pub fn ok(id: i64, kind: impl Into<String>, payload: JsonValue) -> Self {
        ResponseEnvelope {
            id: Some(id),
            kind: kind.into(),
            result: Ok(payload),
        }
    }

    /// Builds an error response.
    pub fn error(id: Option<i64>, kind: impl Into<String>, error: ErrorReply) -> Self {
        ResponseEnvelope {
            id,
            kind: kind.into(),
            result: Err(error),
        }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        self.clone().into_json()
    }

    /// Serializes to a JSON document, consuming the envelope. Unlike
    /// [`ResponseEnvelope::to_json`] this does not deep-copy the payload
    /// tree; the server serializes every reply through this.
    pub fn into_json(self) -> JsonValue {
        let id = match self.id {
            Some(id) => JsonValue::Int(id),
            None => JsonValue::Null,
        };
        match self.result {
            Ok(payload) => JsonValue::object([
                ("id", id),
                ("kind", JsonValue::Str(self.kind)),
                ("ok", JsonValue::Bool(true)),
                ("payload", payload),
            ]),
            Err(error) => JsonValue::object([
                ("id", id),
                ("kind", JsonValue::Str(self.kind)),
                ("ok", JsonValue::Bool(false)),
                ("error", error.to_json()),
            ]),
        }
    }

    /// Serializes to a compact single-line JSON string (one NDJSON frame).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// [`ResponseEnvelope::into_json`], serialized to one NDJSON frame.
    pub fn into_json_string(self) -> String {
        self.into_json().to_json_string()
    }

    /// Reads a response back from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on missing fields or a non-boolean `ok`.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let id = match value.require("id")? {
            JsonValue::Null => None,
            other => Some(other.as_int()?),
        };
        let kind = value.require("kind")?.as_str()?.to_string();
        let result = if value.require("ok")?.as_bool()? {
            Ok(value.require("payload")?.clone())
        } else {
            Err(ErrorReply::from_json(value.require("error")?)?)
        };
        Ok(ResponseEnvelope { id, kind, result })
    }

    /// Parses a response from one NDJSON frame.
    ///
    /// # Errors
    ///
    /// See [`ResponseEnvelope::from_json`]; additionally reports JSON syntax
    /// errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let payload = JsonValue::object([("x", JsonValue::Int(1))]);
        let request = RequestEnvelope::new(7, "classify", payload);
        let text = request.to_json_string();
        assert_eq!(
            text,
            r#"{"id":7,"kind":"classify","payload":{"x":1},"v":1}"#
        );
        assert_eq!(RequestEnvelope::from_json_str(&text).unwrap(), request);
    }

    #[test]
    fn request_payload_defaults_to_null() {
        let request = RequestEnvelope::from_json_str(r#"{"v":1,"id":1,"kind":"health"}"#).unwrap();
        assert_eq!(request.payload, JsonValue::Null);
        assert_eq!(request.kind, "health");
    }

    #[test]
    fn bad_requests_are_rejected() {
        // Syntax error.
        assert!(RequestEnvelope::from_json_str("{").is_err());
        // Missing version.
        assert!(RequestEnvelope::from_json_str(r#"{"id":1,"kind":"health"}"#).is_err());
        // Unsupported version.
        let err = RequestEnvelope::from_json_str(r#"{"v":2,"id":1,"kind":"health"}"#).unwrap_err();
        assert!(err.to_string().contains("unsupported protocol version 2"));
        // Missing / non-integer id.
        assert!(RequestEnvelope::from_json_str(r#"{"v":1,"kind":"health"}"#).is_err());
        assert!(RequestEnvelope::from_json_str(r#"{"v":1,"id":"x","kind":"health"}"#).is_err());
        // Missing / empty kind.
        assert!(RequestEnvelope::from_json_str(r#"{"v":1,"id":1}"#).is_err());
        assert!(RequestEnvelope::from_json_str(r#"{"v":1,"id":1,"kind":""}"#).is_err());
    }

    #[test]
    fn ok_response_roundtrips() {
        let response = ResponseEnvelope::ok(3, "stats", JsonValue::object([]));
        assert!(response.is_ok());
        let text = response.to_json_string();
        assert_eq!(text, r#"{"id":3,"kind":"stats","ok":true,"payload":{}}"#);
        assert_eq!(ResponseEnvelope::from_json_str(&text).unwrap(), response);
    }

    #[test]
    fn error_response_roundtrips_with_null_id() {
        let response = ResponseEnvelope::error(
            None,
            "invalid",
            ErrorReply::new("protocol", "malformed request frame"),
        );
        assert!(!response.is_ok());
        let text = response.to_json_string();
        assert_eq!(
            text,
            r#"{"error":{"category":"protocol","message":"malformed request frame"},"id":null,"kind":"invalid","ok":false}"#
        );
        let back = ResponseEnvelope::from_json_str(&text).unwrap();
        assert_eq!(back, response);
        assert_eq!(
            back.result.unwrap_err().to_string(),
            "protocol: malformed request frame"
        );
    }

    #[test]
    fn overloaded_errors_carry_retry_hints() {
        let response = ResponseEnvelope::error(
            Some(9),
            "classify",
            ErrorReply::overloaded("load shed: pool queue depth 64 >= 8", 250),
        );
        let text = response.to_json_string();
        assert_eq!(
            text,
            r#"{"error":{"category":"overloaded","message":"load shed: pool queue depth 64 >= 8","retry_after_millis":250,"retryable":true},"id":9,"kind":"classify","ok":false}"#
        );
        let back = ResponseEnvelope::from_json_str(&text).unwrap();
        assert_eq!(back, response);
        let error = back.result.unwrap_err();
        assert_eq!(error.retryable, Some(true));
        assert_eq!(error.retry_after_millis, Some(250));
        // Negative backoffs are wire errors, not silent wraps.
        assert!(ErrorReply::from_json(
            &JsonValue::parse(r#"{"category":"overloaded","message":"m","retry_after_millis":-1}"#)
                .unwrap()
        )
        .is_err());
    }

    #[test]
    fn bad_responses_are_rejected() {
        assert!(ResponseEnvelope::from_json_str(r#"{"id":1,"kind":"x"}"#).is_err());
        assert!(ResponseEnvelope::from_json_str(r#"{"id":1,"kind":"x","ok":1}"#).is_err());
        // ok:true without payload / ok:false without error.
        assert!(ResponseEnvelope::from_json_str(r#"{"id":1,"kind":"x","ok":true}"#).is_err());
        assert!(ResponseEnvelope::from_json_str(r#"{"id":1,"kind":"x","ok":false}"#).is_err());
    }
}
