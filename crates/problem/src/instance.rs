//! Concrete problem instances: input-labeled paths and cycles, and output labelings.

use crate::{InLabel, OutLabel, ProblemError, Result};
use std::fmt;

/// The topology of an instance: a path with two endpoints, or a cycle.
///
/// In both cases the nodes are consistently (globally) oriented: node `i+1`
/// is the *successor* of node `i` and node `i-1` its *predecessor*; on a cycle
/// the indices wrap around. The undirected variants of the paper's results are
/// obtained through the problem transformation of §3.7 rather than through a
/// separate topology.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Topology {
    /// A directed path `p_0 → p_1 → … → p_{n-1}`.
    Path,
    /// A directed cycle on `n` nodes.
    Cycle,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Path => write!(f, "path"),
            Topology::Cycle => write!(f, "cycle"),
        }
    }
}

/// An input-labeled path or cycle.
///
/// The instance stores only the topology and the per-node input labels; node
/// identifiers live in the LOCAL simulator (`lcl-local-sim`), because the
/// validity of an output labeling never depends on identifiers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instance {
    topology: Topology,
    inputs: Vec<InLabel>,
}

impl Instance {
    /// Creates a path instance from its input labels (in path order).
    pub fn path(inputs: Vec<InLabel>) -> Self {
        Instance {
            topology: Topology::Path,
            inputs,
        }
    }

    /// Creates a cycle instance from its input labels (in cyclic order).
    pub fn cycle(inputs: Vec<InLabel>) -> Self {
        Instance {
            topology: Topology::Cycle,
            inputs,
        }
    }

    /// Creates an instance from raw `u16` label indices.
    pub fn from_indices(topology: Topology, inputs: &[u16]) -> Self {
        Instance {
            topology,
            inputs: inputs.iter().copied().map(InLabel).collect(),
        }
    }

    /// The topology of this instance.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The input labels in node order.
    pub fn inputs(&self) -> &[InLabel] {
        &self.inputs
    }

    /// The input label of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn input(&self, i: usize) -> InLabel {
        self.inputs[i]
    }

    /// Index of the predecessor of node `i`, if it has one.
    ///
    /// On a cycle every node has a predecessor; on a path node `0` has none.
    pub fn predecessor(&self, i: usize) -> Option<usize> {
        match self.topology {
            Topology::Path => i.checked_sub(1),
            Topology::Cycle => {
                if self.inputs.is_empty() {
                    None
                } else {
                    Some((i + self.inputs.len() - 1) % self.inputs.len())
                }
            }
        }
    }

    /// Index of the successor of node `i`, if it has one.
    pub fn successor(&self, i: usize) -> Option<usize> {
        match self.topology {
            Topology::Path => {
                if i + 1 < self.inputs.len() {
                    Some(i + 1)
                } else {
                    None
                }
            }
            Topology::Cycle => {
                if self.inputs.is_empty() {
                    None
                } else {
                    Some((i + 1) % self.inputs.len())
                }
            }
        }
    }

    /// Checks that every input label index is smaller than `alphabet_len`.
    pub fn check_alphabet(&self, alphabet_len: usize) -> Result<()> {
        for &l in &self.inputs {
            if l.index() >= alphabet_len {
                return Err(ProblemError::LabelOutOfRange {
                    what: "input",
                    index: l.index(),
                    alphabet_len,
                });
            }
        }
        Ok(())
    }

    /// Returns the input labels of the directed subpath `[from, to]`
    /// (inclusive, walking successor-wise, wrapping on cycles).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, or if `from > to` on a path.
    pub fn subpath(&self, from: usize, to: usize) -> Vec<InLabel> {
        let n = self.inputs.len();
        assert!(from < n && to < n, "subpath index out of range");
        match self.topology {
            Topology::Path => {
                assert!(from <= to, "subpath reversed on a path");
                self.inputs[from..=to].to_vec()
            }
            Topology::Cycle => {
                let mut out = Vec::new();
                let mut i = from;
                loop {
                    out.push(self.inputs[i]);
                    if i == to {
                        break;
                    }
                    i = (i + 1) % n;
                }
                out
            }
        }
    }
}

/// An output labeling: one output label per node, in node order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Labeling {
    outputs: Vec<OutLabel>,
}

impl Labeling {
    /// Creates a labeling from output labels.
    pub fn new(outputs: Vec<OutLabel>) -> Self {
        Labeling { outputs }
    }

    /// Creates a labeling from raw `u16` indices.
    pub fn from_indices(outputs: &[u16]) -> Self {
        Labeling {
            outputs: outputs.iter().copied().map(OutLabel).collect(),
        }
    }

    /// Creates a labeling in which every node gets the same output label.
    pub fn uniform(label: OutLabel, n: usize) -> Self {
        Labeling {
            outputs: vec![label; n],
        }
    }

    /// Number of labeled nodes.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` if no node is labeled.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The output labels, in node order.
    pub fn outputs(&self) -> &[OutLabel] {
        &self.outputs
    }

    /// The output label of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn output(&self, i: usize) -> OutLabel {
        self.outputs[i]
    }

    /// Mutable access to the output label of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn output_mut(&mut self, i: usize) -> &mut OutLabel {
        &mut self.outputs[i]
    }

    /// Checks that every output label index is smaller than `alphabet_len`.
    pub fn check_alphabet(&self, alphabet_len: usize) -> Result<()> {
        for &l in &self.outputs {
            if l.index() >= alphabet_len {
                return Err(ProblemError::LabelOutOfRange {
                    what: "output",
                    index: l.index(),
                    alphabet_len,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<OutLabel> for Labeling {
    fn from_iter<T: IntoIterator<Item = OutLabel>>(iter: T) -> Self {
        Labeling {
            outputs: iter.into_iter().collect(),
        }
    }
}

impl Extend<OutLabel> for Labeling {
    fn extend<T: IntoIterator<Item = OutLabel>>(&mut self, iter: T) {
        self.outputs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Instance {
        Instance::from_indices(Topology::Path, &[0, 1, 2])
    }

    fn cycle4() -> Instance {
        Instance::from_indices(Topology::Cycle, &[0, 1, 2, 3])
    }

    #[test]
    fn path_neighbors() {
        let p = path3();
        assert_eq!(p.predecessor(0), None);
        assert_eq!(p.predecessor(2), Some(1));
        assert_eq!(p.successor(2), None);
        assert_eq!(p.successor(0), Some(1));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn cycle_neighbors_wrap() {
        let c = cycle4();
        assert_eq!(c.predecessor(0), Some(3));
        assert_eq!(c.successor(3), Some(0));
        assert_eq!(c.topology(), Topology::Cycle);
    }

    #[test]
    fn subpath_on_path_and_cycle() {
        let p = path3();
        assert_eq!(
            p.subpath(1, 2),
            vec![InLabel(1), InLabel(2)],
            "path subpath"
        );
        let c = cycle4();
        assert_eq!(
            c.subpath(3, 1),
            vec![InLabel(3), InLabel(0), InLabel(1)],
            "cycle subpath wraps"
        );
    }

    #[test]
    fn alphabet_bounds() {
        let p = path3();
        assert!(p.check_alphabet(3).is_ok());
        assert!(matches!(
            p.check_alphabet(2),
            Err(ProblemError::LabelOutOfRange { .. })
        ));
        let l = Labeling::from_indices(&[0, 5]);
        assert!(l.check_alphabet(6).is_ok());
        assert!(l.check_alphabet(5).is_err());
    }

    #[test]
    fn labeling_accessors() {
        let mut l = Labeling::uniform(OutLabel(2), 4);
        assert_eq!(l.len(), 4);
        assert_eq!(l.output(3), OutLabel(2));
        *l.output_mut(1) = OutLabel(0);
        assert_eq!(
            l.outputs(),
            &[OutLabel(2), OutLabel(0), OutLabel(2), OutLabel(2)]
        );
        let collected: Labeling = vec![OutLabel(1), OutLabel(2)].into_iter().collect();
        assert_eq!(collected.len(), 2);
        let mut ext = Labeling::new(vec![]);
        ext.extend([OutLabel(7)]);
        assert_eq!(ext.output(0), OutLabel(7));
        assert!(!ext.is_empty());
    }

    #[test]
    fn empty_cycle_has_no_neighbors() {
        let c = Instance::cycle(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.predecessor(0), None);
        assert_eq!(c.successor(0), None);
    }

    #[test]
    fn topology_display() {
        assert_eq!(Topology::Path.to_string(), "path");
        assert_eq!(Topology::Cycle.to_string(), "cycle");
    }
}
