//! The versioned wire format for problems and instances, and canonical
//! problem hashing.
//!
//! [`ProblemSpec`] is the service-boundary representation of a
//! [`NormalizedLcl`]: a flat, versioned description (alphabets as name lists,
//! constraints as explicit index pairs) that serializes to canonical JSON and
//! round-trips losslessly. The spec exists so that problems can cross process
//! boundaries — request payloads, corpus files, cache manifests — without
//! exposing the in-memory table layout, and the `version` field lets future
//! revisions evolve the format without breaking old payloads.
//!
//! [`NormalizedLcl::structural_key`] is the exact byte encoding of the fields
//! that determine a problem's complexity (alphabet sizes and constraint
//! tables) — it deliberately ignores display-only data (the problem name and
//! label names), so renamed copies of the same problem share cache entries in
//! the classifier engine, which keys its memo cache by this exact key.
//! [`NormalizedLcl::canonical_hash`] is the compact 64-bit digest of the same
//! bytes, used where a fixed-width fingerprint is wanted (wire verdicts,
//! logs); being a digest it can collide, so it is not used as a cache key.

use crate::json::{JsonError, JsonValue};
use crate::{
    Alphabet, InLabel, Instance, Labeling, NormalizedLcl, OutLabel, ProblemError, Result, Topology,
};

/// The current [`ProblemSpec`] wire-format version.
pub const PROBLEM_SPEC_VERSION: i64 = 1;

/// A flat, versioned, serializable description of a [`NormalizedLcl`].
///
/// # Example
///
/// ```
/// use lcl_problem::{NormalizedLcl, ProblemSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NormalizedLcl::builder("copy");
/// b.input_labels(&["a"]);
/// b.output_labels(&["a"]);
/// b.allow_all_node_pairs();
/// b.allow_all_edge_pairs();
/// let problem = b.build()?;
///
/// let json = ProblemSpec::from_problem(&problem).to_json_string();
/// let back = ProblemSpec::from_json_str(&json)?.to_problem()?;
/// assert_eq!(back, problem);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProblemSpec {
    /// Wire-format version; currently always [`PROBLEM_SPEC_VERSION`].
    pub version: i64,
    /// Human-readable problem name.
    pub name: String,
    /// Input alphabet names, in index order.
    pub input_labels: Vec<String>,
    /// Output alphabet names, in index order.
    pub output_labels: Vec<String>,
    /// Allowed `(input, output)` node pairs, as label indices.
    pub node_pairs: Vec<(u16, u16)>,
    /// Allowed `(pred, succ)` edge pairs, as output label indices.
    pub edge_pairs: Vec<(u16, u16)>,
}

impl ProblemSpec {
    /// Extracts the spec of a problem. Lossless: `spec.to_problem()` rebuilds
    /// an equal [`NormalizedLcl`].
    pub fn from_problem(problem: &NormalizedLcl) -> Self {
        ProblemSpec {
            version: PROBLEM_SPEC_VERSION,
            name: problem.name().to_string(),
            input_labels: problem.input_alphabet().names().to_vec(),
            output_labels: problem.output_alphabet().names().to_vec(),
            node_pairs: problem.allowed_node_pairs().collect(),
            edge_pairs: problem.allowed_edge_pairs().collect(),
        }
    }

    /// Builds the in-memory problem this spec describes.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec's version is unknown, an alphabet is
    /// empty, or a constraint pair references a label outside its alphabet.
    pub fn to_problem(&self) -> Result<NormalizedLcl> {
        if self.version != PROBLEM_SPEC_VERSION {
            return Err(ProblemError::Wire {
                what: format!(
                    "unsupported problem spec version {} (supported: {PROBLEM_SPEC_VERSION})",
                    self.version
                ),
            });
        }
        let mut builder = NormalizedLcl::builder(self.name.clone());
        builder.input_alphabet(Alphabet::new(self.input_labels.iter().cloned()));
        builder.output_alphabet(Alphabet::new(self.output_labels.iter().cloned()));
        for &(i, o) in &self.node_pairs {
            builder.allow_node_idx(i, o);
        }
        for &(p, q) in &self.edge_pairs {
            builder.allow_edge_idx(p, q);
        }
        builder.build()
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("version", JsonValue::Int(self.version)),
            ("name", JsonValue::Str(self.name.clone())),
            (
                "input_labels",
                JsonValue::str_array(self.input_labels.iter().cloned()),
            ),
            (
                "output_labels",
                JsonValue::str_array(self.output_labels.iter().cloned()),
            ),
            ("node_pairs", pairs_to_json(&self.node_pairs)),
            ("edge_pairs", pairs_to_json(&self.edge_pairs)),
        ])
    }

    /// Serializes to a compact JSON string with canonical field order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Reads a spec back from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns an error on missing fields, wrong types, or out-of-range label
    /// indices.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let version = value.require("version")?.as_int().map_err(wire)?;
        let name = value.require("name")?.as_str().map_err(wire)?.to_string();
        let input_labels = string_list(value.require("input_labels")?)?;
        let output_labels = string_list(value.require("output_labels")?)?;
        let node_pairs = pairs_from_json(value.require("node_pairs")?)?;
        let edge_pairs = pairs_from_json(value.require("edge_pairs")?)?;
        Ok(ProblemSpec {
            version,
            name,
            input_labels,
            output_labels,
            node_pairs,
            edge_pairs,
        })
    }

    /// Parses a spec from its JSON string form.
    ///
    /// # Errors
    ///
    /// See [`ProblemSpec::from_json`]; additionally reports JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&JsonValue::parse(text).map_err(wire)?)
    }
}

fn wire(e: JsonError) -> ProblemError {
    ProblemError::Wire {
        what: e.to_string(),
    }
}

impl From<JsonError> for ProblemError {
    fn from(e: JsonError) -> Self {
        wire(e)
    }
}

fn pairs_to_json(pairs: &[(u16, u16)]) -> JsonValue {
    JsonValue::Array(
        pairs
            .iter()
            .map(|&(a, b)| JsonValue::int_array([i64::from(a), i64::from(b)]))
            .collect(),
    )
}

fn pairs_from_json(value: &JsonValue) -> Result<Vec<(u16, u16)>> {
    let mut out = Vec::new();
    for item in value.as_array().map_err(wire)? {
        let pair = item.as_array().map_err(wire)?;
        if pair.len() != 2 {
            return Err(ProblemError::Wire {
                what: format!("constraint pair has {} entries, expected 2", pair.len()),
            });
        }
        let a = int_as_u16(pair[0].as_int().map_err(wire)?)?;
        let b = int_as_u16(pair[1].as_int().map_err(wire)?)?;
        out.push((a, b));
    }
    Ok(out)
}

fn int_as_u16(v: i64) -> Result<u16> {
    u16::try_from(v).map_err(|_| ProblemError::Wire {
        what: format!("label index {v} does not fit in u16"),
    })
}

fn string_list(value: &JsonValue) -> Result<Vec<String>> {
    value
        .as_array()
        .map_err(wire)?
        .iter()
        .map(|v| Ok(v.as_str().map_err(wire)?.to_string()))
        .collect()
}

impl NormalizedLcl {
    /// Iterates over the allowed `(input, output)` node pairs, in row-major
    /// index order.
    pub fn allowed_node_pairs(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        (0..self.num_inputs()).flat_map(move |i| {
            (0..self.num_outputs()).filter_map(move |o| {
                self.node_ok(InLabel::from_index(i), OutLabel::from_index(o))
                    .then_some((i as u16, o as u16))
            })
        })
    }

    /// Iterates over the allowed `(pred, succ)` edge pairs, in row-major
    /// index order.
    pub fn allowed_edge_pairs(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        (0..self.num_outputs()).flat_map(move |p| {
            (0..self.num_outputs()).filter_map(move |q| {
                self.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q))
                    .then_some((p as u16, q as u16))
            })
        })
    }

    /// Extracts the problem's wire spec. Shorthand for
    /// [`ProblemSpec::from_problem`].
    pub fn to_spec(&self) -> ProblemSpec {
        ProblemSpec::from_problem(self)
    }

    /// Serializes the problem to its canonical JSON wire form.
    pub fn to_json_string(&self) -> String {
        self.to_spec().to_json_string()
    }

    /// Parses a problem from its JSON wire form.
    ///
    /// # Errors
    ///
    /// See [`ProblemSpec::from_json_str`] and [`ProblemSpec::to_problem`].
    pub fn from_json_str(text: &str) -> Result<Self> {
        ProblemSpec::from_json_str(text)?.to_problem()
    }

    /// The exact byte encoding of the problem's structure: the alphabet sizes
    /// followed by the bit-packed node and edge constraint tables.
    ///
    /// Two problems have equal keys exactly when they have the same alphabet
    /// sizes and identical constraint tables; the name and label names do not
    /// participate, because they never influence the complexity
    /// classification. The layout is fixed (sizes, then the row-major node
    /// table, then the row-major edge table), so keys are stable across
    /// processes. The classifier engine uses this as its collision-free memo
    /// key; [`Self::canonical_hash`] is the compact 64-bit digest of the same
    /// bytes.
    pub fn structural_key(&self) -> Vec<u8> {
        let alpha = self.num_inputs();
        let beta = self.num_outputs();
        let table_bits = alpha * beta + beta * beta;
        let mut key = Vec::with_capacity(16 + table_bits.div_ceil(8));
        self.structural_bytes(|byte| key.push(byte));
        key
    }

    /// Feeds the bytes of [`Self::structural_key`] to `sink` in order,
    /// without materializing them — the hot classify path hashes these bytes
    /// per request, so the digest must not cost an allocation.
    fn structural_bytes(&self, mut sink: impl FnMut(u8)) {
        let alpha = self.num_inputs();
        let beta = self.num_outputs();
        for byte in (alpha as u64).to_le_bytes() {
            sink(byte);
        }
        for byte in (beta as u64).to_le_bytes() {
            sink(byte);
        }
        // Pack the boolean tables into bits so the key is layout-independent.
        let mut acc: u8 = 0;
        let mut bits = 0u32;
        let node = (0..alpha).flat_map(|i| {
            (0..beta).map(move |o| (InLabel::from_index(i), OutLabel::from_index(o)))
        });
        for (i, o) in node {
            acc = (acc << 1) | u8::from(self.node_ok(i, o));
            bits += 1;
            if bits == 8 {
                sink(acc);
                acc = 0;
                bits = 0;
            }
        }
        let edge = (0..beta).flat_map(|p| {
            (0..beta).map(move |q| (OutLabel::from_index(p), OutLabel::from_index(q)))
        });
        for (p, q) in edge {
            acc = (acc << 1) | u8::from(self.edge_ok(p, q));
            bits += 1;
            if bits == 8 {
                sink(acc);
                acc = 0;
                bits = 0;
            }
        }
        if bits > 0 {
            sink(acc << (8 - bits));
        }
    }

    /// Rebuilds a problem from its [`Self::structural_key`] bytes.
    ///
    /// The key deliberately drops display data, so the rebuilt problem
    /// carries synthetic names (`"restored"`, labels `i0…`/`o0…`) — but its
    /// structure, and therefore its `structural_key`, `canonical_hash` and
    /// complexity classification, are exactly those of the problem that
    /// produced the key; the round trip is re-verified before returning.
    /// The engine's cache snapshot restore uses this, the key being the only
    /// problem identity a snapshot persists.
    ///
    /// # Errors
    ///
    /// Returns a wire-format error on a truncated or padded key, implausible
    /// alphabet sizes (each bounded at 1024 — far beyond anything the
    /// classifier can enumerate), a table that fails problem construction,
    /// or a decoded problem whose re-encoded key differs (corrupt padding
    /// bits). Never panics on arbitrary input bytes.
    pub fn from_structural_key(key: &[u8]) -> Result<NormalizedLcl> {
        const MAX_ALPHABET: u64 = 1024;
        let wire = |what: String| ProblemError::Wire { what };
        if key.len() < 16 {
            return Err(wire(format!(
                "structural key of {} bytes is shorter than its 16-byte header",
                key.len()
            )));
        }
        let alpha = u64::from_le_bytes(key[0..8].try_into().expect("sliced 8 bytes"));
        let beta = u64::from_le_bytes(key[8..16].try_into().expect("sliced 8 bytes"));
        if alpha == 0 || beta == 0 || alpha > MAX_ALPHABET || beta > MAX_ALPHABET {
            return Err(wire(format!(
                "structural key claims alphabet sizes {alpha}x{beta} \
                 (supported: 1..={MAX_ALPHABET} each)"
            )));
        }
        let (alpha, beta) = (alpha as usize, beta as usize);
        let table_bits = alpha * beta + beta * beta;
        let expected = 16 + table_bits.div_ceil(8);
        if key.len() != expected {
            return Err(wire(format!(
                "structural key is {} bytes, expected {expected} for alphabet sizes {alpha}x{beta}",
                key.len()
            )));
        }
        let bit = |k: usize| (key[16 + k / 8] >> (7 - (k % 8))) & 1 == 1;
        let mut builder = NormalizedLcl::builder("restored");
        builder.input_alphabet(Alphabet::new((0..alpha).map(|i| format!("i{i}"))));
        builder.output_alphabet(Alphabet::new((0..beta).map(|o| format!("o{o}"))));
        let mut k = 0;
        for i in 0..alpha {
            for o in 0..beta {
                if bit(k) {
                    builder.allow_node_idx(i as u16, o as u16);
                }
                k += 1;
            }
        }
        for p in 0..beta {
            for q in 0..beta {
                if bit(k) {
                    builder.allow_edge_idx(p as u16, q as u16);
                }
                k += 1;
            }
        }
        let problem = builder.build()?;
        if problem.structural_key() != key {
            return Err(wire(
                "structural key does not round-trip through decoding \
                 (corrupt padding bits?)"
                    .to_string(),
            ));
        }
        Ok(problem)
    }

    /// A 64-bit structural fingerprint of the problem: FNV-1a over
    /// [`Self::structural_key`] (computed without materializing the key).
    ///
    /// The name and label names do not participate (see `structural_key`).
    /// Being a 64-bit digest this can collide; use `structural_key` where an
    /// exact identity is required (the engine's memo cache does).
    pub fn canonical_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        self.structural_bytes(|byte| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        });
        hash
    }
}

impl Instance {
    /// Serializes the instance to a JSON document:
    /// `{"topology":"cycle","inputs":[0,1,…]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("topology", JsonValue::Str(self.topology().to_string())),
            (
                "inputs",
                JsonValue::int_array(self.inputs().iter().map(|l| i64::from(l.0))),
            ),
        ])
    }

    /// Serializes the instance to its JSON wire form.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Reads an instance back from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown topology or label indices that do not
    /// fit in `u16`.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let topology = match value.require("topology")?.as_str().map_err(wire)? {
            "path" => Topology::Path,
            "cycle" => Topology::Cycle,
            other => {
                return Err(ProblemError::Wire {
                    what: format!("unknown topology `{other}`"),
                })
            }
        };
        let mut inputs = Vec::new();
        for v in value.require("inputs")?.as_array().map_err(wire)? {
            inputs.push(InLabel(int_as_u16(v.as_int().map_err(wire)?)?));
        }
        Ok(match topology {
            Topology::Path => Instance::path(inputs),
            Topology::Cycle => Instance::cycle(inputs),
        })
    }

    /// Parses an instance from its JSON wire form.
    ///
    /// # Errors
    ///
    /// See [`Instance::from_json`]; additionally reports JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&JsonValue::parse(text).map_err(wire)?)
    }
}

impl Labeling {
    /// Serializes the labeling to its JSON wire form: `{"outputs":[…]}`.
    pub fn to_json_string(&self) -> String {
        JsonValue::object([(
            "outputs",
            JsonValue::int_array(self.outputs().iter().map(|l| i64::from(l.0))),
        )])
        .to_json_string()
    }

    /// Parses a labeling from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or out-of-range label indices.
    pub fn from_json_str(text: &str) -> Result<Self> {
        let value = JsonValue::parse(text).map_err(wire)?;
        let mut outputs = Vec::new();
        for v in value.require("outputs")?.as_array().map_err(wire)? {
            outputs.push(OutLabel(int_as_u16(v.as_int().map_err(wire)?)?));
        }
        Ok(Labeling::new(outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let p = three_coloring();
        let spec = p.to_spec();
        assert_eq!(spec.version, PROBLEM_SPEC_VERSION);
        assert_eq!(spec.node_pairs.len(), 3);
        assert_eq!(spec.edge_pairs.len(), 6);
        let text = spec.to_json_string();
        let back = ProblemSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        let rebuilt = back.to_problem().unwrap();
        assert_eq!(rebuilt, p);
        assert_eq!(
            NormalizedLcl::from_json_str(&p.to_json_string()).unwrap(),
            p
        );
    }

    #[test]
    fn canonical_hash_ignores_names_but_not_structure() {
        let p = three_coloring();
        let mut renamed = NormalizedLcl::builder("same-problem-other-name");
        renamed.input_labels(&["in"]);
        renamed.output_labels(&["r", "g", "b"]);
        renamed.allow_all_node_pairs();
        for q in 0..3u16 {
            for r in 0..3u16 {
                if q != r {
                    renamed.allow_edge_idx(q, r);
                }
            }
        }
        let renamed = renamed.build().unwrap();
        assert_eq!(p.canonical_hash(), renamed.canonical_hash());

        let mut different = NormalizedLcl::builder("3-coloring");
        different.input_labels(&["x"]);
        different.output_labels(&["1", "2", "3"]);
        different.allow_all_node_pairs();
        different.allow_all_edge_pairs();
        let different = different.build().unwrap();
        assert_ne!(p.canonical_hash(), different.canonical_hash());
    }

    #[test]
    fn hash_is_stable_across_serialization() {
        let p = three_coloring();
        let back = NormalizedLcl::from_json_str(&p.to_json_string()).unwrap();
        assert_eq!(p.canonical_hash(), back.canonical_hash());
    }

    #[test]
    fn structural_key_roundtrips_through_decoding() {
        let p = three_coloring();
        let key = p.structural_key();
        let decoded = NormalizedLcl::from_structural_key(&key).unwrap();
        // Names are synthetic, structure is exact: same key, same hash, same
        // constraint tables.
        assert_eq!(decoded.structural_key(), key);
        assert_eq!(decoded.canonical_hash(), p.canonical_hash());
        assert_eq!(decoded.name(), "restored");
        assert_eq!(
            decoded.allowed_node_pairs().collect::<Vec<_>>(),
            p.allowed_node_pairs().collect::<Vec<_>>()
        );
        assert_eq!(
            decoded.allowed_edge_pairs().collect::<Vec<_>>(),
            p.allowed_edge_pairs().collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_structural_keys_are_rejected_without_panicking() {
        let key = three_coloring().structural_key();
        // Too short for the header.
        assert!(NormalizedLcl::from_structural_key(&key[..8]).is_err());
        // Truncated table.
        assert!(NormalizedLcl::from_structural_key(&key[..key.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = key.clone();
        long.push(0);
        assert!(NormalizedLcl::from_structural_key(&long).is_err());
        // Zero / absurd alphabet sizes.
        let mut zeroed = key.clone();
        zeroed[0..8].fill(0);
        assert!(NormalizedLcl::from_structural_key(&zeroed).is_err());
        let mut huge = key.clone();
        huge[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(NormalizedLcl::from_structural_key(&huge).is_err());
        // A flipped padding bit keeps the length valid but cannot round-trip.
        let mut padded = key.clone();
        *padded.last_mut().unwrap() |= 1;
        assert!(NormalizedLcl::from_structural_key(&padded).is_err());
        assert!(NormalizedLcl::from_structural_key(&[]).is_err());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut spec = three_coloring().to_spec();
        spec.version = 999;
        assert!(matches!(spec.to_problem(), Err(ProblemError::Wire { .. })));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(ProblemSpec::from_json_str("{").is_err());
        assert!(ProblemSpec::from_json_str("{}").is_err());
        assert!(ProblemSpec::from_json_str(
            r#"{"version":1,"name":"x","input_labels":["a"],"output_labels":["o"],"node_pairs":[[0]],"edge_pairs":[]}"#
        )
        .is_err());
        assert!(ProblemSpec::from_json_str(
            r#"{"version":1,"name":"x","input_labels":["a"],"output_labels":["o"],"node_pairs":[[0,70000]],"edge_pairs":[]}"#
        )
        .is_err());
        // Out-of-alphabet pair: caught at build time.
        let spec = ProblemSpec {
            version: PROBLEM_SPEC_VERSION,
            name: "bad".into(),
            input_labels: vec!["a".into()],
            output_labels: vec!["o".into()],
            node_pairs: vec![(0, 5)],
            edge_pairs: vec![],
        };
        assert!(spec.to_problem().is_err());
    }

    #[test]
    fn instance_and_labeling_roundtrip() {
        let inst = Instance::from_indices(Topology::Cycle, &[0, 2, 1]);
        let back = Instance::from_json_str(&inst.to_json_string()).unwrap();
        assert_eq!(back, inst);
        let path = Instance::from_indices(Topology::Path, &[1, 0]);
        assert_eq!(
            Instance::from_json_str(&path.to_json_string()).unwrap(),
            path
        );
        assert!(Instance::from_json_str(r#"{"topology":"star","inputs":[]}"#).is_err());

        let labeling = Labeling::from_indices(&[2, 0, 1]);
        assert_eq!(
            Labeling::from_json_str(&labeling.to_json_string()).unwrap(),
            labeling
        );
    }
}
