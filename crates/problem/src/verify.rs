//! Verifier output: structured reports of constraint violations.

use crate::{InLabel, OutLabel};
use std::fmt;

/// What kind of constraint a node violated.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ViolationKind {
    /// The `(input, output)` pair of the node is not in `C_in-out`.
    NodeConstraint {
        /// Input label of the node.
        input: InLabel,
        /// Output label of the node.
        output: OutLabel,
    },
    /// The `(pred output, output)` pair is not in `C_out-out`.
    EdgeConstraint {
        /// Output label of the predecessor.
        pred_output: OutLabel,
        /// Output label of the node.
        output: OutLabel,
    },
    /// A radius-`r` window around the node is not in the allowed window set.
    WindowConstraint {
        /// The checkability radius of the problem.
        radius: usize,
    },
    /// A label index fell outside the problem's alphabets.
    LabelOutOfRange,
    /// The instance and the labeling have different lengths.
    LengthMismatch {
        /// Number of nodes of the instance.
        instance_len: usize,
        /// Number of labels of the labeling.
        labeling_len: usize,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::NodeConstraint { input, output } => {
                write!(f, "node constraint violated: (in={input}, out={output})")
            }
            ViolationKind::EdgeConstraint {
                pred_output,
                output,
            } => write!(
                f,
                "edge constraint violated: (pred out={pred_output}, out={output})"
            ),
            ViolationKind::WindowConstraint { radius } => {
                write!(f, "radius-{radius} window not allowed")
            }
            ViolationKind::LabelOutOfRange => write!(f, "label index out of range"),
            ViolationKind::LengthMismatch {
                instance_len,
                labeling_len,
            } => write!(
                f,
                "labeling has {labeling_len} labels but instance has {instance_len} nodes"
            ),
        }
    }
}

/// One violated constraint at one node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Index of the node at which the violation was detected.
    pub node: usize,
    /// The violated constraint.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}: {}", self.node, self.kind)
    }
}

/// Outcome of verifying a labeling against a problem: the (possibly empty)
/// list of violations found.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConsistencyReport {
    violations: Vec<Violation>,
}

impl ConsistencyReport {
    /// Creates a report from a list of violations.
    pub fn new(violations: Vec<Violation>) -> Self {
        ConsistencyReport { violations }
    }

    /// `true` if no constraint was violated.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// All detected violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Indices of the nodes with at least one violation, deduplicated, sorted.
    pub fn violating_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.violations.iter().map(|v| v.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            write!(f, "valid")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let report = ConsistencyReport::new(vec![
            Violation {
                node: 3,
                kind: ViolationKind::LabelOutOfRange,
            },
            Violation {
                node: 1,
                kind: ViolationKind::NodeConstraint {
                    input: InLabel(0),
                    output: OutLabel(2),
                },
            },
            Violation {
                node: 3,
                kind: ViolationKind::EdgeConstraint {
                    pred_output: OutLabel(0),
                    output: OutLabel(0),
                },
            },
        ]);
        assert!(!report.is_valid());
        assert_eq!(report.violating_nodes(), vec![1, 3]);
        assert_eq!(report.violations().len(), 3);
        let shown = report.to_string();
        assert!(shown.contains("3 violation(s)"));
        assert!(shown.contains("node 1"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = ConsistencyReport::default();
        assert!(report.is_valid());
        assert_eq!(report.to_string(), "valid");
    }

    #[test]
    fn violation_kind_display() {
        assert!(ViolationKind::WindowConstraint { radius: 2 }
            .to_string()
            .contains("radius-2"));
        assert!(ViolationKind::LengthMismatch {
            instance_len: 5,
            labeling_len: 4
        }
        .to_string()
        .contains("5 nodes"));
    }
}
