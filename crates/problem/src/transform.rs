//! Complexity-preserving transformations between LCL problems.
//!
//! These are the generic building blocks used by the hardness constructions
//! (§3.5, §3.7 of the paper) and by the classifier:
//!
//! * [`lift_path_to_cycle`] — encodes "degree-1 endpoint" constraints as
//!   constraints adjacent to a special input label, so that path problems can
//!   be analysed on cycles (paper §4, opening remark);
//! * [`product_output_with_input`] — makes every output carry a copy of the
//!   node's input (the core move of Lemma 2);
//! * [`reverse_direction`], [`restrict_inputs`], [`relabel_outputs`] — small
//!   structural rewrites used in tests and ablations.

use crate::{Alphabet, InLabel, Instance, Labeling, NormalizedLcl, OutLabel, ProblemError, Result};

/// Name of the special input label that marks the "virtual endpoint" node
/// inserted by [`lift_path_to_cycle`].
pub const ENDPOINT_LABEL_NAME: &str = "$endpoint";

/// Name of the output label that the virtual endpoint node must produce.
pub const ENDPOINT_OUTPUT_NAME: &str = "$end";

/// Lifts a problem on directed *paths* to an equivalent problem on directed
/// *cycles*.
///
/// A path instance `p_0 … p_{n-1}` of the original problem corresponds to the
/// cycle instance `p_0 … p_{n-1} e` of the lifted problem, where `e` is a
/// single extra node carrying the special input label
/// [`ENDPOINT_LABEL_NAME`]. The node `e` must output the special label
/// [`ENDPOINT_OUTPUT_NAME`], real nodes must not, and the edge constraints
/// around `e` are unconstrained — exactly reflecting that the first node of a
/// path has no predecessor constraint and the last node no successor
/// constraint.
///
/// The lifted problem has the same deterministic LOCAL complexity class as the
/// original (the reduction is local and changes distances by at most one), so
/// classifying the lifted problem on cycles classifies the original on paths.
///
/// # Errors
///
/// Returns an error if the original problem already uses the reserved label
/// names.
pub fn lift_path_to_cycle(problem: &NormalizedLcl) -> Result<NormalizedLcl> {
    if problem
        .input_alphabet()
        .index_of(ENDPOINT_LABEL_NAME)
        .is_some()
    {
        return Err(ProblemError::unsupported(format!(
            "input alphabet already contains reserved label {ENDPOINT_LABEL_NAME}"
        )));
    }
    if problem
        .output_alphabet()
        .index_of(ENDPOINT_OUTPUT_NAME)
        .is_some()
    {
        return Err(ProblemError::unsupported(format!(
            "output alphabet already contains reserved label {ENDPOINT_OUTPUT_NAME}"
        )));
    }
    let alpha = problem.num_inputs();
    let beta = problem.num_outputs();

    let mut in_names: Vec<String> = problem.input_alphabet().names().to_vec();
    in_names.push(ENDPOINT_LABEL_NAME.to_string());
    let mut out_names: Vec<String> = problem.output_alphabet().names().to_vec();
    out_names.push(ENDPOINT_OUTPUT_NAME.to_string());

    let mut b = NormalizedLcl::builder(format!("{}@cycle", problem.name()));
    b.input_alphabet(Alphabet::new(in_names));
    b.output_alphabet(Alphabet::new(out_names));
    // Real nodes keep their node constraint and cannot output the end marker.
    for a in 0..alpha {
        for o in 0..beta {
            if problem.node_ok(InLabel::from_index(a), OutLabel::from_index(o)) {
                b.allow_node_idx(a as u16, o as u16);
            }
        }
    }
    // The endpoint node must output the end marker.
    b.allow_node_idx(alpha as u16, beta as u16);
    // Original edge constraints between real outputs.
    for p in 0..beta {
        for q in 0..beta {
            if problem.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q)) {
                b.allow_edge_idx(p as u16, q as u16);
            }
        }
    }
    // Around the endpoint everything is allowed: the end marker may follow any
    // real output (the last path node has no successor constraint) and any real
    // output may follow the end marker (the first path node has no predecessor
    // constraint). Two adjacent end markers are also fine (a path of length 0).
    for o in 0..=beta {
        b.allow_edge_idx(o as u16, beta as u16);
        b.allow_edge_idx(beta as u16, o as u16);
    }
    b.build()
}

/// Converts a path instance into the corresponding cycle instance of the
/// lifted problem: appends one node with the endpoint input label.
pub fn lift_path_instance(problem: &NormalizedLcl, instance: &Instance) -> Instance {
    let mut inputs: Vec<InLabel> = instance.inputs().to_vec();
    inputs.push(InLabel::from_index(problem.num_inputs()));
    Instance::cycle(inputs)
}

/// Projects a labeling of the lifted cycle instance back onto the path
/// (drops the virtual endpoint's output).
pub fn project_lifted_labeling(labeling: &Labeling) -> Labeling {
    let mut outputs = labeling.outputs().to_vec();
    outputs.pop();
    Labeling::new(outputs)
}

/// Produces an equivalent problem in which every output label carries a copy
/// of the node's input label (paper Lemma 2's output enrichment).
///
/// The new output alphabet is `Σ_in × Σ_out`; the node constraint requires the
/// carried input to equal the real input and the original node constraint to
/// hold; the edge constraint ignores the carried inputs.
pub fn product_output_with_input(problem: &NormalizedLcl) -> Result<NormalizedLcl> {
    let alpha = problem.num_inputs();
    let beta = problem.num_outputs();
    let mut out_names = Vec::with_capacity(alpha * beta);
    for a in 0..alpha {
        for o in 0..beta {
            out_names.push(format!(
                "({},{})",
                problem.input_alphabet().name(a),
                problem.output_alphabet().name(o)
            ));
        }
    }
    let mut b = NormalizedLcl::builder(format!("{}×in", problem.name()));
    b.input_alphabet(problem.input_alphabet().clone());
    b.output_labels(&out_names);
    for a in 0..alpha {
        for o in 0..beta {
            if problem.node_ok(InLabel::from_index(a), OutLabel::from_index(o)) {
                b.allow_node_idx(a as u16, (a * beta + o) as u16);
            }
        }
    }
    for a1 in 0..alpha {
        for o1 in 0..beta {
            for a2 in 0..alpha {
                for o2 in 0..beta {
                    if problem.edge_ok(OutLabel::from_index(o1), OutLabel::from_index(o2)) {
                        b.allow_edge_idx((a1 * beta + o1) as u16, (a2 * beta + o2) as u16);
                    }
                }
            }
        }
    }
    b.build()
}

/// Reverses the direction of the problem: the edge constraint is transposed,
/// so a valid labeling of the reversed problem on the reversed path is exactly
/// a valid labeling of the original problem on the original path.
pub fn reverse_direction(problem: &NormalizedLcl) -> Result<NormalizedLcl> {
    let beta = problem.num_outputs();
    let alpha = problem.num_inputs();
    let mut b = NormalizedLcl::builder(format!("{}ᴿ", problem.name()));
    b.input_alphabet(problem.input_alphabet().clone());
    b.output_alphabet(problem.output_alphabet().clone());
    for a in 0..alpha {
        for o in 0..beta {
            if problem.node_ok(InLabel::from_index(a), OutLabel::from_index(o)) {
                b.allow_node_idx(a as u16, o as u16);
            }
        }
    }
    for p in 0..beta {
        for q in 0..beta {
            if problem.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q)) {
                b.allow_edge_idx(q as u16, p as u16);
            }
        }
    }
    b.build()
}

/// Restricts the input alphabet to the given labels (in the given order).
///
/// # Errors
///
/// Returns an error if `keep` is empty or references an unknown label.
pub fn restrict_inputs(problem: &NormalizedLcl, keep: &[InLabel]) -> Result<NormalizedLcl> {
    if keep.is_empty() {
        return Err(ProblemError::EmptyInputAlphabet);
    }
    let alpha = problem.num_inputs();
    for &k in keep {
        if k.index() >= alpha {
            return Err(ProblemError::LabelOutOfRange {
                what: "restricted input",
                index: k.index(),
                alphabet_len: alpha,
            });
        }
    }
    let beta = problem.num_outputs();
    let names: Vec<String> = keep
        .iter()
        .map(|&k| problem.input_alphabet().name(k.index()).to_string())
        .collect();
    let mut b = NormalizedLcl::builder(format!("{}|in", problem.name()));
    b.input_labels(&names);
    b.output_alphabet(problem.output_alphabet().clone());
    for (new_a, &old_a) in keep.iter().enumerate() {
        for o in 0..beta {
            if problem.node_ok(old_a, OutLabel::from_index(o)) {
                b.allow_node_idx(new_a as u16, o as u16);
            }
        }
    }
    for p in 0..beta {
        for q in 0..beta {
            if problem.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q)) {
                b.allow_edge_idx(p as u16, q as u16);
            }
        }
    }
    b.build()
}

/// Renames/merges output labels according to `map`, where `map[o]` is the new
/// label index of old label `o`. Constraint pairs are transported through the
/// map (a merged label is allowed wherever *any* of its pre-images was).
///
/// Merging outputs can only make a problem easier; this helper is used by the
/// classifier's monotonicity property tests.
///
/// # Errors
///
/// Returns an error if `map` has the wrong length or `new_output_names` is
/// empty.
#[allow(clippy::needless_range_loop)] // dense index tables
pub fn relabel_outputs(
    problem: &NormalizedLcl,
    map: &[usize],
    new_output_names: &[&str],
) -> Result<NormalizedLcl> {
    if map.len() != problem.num_outputs() {
        return Err(ProblemError::mismatch(format!(
            "relabel map has {} entries but problem has {} outputs",
            map.len(),
            problem.num_outputs()
        )));
    }
    if new_output_names.is_empty() {
        return Err(ProblemError::EmptyOutputAlphabet);
    }
    for &m in map {
        if m >= new_output_names.len() {
            return Err(ProblemError::LabelOutOfRange {
                what: "relabel target",
                index: m,
                alphabet_len: new_output_names.len(),
            });
        }
    }
    let alpha = problem.num_inputs();
    let beta = problem.num_outputs();
    let mut b = NormalizedLcl::builder(format!("{}/relabel", problem.name()));
    b.input_alphabet(problem.input_alphabet().clone());
    b.output_labels(new_output_names);
    for a in 0..alpha {
        for o in 0..beta {
            if problem.node_ok(InLabel::from_index(a), OutLabel::from_index(o)) {
                b.allow_node_idx(a as u16, map[o] as u16);
            }
        }
    }
    for p in 0..beta {
        for q in 0..beta {
            if problem.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q)) {
                b.allow_edge_idx(map[p] as u16, map[q] as u16);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn copy_input() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b"]);
        b.output_labels(&["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn lift_path_problem_roundtrip() {
        let p = three_coloring();
        let lifted = lift_path_to_cycle(&p).unwrap();
        assert_eq!(lifted.num_inputs(), 2);
        assert_eq!(lifted.num_outputs(), 4);
        // A path coloring 1,2,1 maps to a cycle with the endpoint node appended.
        let path = Instance::from_indices(Topology::Path, &[0, 0, 0]);
        let cycle = lift_path_instance(&p, &path);
        assert_eq!(cycle.topology(), Topology::Cycle);
        assert_eq!(cycle.len(), 4);
        let cycle_labeling = Labeling::from_indices(&[0, 1, 0, 3]);
        assert!(lifted.is_valid(&cycle, &cycle_labeling));
        let projected = project_lifted_labeling(&cycle_labeling);
        assert!(p.is_valid(&path, &projected));
        // A real node outputting the end marker is rejected.
        let bad = Labeling::from_indices(&[3, 1, 0, 3]);
        assert!(!lifted.is_valid(&cycle, &bad));
        // The endpoint node must output the marker.
        let bad2 = Labeling::from_indices(&[0, 1, 0, 1]);
        assert!(!lifted.is_valid(&cycle, &bad2));
    }

    #[test]
    fn lift_rejects_reserved_names() {
        let mut b = NormalizedLcl::builder("reserved");
        b.input_labels(&[ENDPOINT_LABEL_NAME]);
        b.output_labels(&["o"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        let p = b.build().unwrap();
        assert!(lift_path_to_cycle(&p).is_err());
    }

    #[test]
    fn product_output_with_input_preserves_validity() {
        let p = copy_input();
        let q = product_output_with_input(&p).unwrap();
        assert_eq!(q.num_outputs(), 4);
        let inst = Instance::from_indices(Topology::Cycle, &[0, 1, 1, 0]);
        // Original solution: copy the input. Enriched: (input, copy).
        let orig = Labeling::from_indices(&[0, 1, 1, 0]);
        assert!(p.is_valid(&inst, &orig));
        let enriched = Labeling::from_indices(&[0, 3, 3, 0]); // (a,a)=0, (b,b)=3
        assert!(q.is_valid(&inst, &enriched));
        // Claiming the wrong input is rejected.
        let lying = Labeling::from_indices(&[2, 3, 3, 0]); // node 0 claims input b
        assert!(!q.is_valid(&inst, &lying));
    }

    #[test]
    fn reverse_direction_transposes_edges() {
        let mut b = NormalizedLcl::builder("ordered");
        b.input_labels(&["x"]);
        b.output_labels(&["lo", "hi"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1); // lo may be followed by hi only
        b.allow_edge_idx(0, 0);
        b.allow_edge_idx(1, 1);
        let p = b.build().unwrap();
        let r = reverse_direction(&p).unwrap();
        assert!(r.edge_ok(OutLabel(1), OutLabel(0)));
        assert!(!r.edge_ok(OutLabel(0), OutLabel(1)) || p.edge_ok(OutLabel(1), OutLabel(0)));
        // Reversing twice gives back the original tables.
        let rr = reverse_direction(&r).unwrap();
        for a in 0..2u16 {
            for o in 0..2u16 {
                assert_eq!(
                    rr.edge_ok(OutLabel(a), OutLabel(o)),
                    p.edge_ok(OutLabel(a), OutLabel(o))
                );
            }
        }
    }

    #[test]
    fn restrict_inputs_drops_labels() {
        let p = copy_input();
        let r = restrict_inputs(&p, &[InLabel(1)]).unwrap();
        assert_eq!(r.num_inputs(), 1);
        assert!(r.node_ok(InLabel(0), OutLabel(1)));
        assert!(!r.node_ok(InLabel(0), OutLabel(0)));
        assert!(restrict_inputs(&p, &[]).is_err());
        assert!(restrict_inputs(&p, &[InLabel(9)]).is_err());
    }

    #[test]
    fn relabel_outputs_merges() {
        let p = three_coloring();
        // Merge colors 2 and 3.
        let merged = relabel_outputs(&p, &[0, 1, 1], &["1", "2"]).unwrap();
        assert_eq!(merged.num_outputs(), 2);
        assert!(merged.edge_ok(OutLabel(0), OutLabel(1)));
        // The merged color keeps the (2,3) allowance, so (2',2') is now allowed.
        assert!(merged.edge_ok(OutLabel(1), OutLabel(1)));
        assert!(relabel_outputs(&p, &[0, 1], &["1", "2"]).is_err());
        assert!(relabel_outputs(&p, &[0, 1, 5], &["1", "2"]).is_err());
        assert!(relabel_outputs(&p, &[0, 0, 0], &[]).is_err());
    }
}
