//! The paper's normalized LCL form: node and edge constraints on directed
//! paths and cycles.
//!
//! A *normalized* LCL problem (paper §2, "β-normalized" without the binary
//! input restriction) is a tuple `(Σ_in, Σ_out, C_in-out, C_out-out)`:
//!
//! * each node `v` must satisfy `(Input(v), Output(v)) ∈ C_in-out`;
//! * each node `v` with a predecessor `u` must satisfy
//!   `(Output(u), Output(v)) ∈ C_out-out`.
//!
//! Every LCL of constant radius on directed paths/cycles can be brought into
//! this form at the cost of enlarging the output alphabet (see
//! [`crate::WindowLcl::to_normalized`] and Lemma 2/3 of the paper, implemented
//! in the `lcl-hardness` crate).

use crate::verify::{ConsistencyReport, Violation, ViolationKind};
use crate::{Alphabet, InLabel, Instance, Labeling, OutLabel, ProblemError, Result, Topology};
use std::fmt;

/// A normalized LCL problem on consistently oriented paths and cycles.
///
/// See the [crate documentation](crate) for the semantics. Instances of this
/// type are immutable; use [`NormalizedLcl::builder`] to construct them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NormalizedLcl {
    name: String,
    input: Alphabet,
    output: Alphabet,
    /// Row-major `|Σ_in| × |Σ_out|` table of allowed `(input, output)` pairs.
    node_allowed: Vec<bool>,
    /// Row-major `|Σ_out| × |Σ_out|` table of allowed `(pred output, output)` pairs.
    edge_allowed: Vec<bool>,
}

impl NormalizedLcl {
    /// Starts building a new problem with the given human-readable name.
    pub fn builder(name: impl Into<String>) -> NormalizedLclBuilder {
        NormalizedLclBuilder::new(name)
    }

    /// The problem's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input alphabet `Σ_in`.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.input
    }

    /// The output alphabet `Σ_out`.
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.output
    }

    /// `|Σ_in|`.
    pub fn num_inputs(&self) -> usize {
        self.input.len()
    }

    /// `|Σ_out|`.
    pub fn num_outputs(&self) -> usize {
        self.output.len()
    }

    /// Returns `true` if `(input, output) ∈ C_in-out`.
    ///
    /// # Panics
    ///
    /// Panics if either label is outside its alphabet.
    #[inline]
    pub fn node_ok(&self, input: InLabel, output: OutLabel) -> bool {
        assert!(input.index() < self.input.len(), "input label out of range");
        assert!(
            output.index() < self.output.len(),
            "output label out of range"
        );
        self.node_allowed[input.index() * self.output.len() + output.index()]
    }

    /// Returns `true` if `(pred, succ) ∈ C_out-out`, i.e. a node labeled `succ`
    /// may follow a node labeled `pred`.
    ///
    /// # Panics
    ///
    /// Panics if either label is outside the output alphabet.
    #[inline]
    pub fn edge_ok(&self, pred: OutLabel, succ: OutLabel) -> bool {
        assert!(pred.index() < self.output.len(), "pred label out of range");
        assert!(succ.index() < self.output.len(), "succ label out of range");
        self.edge_allowed[pred.index() * self.output.len() + succ.index()]
    }

    /// Iterates over the output labels allowed at a node with the given input.
    pub fn outputs_for_input(&self, input: InLabel) -> impl Iterator<Item = OutLabel> + '_ {
        let base = input.index() * self.output.len();
        (0..self.output.len())
            .filter(move |&o| self.node_allowed[base + o])
            .map(OutLabel::from_index)
    }

    /// Iterates over output labels `q` such that `(p, q) ∈ C_out-out`.
    pub fn successors_of(&self, p: OutLabel) -> impl Iterator<Item = OutLabel> + '_ {
        let base = p.index() * self.output.len();
        (0..self.output.len())
            .filter(move |&q| self.edge_allowed[base + q])
            .map(OutLabel::from_index)
    }

    /// Checks whether a node's labeling is *locally consistent*: its own
    /// `(input, output)` pair is allowed, and if it has a predecessor, the
    /// `(pred output, output)` pair is allowed too.
    ///
    /// This matches the paper's notion of the output labeling being "locally
    /// consistent at `v`" for normalized problems (checkability radius 1,
    /// predecessor side).
    pub fn locally_consistent_at(
        &self,
        instance: &Instance,
        labeling: &Labeling,
        node: usize,
    ) -> bool {
        if node >= instance.len() || labeling.len() != instance.len() {
            return false;
        }
        if !self.node_ok(instance.input(node), labeling.output(node)) {
            return false;
        }
        if let Some(pred) = instance.predecessor(node) {
            if !self.edge_ok(labeling.output(pred), labeling.output(node)) {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the labeling is globally valid for the instance.
    pub fn is_valid(&self, instance: &Instance, labeling: &Labeling) -> bool {
        self.check(instance, labeling).is_valid()
    }

    /// Verifies the labeling and reports every violated constraint.
    pub fn check(&self, instance: &Instance, labeling: &Labeling) -> ConsistencyReport {
        let mut violations = Vec::new();
        if instance.len() != labeling.len() {
            violations.push(Violation {
                node: 0,
                kind: ViolationKind::LengthMismatch {
                    instance_len: instance.len(),
                    labeling_len: labeling.len(),
                },
            });
            return ConsistencyReport::new(violations);
        }
        for i in 0..instance.len() {
            let input = instance.input(i);
            let output = labeling.output(i);
            if input.index() >= self.input.len() || output.index() >= self.output.len() {
                violations.push(Violation {
                    node: i,
                    kind: ViolationKind::LabelOutOfRange,
                });
                continue;
            }
            if !self.node_ok(input, output) {
                violations.push(Violation {
                    node: i,
                    kind: ViolationKind::NodeConstraint { input, output },
                });
            }
            if let Some(p) = instance.predecessor(i) {
                let pred_output = labeling.output(p);
                if pred_output.index() < self.output.len() && !self.edge_ok(pred_output, output) {
                    violations.push(Violation {
                        node: i,
                        kind: ViolationKind::EdgeConstraint {
                            pred_output,
                            output,
                        },
                    });
                }
            }
        }
        ConsistencyReport::new(violations)
    }

    /// Exhaustively searches for *some* valid labeling of the instance.
    ///
    /// This is the trivial `O(n)`-round "collect everything and solve locally"
    /// algorithm's sequential core, implemented as a depth-first search over
    /// output labels with edge-constraint pruning. It runs in time
    /// `O(n · |Σ_out|²)` for paths and `O(n · |Σ_out|³)` for cycles.
    ///
    /// Returns `None` when the instance admits no valid labeling.
    pub fn solve_brute_force(&self, instance: &Instance) -> Option<Labeling> {
        let n = instance.len();
        if n == 0 {
            return Some(Labeling::new(vec![]));
        }
        let beta = self.num_outputs();
        match instance.topology() {
            Topology::Path => self.solve_path_between(instance, 0, n - 1, None, None),
            Topology::Cycle => {
                // Fix the label of node 0 and thread the wrap-around constraint.
                for first in 0..beta {
                    let first = OutLabel::from_index(first);
                    if !self.node_ok(instance.input(0), first) {
                        continue;
                    }
                    if n == 1 {
                        if self.edge_ok(first, first) {
                            return Some(Labeling::new(vec![first]));
                        }
                        continue;
                    }
                    if let Some(rest) =
                        self.solve_path_between(instance, 1, n - 1, Some(first), Some(first))
                    {
                        let mut outputs = Vec::with_capacity(n);
                        outputs.push(first);
                        outputs.extend(rest.outputs().iter().copied());
                        return Some(Labeling::new(outputs));
                    }
                }
                None
            }
        }
    }

    /// Dynamic-programming search for a valid labeling of nodes `from..=to`
    /// of the instance, such that the first node's label is a valid successor
    /// of `pred` (if given) and the last node's label is a valid predecessor
    /// of `succ` (if given).
    ///
    /// Used both by [`Self::solve_brute_force`] and by the classifier's
    /// synthesized algorithms when they fill in the "middle parts" between
    /// anchored blocks.
    #[allow(clippy::needless_range_loop)] // DP over dense label indices
    pub fn solve_path_between(
        &self,
        instance: &Instance,
        from: usize,
        to: usize,
        pred: Option<OutLabel>,
        succ: Option<OutLabel>,
    ) -> Option<Labeling> {
        if from > to || to >= instance.len() {
            return None;
        }
        let len = to - from + 1;
        let beta = self.num_outputs();
        // reachable[i][q] = true if nodes from..from+i can be labeled with node
        // from+i getting label q, respecting the left boundary.
        let mut reachable = vec![vec![false; beta]; len];
        for q in 0..beta {
            let ql = OutLabel::from_index(q);
            if !self.node_ok(instance.input(from), ql) {
                continue;
            }
            if let Some(p) = pred {
                if !self.edge_ok(p, ql) {
                    continue;
                }
            }
            reachable[0][q] = true;
        }
        for i in 1..len {
            let node = from + i;
            for q in 0..beta {
                let ql = OutLabel::from_index(q);
                if !self.node_ok(instance.input(node), ql) {
                    continue;
                }
                reachable[i][q] = (0..beta)
                    .any(|p| reachable[i - 1][p] && self.edge_ok(OutLabel::from_index(p), ql));
            }
        }
        // Pick a final label compatible with the right boundary, then trace back.
        let mut last = None;
        for q in 0..beta {
            if !reachable[len - 1][q] {
                continue;
            }
            let ql = OutLabel::from_index(q);
            if let Some(s) = succ {
                if !self.edge_ok(ql, s) {
                    continue;
                }
            }
            last = Some(q);
            break;
        }
        let mut q = last?;
        let mut outputs = vec![OutLabel::from_index(q); len];
        for i in (0..len - 1).rev() {
            let next = OutLabel::from_index(q);
            let mut found = None;
            for p in 0..beta {
                if reachable[i][p] && self.edge_ok(OutLabel::from_index(p), next) {
                    found = Some(p);
                    break;
                }
            }
            q = found.expect("reachability table is consistent");
            outputs[i] = OutLabel::from_index(q);
        }
        Some(Labeling::new(outputs))
    }
}

impl fmt::Display for NormalizedLcl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (|Σ_in|={}, |Σ_out|={})",
            self.name,
            self.input.len(),
            self.output.len()
        )
    }
}

/// Builder for [`NormalizedLcl`].
///
/// # Example
///
/// ```
/// use lcl_problem::NormalizedLcl;
///
/// # fn main() -> Result<(), lcl_problem::ProblemError> {
/// let mut b = NormalizedLcl::builder("copy-input");
/// b.input_labels(&["a", "b"]);
/// b.output_labels(&["a", "b"]);
/// b.allow_node("a", "a");
/// b.allow_node("b", "b");
/// b.allow_all_edge_pairs();
/// let p = b.build()?;
/// assert_eq!(p.num_outputs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NormalizedLclBuilder {
    name: String,
    input: Alphabet,
    output: Alphabet,
    node_allowed: Vec<(usize, usize)>,
    edge_allowed: Vec<(usize, usize)>,
    allow_all_nodes: bool,
    allow_all_edges: bool,
}

impl NormalizedLclBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        NormalizedLclBuilder {
            name: name.into(),
            input: Alphabet::new(Vec::<String>::new()),
            output: Alphabet::new(Vec::<String>::new()),
            node_allowed: Vec::new(),
            edge_allowed: Vec::new(),
            allow_all_nodes: false,
            allow_all_edges: false,
        }
    }

    /// Sets the input alphabet from a list of names.
    pub fn input_labels<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        self.input = Alphabet::new(names.iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Sets the output alphabet from a list of names.
    pub fn output_labels<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        self.output = Alphabet::new(names.iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Sets the input alphabet directly.
    pub fn input_alphabet(&mut self, alphabet: Alphabet) -> &mut Self {
        self.input = alphabet;
        self
    }

    /// Sets the output alphabet directly.
    pub fn output_alphabet(&mut self, alphabet: Alphabet) -> &mut Self {
        self.output = alphabet;
        self
    }

    /// Allows the `(input, output)` pair, identified by label names.
    ///
    /// Unknown names are silently ignored at build time and reported as an
    /// error by [`Self::build`], which validates all recorded pairs.
    pub fn allow_node(&mut self, input: &str, output: &str) -> &mut Self {
        if let (Some(i), Some(o)) = (self.input.index_of(input), self.output.index_of(output)) {
            self.node_allowed.push((i, o));
        } else {
            // Record an impossible pair so that `build` reports the problem.
            self.node_allowed.push((usize::MAX, usize::MAX));
        }
        self
    }

    /// Allows the `(input, output)` pair, identified by label indices.
    pub fn allow_node_idx(&mut self, input: u16, output: u16) -> &mut Self {
        self.node_allowed.push((input as usize, output as usize));
        self
    }

    /// Allows the edge pair `(pred, succ)`, identified by label names.
    pub fn allow_edge(&mut self, pred: &str, succ: &str) -> &mut Self {
        if let (Some(p), Some(q)) = (self.output.index_of(pred), self.output.index_of(succ)) {
            self.edge_allowed.push((p, q));
        } else {
            self.edge_allowed.push((usize::MAX, usize::MAX));
        }
        self
    }

    /// Allows the edge pair `(pred, succ)`, identified by label indices.
    pub fn allow_edge_idx(&mut self, pred: u16, succ: u16) -> &mut Self {
        self.edge_allowed.push((pred as usize, succ as usize));
        self
    }

    /// Allows every `(input, output)` pair.
    pub fn allow_all_node_pairs(&mut self) -> &mut Self {
        self.allow_all_nodes = true;
        self
    }

    /// Allows every `(pred, succ)` pair.
    pub fn allow_all_edge_pairs(&mut self) -> &mut Self {
        self.allow_all_edges = true;
        self
    }

    /// Builds the problem.
    ///
    /// # Errors
    ///
    /// Returns an error if either alphabet is empty or any recorded pair
    /// references a label outside its alphabet (including pairs recorded with
    /// unknown names).
    pub fn build(&self) -> Result<NormalizedLcl> {
        if self.input.is_empty() {
            return Err(ProblemError::EmptyInputAlphabet);
        }
        if self.output.is_empty() {
            return Err(ProblemError::EmptyOutputAlphabet);
        }
        let alpha = self.input.len();
        let beta = self.output.len();
        let mut node_allowed = vec![self.allow_all_nodes; alpha * beta];
        let mut edge_allowed = vec![self.allow_all_edges; beta * beta];
        for &(i, o) in &self.node_allowed {
            if i >= alpha {
                return Err(ProblemError::LabelOutOfRange {
                    what: "node-constraint input",
                    index: i,
                    alphabet_len: alpha,
                });
            }
            if o >= beta {
                return Err(ProblemError::LabelOutOfRange {
                    what: "node-constraint output",
                    index: o,
                    alphabet_len: beta,
                });
            }
            node_allowed[i * beta + o] = true;
        }
        for &(p, q) in &self.edge_allowed {
            if p >= beta {
                return Err(ProblemError::LabelOutOfRange {
                    what: "edge-constraint predecessor",
                    index: p,
                    alphabet_len: beta,
                });
            }
            if q >= beta {
                return Err(ProblemError::LabelOutOfRange {
                    what: "edge-constraint successor",
                    index: q,
                    alphabet_len: beta,
                });
            }
            edge_allowed[p * beta + q] = true;
        }
        Ok(NormalizedLcl {
            name: self.name.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            node_allowed,
            edge_allowed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().expect("valid problem")
    }

    #[test]
    fn builder_produces_expected_tables() {
        let p = three_coloring();
        assert_eq!(p.num_inputs(), 1);
        assert_eq!(p.num_outputs(), 3);
        assert!(p.node_ok(InLabel(0), OutLabel(2)));
        assert!(p.edge_ok(OutLabel(0), OutLabel(1)));
        assert!(!p.edge_ok(OutLabel(1), OutLabel(1)));
        assert_eq!(p.outputs_for_input(InLabel(0)).count(), 3);
        assert_eq!(p.successors_of(OutLabel(0)).count(), 2);
        assert!(p.to_string().contains("3-coloring"));
    }

    #[test]
    fn builder_rejects_empty_alphabets() {
        let b = NormalizedLcl::builder("empty");
        assert_eq!(b.build(), Err(ProblemError::EmptyInputAlphabet));
        let mut b = NormalizedLcl::builder("empty-out");
        b.input_labels(&["a"]);
        assert_eq!(b.build(), Err(ProblemError::EmptyOutputAlphabet));
    }

    #[test]
    fn builder_rejects_unknown_names() {
        let mut b = NormalizedLcl::builder("bad");
        b.input_labels(&["a"]);
        b.output_labels(&["o"]);
        b.allow_node("nope", "o");
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_out_of_range_indices() {
        let mut b = NormalizedLcl::builder("bad");
        b.input_labels(&["a"]);
        b.output_labels(&["o"]);
        b.allow_edge_idx(0, 3);
        assert!(matches!(
            b.build(),
            Err(ProblemError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn coloring_validity_on_cycles() {
        let p = three_coloring();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let good = Labeling::from_indices(&[0, 1, 2, 0, 1, 2]);
        let bad = Labeling::from_indices(&[0, 1, 2, 0, 1, 0]); // wrap-around conflict
        assert!(p.is_valid(&inst, &good));
        assert!(!p.is_valid(&inst, &bad));
        let report = p.check(&inst, &bad);
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.violations()[0].node, 0);
    }

    #[test]
    fn coloring_validity_on_paths() {
        let p = three_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0; 4]);
        let good = Labeling::from_indices(&[0, 1, 0, 1]);
        assert!(p.is_valid(&inst, &good));
        assert!(p.locally_consistent_at(&inst, &good, 0));
        assert!(p.locally_consistent_at(&inst, &good, 3));
        let bad = Labeling::from_indices(&[0, 0, 1, 2]);
        assert!(!p.locally_consistent_at(&inst, &bad, 1));
        assert!(p.locally_consistent_at(&inst, &bad, 0));
    }

    #[test]
    fn length_mismatch_reported() {
        let p = three_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0, 0]);
        let labeling = Labeling::from_indices(&[0]);
        let report = p.check(&inst, &labeling);
        assert!(!report.is_valid());
        assert!(matches!(
            report.violations()[0].kind,
            ViolationKind::LengthMismatch { .. }
        ));
    }

    #[test]
    fn brute_force_solves_even_cycle_two_coloring() {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        let p = b.build().unwrap();
        let even = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let odd = Instance::from_indices(Topology::Cycle, &[0; 5]);
        let sol = p.solve_brute_force(&even).expect("even cycle 2-colorable");
        assert!(p.is_valid(&even, &sol));
        assert!(
            p.solve_brute_force(&odd).is_none(),
            "odd cycle not 2-colorable"
        );
    }

    #[test]
    fn brute_force_on_paths_and_empty() {
        let p = three_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0; 7]);
        let sol = p.solve_brute_force(&inst).unwrap();
        assert!(p.is_valid(&inst, &sol));
        let empty = Instance::path(vec![]);
        assert_eq!(p.solve_brute_force(&empty).unwrap().len(), 0);
        let single = Instance::from_indices(Topology::Cycle, &[0]);
        // single node cycle: needs edge_ok(x,x) which 3-coloring forbids
        assert!(p.solve_brute_force(&single).is_none());
    }

    #[test]
    fn solve_path_between_respects_boundaries() {
        let p = three_coloring();
        let inst = Instance::from_indices(Topology::Path, &[0; 5]);
        let sol = p
            .solve_path_between(&inst, 1, 3, Some(OutLabel(0)), Some(OutLabel(0)))
            .expect("middle can be filled");
        assert_eq!(sol.len(), 3);
        assert!(p.edge_ok(OutLabel(0), sol.output(0)));
        assert!(p.edge_ok(sol.output(2), OutLabel(0)));
        // Degenerate interval.
        assert!(p.solve_path_between(&inst, 3, 1, None, None).is_none());
    }
}
