//! # lcl-problem
//!
//! Representation of *locally checkable labeling* (LCL) problems on labeled
//! paths and cycles, as defined in Naor–Stockmeyer (1995) and used throughout
//! Balliu, Brandt, Chang, Olivetti, Rabie, Suomela, *"The distributed
//! complexity of locally checkable problems on paths is decidable"*
//! (PODC 2019).
//!
//! The crate provides:
//!
//! * [`Alphabet`], [`InLabel`], [`OutLabel`] — constant-size label sets;
//! * [`NormalizedLcl`] — the paper's normalized form (§2): a node constraint
//!   `C_in-out ⊆ Σ_in × Σ_out` and an edge constraint
//!   `C_out-out ⊆ Σ_out × Σ_out` checked against each node's predecessor;
//! * [`WindowLcl`] — general radius-`r` LCLs described by their set of allowed
//!   radius-`r` windows, together with a complexity-preserving conversion to
//!   the normalized form;
//! * [`Instance`] and [`Labeling`] — concrete labeled paths/cycles and output
//!   assignments, with exact verifiers for both problem forms;
//! * transformations (§3.7-style lifts, path↔cycle encodings, relabelings).
//!
//! # Example
//!
//! ```
//! use lcl_problem::{NormalizedLcl, Instance, Labeling};
//!
//! # fn main() -> Result<(), lcl_problem::ProblemError> {
//! // Proper 3-coloring of a directed cycle (inputs are irrelevant).
//! let mut b = NormalizedLcl::builder("3-coloring");
//! b.input_labels(&["x"]);
//! b.output_labels(&["1", "2", "3"]);
//! b.allow_all_node_pairs();
//! for p in 0..3u16 {
//!     for q in 0..3u16 {
//!         if p != q {
//!             b.allow_edge_idx(p, q);
//!         }
//!     }
//! }
//! let problem = b.build()?;
//! let instance = Instance::cycle(vec![0u16.into(); 6]);
//! let labeling = Labeling::from_indices(&[0, 1, 2, 0, 1, 2]);
//! assert!(problem.is_valid(&instance, &labeling));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod envelope;
mod error;
mod instance;
pub mod json;
mod normalized;
mod spec;
mod stream;
mod transform;
mod verify;
mod window;

pub use alphabet::{Alphabet, InLabel, OutLabel};
pub use envelope::{ErrorReply, RequestEnvelope, ResponseEnvelope, PROTOCOL_VERSION};
pub use error::ProblemError;
pub use instance::{Instance, Labeling, Topology};
pub use normalized::{NormalizedLcl, NormalizedLclBuilder};
pub use spec::{ProblemSpec, PROBLEM_SPEC_VERSION};
pub use stream::{StreamInputs, StreamInstanceSpec, MAX_STREAM_NODES};
pub use transform::{
    lift_path_instance, lift_path_to_cycle, product_output_with_input, project_lifted_labeling,
    relabel_outputs, restrict_inputs, reverse_direction, ENDPOINT_LABEL_NAME, ENDPOINT_OUTPUT_NAME,
};
pub use verify::{ConsistencyReport, Violation, ViolationKind};
pub use window::{Window, WindowLcl, WindowLclBuilder};

/// Convenience result alias used by all fallible functions in this crate.
pub type Result<T> = std::result::Result<T, ProblemError>;
