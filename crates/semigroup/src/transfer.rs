//! Transfer relations of words over the input alphabet.
//!
//! For a normalized problem and a word `w = a_1 … a_k ∈ Σ_in^+`, the *transfer
//! relation* `R(w)` relates `p` to `q` iff the directed path with inputs `w`
//! admits a valid labeling whose first output is `p` and last output is `q`.
//! Transfer relations compose through the edge constraint:
//! `R(uv) = R(u) · E · R(v)` where `E` is the edge relation — this is the
//! morphism property that makes the set of transfer relations a finite
//! semigroup (the algebraic counterpart of the paper's Lemma 12).

use crate::{OutRelation, Result, SemigroupError};
use lcl_problem::{InLabel, Instance, NormalizedLcl, OutLabel, Topology};

/// Pre-computed per-letter transfer relations and the edge relation of a
/// normalized problem.
///
/// # Example
///
/// ```
/// use lcl_problem::NormalizedLcl;
/// use lcl_semigroup::TransferSystem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 2-coloring of a directed cycle.
/// let mut b = NormalizedLcl::builder("2-coloring");
/// b.input_labels(&["x"]);
/// b.output_labels(&["1", "2"]);
/// b.allow_all_node_pairs();
/// b.allow_edge_idx(0, 1);
/// b.allow_edge_idx(1, 0);
/// let p = b.build()?;
/// let ts = TransferSystem::new(&p);
/// // Even cycles are solvable, odd cycles are not.
/// assert!(ts.cycle_solvable(&vec![0u16.into(); 6])?);
/// assert!(!ts.cycle_solvable(&vec![0u16.into(); 5])?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TransferSystem {
    problem: NormalizedLcl,
    edge: OutRelation,
    letters: Vec<OutRelation>,
}

impl TransferSystem {
    /// Builds the transfer system of a normalized problem.
    pub fn new(problem: &NormalizedLcl) -> Self {
        let beta = problem.num_outputs();
        let edge = OutRelation::from_fn(beta, |p, q| {
            problem.edge_ok(OutLabel::from_index(p), OutLabel::from_index(q))
        });
        let letters = (0..problem.num_inputs())
            .map(|a| {
                OutRelation::diagonal(beta, |o| {
                    problem.node_ok(InLabel::from_index(a), OutLabel::from_index(o))
                })
            })
            .collect();
        TransferSystem {
            problem: problem.clone(),
            edge,
            letters,
        }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &NormalizedLcl {
        &self.problem
    }

    /// `|Σ_out|`.
    pub fn dim(&self) -> usize {
        self.problem.num_outputs()
    }

    /// `|Σ_in|`.
    pub fn num_letters(&self) -> usize {
        self.letters.len()
    }

    /// The edge relation `E`.
    pub fn edge_relation(&self) -> &OutRelation {
        &self.edge
    }

    /// The single-letter relation `R(a)` (a diagonal relation marking the
    /// outputs allowed at a node with input `a`).
    ///
    /// # Errors
    ///
    /// Returns an error if `a` is outside the input alphabet.
    pub fn letter_relation(&self, a: InLabel) -> Result<&OutRelation> {
        self.letters
            .get(a.index())
            .ok_or(SemigroupError::UnknownInputLabel {
                index: a.index(),
                alphabet_len: self.letters.len(),
            })
    }

    /// Semigroup operation: `R(u) · E · R(v)`, i.e. the transfer relation of
    /// the concatenation `uv` given the relations of `u` and `v`.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn join(&self, left: &OutRelation, right: &OutRelation) -> Result<OutRelation> {
        left.compose(&self.edge)?.compose(right)
    }

    /// The transfer relation `R(w)` of a non-empty word.
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::EmptyWord`] for the empty word, or an error
    /// if the word contains labels outside the input alphabet.
    pub fn relation_of_word(&self, word: &[InLabel]) -> Result<OutRelation> {
        let (&first, rest) = word.split_first().ok_or(SemigroupError::EmptyWord)?;
        let mut acc = self.letter_relation(first)?.clone();
        for &a in rest {
            acc = self.join(&acc, self.letter_relation(a)?)?;
        }
        Ok(acc)
    }

    /// The transfer relation `R(w^k)` of the `k`-fold repetition of a word,
    /// computed from `R(w)` by fast exponentiation under [`Self::join`].
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::EmptyWord`] if `k == 0`.
    pub fn power(&self, relation: &OutRelation, k: usize) -> Result<OutRelation> {
        relation.power_with(k, |a, b| self.join(a, b))
    }

    /// The connection relation `C(w) = E · R(w) · E`:
    /// `C(w)[p][q]` holds iff a segment with inputs `w`, placed between a left
    /// neighbour already labeled `p` and a right neighbour already labeled
    /// `q`, can be labeled so that every segment node and the right neighbour
    /// satisfy their constraints towards the segment.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn connection(&self, relation: &OutRelation) -> Result<OutRelation> {
        self.edge.compose(relation)?.compose(&self.edge)
    }

    /// Shorthand: `C(w)` computed directly from the word.
    ///
    /// # Errors
    ///
    /// Same as [`Self::relation_of_word`].
    pub fn connection_of_word(&self, word: &[InLabel]) -> Result<OutRelation> {
        self.connection(&self.relation_of_word(word)?)
    }

    /// Whether the directed *path* with inputs `word` admits a valid labeling.
    ///
    /// # Errors
    ///
    /// Same as [`Self::relation_of_word`].
    pub fn path_solvable(&self, word: &[InLabel]) -> Result<bool> {
        Ok(!self.relation_of_word(word)?.is_zero())
    }

    /// Whether the directed *cycle* with inputs `word` (in cyclic order)
    /// admits a valid labeling: the boolean trace of `R(w) · E` is non-zero.
    ///
    /// # Errors
    ///
    /// Same as [`Self::relation_of_word`].
    pub fn cycle_solvable(&self, word: &[InLabel]) -> Result<bool> {
        let r = self.relation_of_word(word)?;
        Ok(r.compose(&self.edge)?.has_nonzero_diagonal())
    }

    /// Whether an instance (path or cycle) admits a valid labeling.
    ///
    /// # Errors
    ///
    /// Same as [`Self::relation_of_word`]; an empty instance is trivially
    /// solvable.
    pub fn instance_solvable(&self, instance: &Instance) -> Result<bool> {
        if instance.is_empty() {
            return Ok(true);
        }
        match instance.topology() {
            Topology::Path => self.path_solvable(instance.inputs()),
            Topology::Cycle => self.cycle_solvable(instance.inputs()),
        }
    }

    /// The *cycle relation* `R(w) · E`, whose boolean trace decides cycle
    /// solvability and whose powers describe repetitions of `w` around a
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn cycle_relation(&self, relation: &OutRelation) -> Result<OutRelation> {
        relation.compose(&self.edge)
    }

    /// Checks whether a *periodic* output labeling exists for the periodic
    /// input `w^∞`: a labeling `y = y_1 … y_{|w|}` with `node_ok(w_i, y_i)`,
    /// `edge_ok(y_i, y_{i+1})` and `edge_ok(y_{|w|}, y_1)`. Returns one such
    /// labeling if it exists.
    ///
    /// This is the building block of the paper's `G_{w,z}` condition in the
    /// Section 4.4 feasible function.
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::EmptyWord`] for the empty word or an error if
    /// the word contains unknown labels.
    #[allow(clippy::needless_range_loop)] // dense index tables
    pub fn periodic_labeling(&self, word: &[InLabel]) -> Result<Option<Vec<OutLabel>>> {
        if word.is_empty() {
            return Err(SemigroupError::EmptyWord);
        }
        for &a in word {
            if a.index() >= self.problem.num_inputs() {
                return Err(SemigroupError::UnknownInputLabel {
                    index: a.index(),
                    alphabet_len: self.problem.num_inputs(),
                });
            }
        }
        // Try every output for the first position and do a DFS-free DP along
        // the word, closing the cycle at the end.
        let beta = self.dim();
        for first in 0..beta {
            let first = OutLabel::from_index(first);
            if !self.problem.node_ok(word[0], first) {
                continue;
            }
            if word.len() == 1 {
                if self.problem.edge_ok(first, first) {
                    return Ok(Some(vec![first]));
                }
                continue;
            }
            // reachable[i] = set of labels possible at position i given first.
            let mut reachable: Vec<Vec<bool>> = vec![vec![false; beta]; word.len()];
            reachable[0][first.index()] = true;
            for i in 1..word.len() {
                for q in 0..beta {
                    let ql = OutLabel::from_index(q);
                    if !self.problem.node_ok(word[i], ql) {
                        continue;
                    }
                    reachable[i][q] = (0..beta).any(|p| {
                        reachable[i - 1][p] && self.problem.edge_ok(OutLabel::from_index(p), ql)
                    });
                }
            }
            // Close the cycle: last label must connect back to `first`.
            let mut last = None;
            for q in 0..beta {
                if reachable[word.len() - 1][q]
                    && self.problem.edge_ok(OutLabel::from_index(q), first)
                {
                    last = Some(q);
                    break;
                }
            }
            let Some(mut q) = last else { continue };
            let mut labels = vec![OutLabel::from_index(q); word.len()];
            for i in (0..word.len() - 1).rev() {
                let next = OutLabel::from_index(q);
                let p = (0..beta)
                    .find(|&p| {
                        reachable[i][p] && self.problem.edge_ok(OutLabel::from_index(p), next)
                    })
                    .expect("reachability table is consistent");
                q = p;
                labels[i] = OutLabel::from_index(q);
            }
            return Ok(Some(labels));
        }
        Ok(None)
    }
}

/// Converts a slice of raw `u16` indices into input labels. Convenience for
/// tests and examples.
pub fn word_from_indices(indices: &[u16]) -> Vec<InLabel> {
    indices.iter().copied().map(InLabel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::{Labeling, NormalizedLcl};

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    fn copy_input() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b"]);
        b.output_labels(&["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    #[test]
    fn relation_matches_brute_force() {
        // R(w)[p][q] must agree with the existence of a labeling found by the
        // brute-force solver with pinned endpoints.
        let p = two_coloring();
        let ts = TransferSystem::new(&p);
        for len in 1..6 {
            let word = vec![InLabel(0); len];
            let rel = ts.relation_of_word(&word).unwrap();
            let inst = Instance::path(word.clone());
            for a in 0..2u16 {
                for b in 0..2u16 {
                    // brute force: enumerate all labelings
                    let mut found = false;
                    for code in 0..(2u32.pow(len as u32)) {
                        let labels: Vec<u16> = (0..len).map(|i| ((code >> i) & 1) as u16).collect();
                        if labels[0] != a || labels[len - 1] != b {
                            continue;
                        }
                        let l = Labeling::from_indices(&labels);
                        if p.is_valid(&inst, &l) {
                            found = true;
                            break;
                        }
                    }
                    assert_eq!(
                        rel.get(a as usize, b as usize),
                        found,
                        "len={len}, a={a}, b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn morphism_property() {
        let p = copy_input();
        let ts = TransferSystem::new(&p);
        let u = word_from_indices(&[0, 1, 1]);
        let v = word_from_indices(&[1, 0]);
        let uv: Vec<InLabel> = u.iter().chain(v.iter()).copied().collect();
        let r_uv = ts.relation_of_word(&uv).unwrap();
        let joined = ts
            .join(
                &ts.relation_of_word(&u).unwrap(),
                &ts.relation_of_word(&v).unwrap(),
            )
            .unwrap();
        assert_eq!(r_uv, joined);
    }

    #[test]
    fn power_matches_repetition() {
        let p = two_coloring();
        let ts = TransferSystem::new(&p);
        let w = word_from_indices(&[0, 0, 0]);
        let r = ts.relation_of_word(&w).unwrap();
        let direct = ts.relation_of_word(&[InLabel(0); 12]).unwrap();
        let powered = ts.power(&r, 4).unwrap();
        assert_eq!(direct, powered);
        assert!(ts.power(&r, 0).is_err());
    }

    #[test]
    fn cycle_and_path_solvability() {
        let p = two_coloring();
        let ts = TransferSystem::new(&p);
        assert!(ts.path_solvable(&[InLabel(0); 5]).unwrap());
        assert!(ts.cycle_solvable(&[InLabel(0); 6]).unwrap());
        assert!(!ts.cycle_solvable(&[InLabel(0); 7]).unwrap());
        let even = Instance::from_indices(Topology::Cycle, &[0; 4]);
        let odd = Instance::from_indices(Topology::Cycle, &[0; 3]);
        assert!(ts.instance_solvable(&even).unwrap());
        assert!(!ts.instance_solvable(&odd).unwrap());
        assert!(ts.instance_solvable(&Instance::cycle(vec![])).unwrap());
    }

    #[test]
    fn empty_word_and_unknown_letters_error() {
        let ts = TransferSystem::new(&two_coloring());
        assert!(matches!(
            ts.relation_of_word(&[]),
            Err(SemigroupError::EmptyWord)
        ));
        assert!(matches!(
            ts.relation_of_word(&[InLabel(7)]),
            Err(SemigroupError::UnknownInputLabel { .. })
        ));
        assert!(ts.letter_relation(InLabel(0)).is_ok());
        assert!(ts.letter_relation(InLabel(9)).is_err());
    }

    #[test]
    fn connection_relation_semantics() {
        // For 2-coloring, a single-node segment between p and q is fillable
        // iff there is a colour different from both p and q... with 2 colours
        // that means p == q.
        let ts = TransferSystem::new(&two_coloring());
        let c = ts.connection_of_word(&[InLabel(0)]).unwrap();
        assert!(c.get(0, 0));
        assert!(c.get(1, 1));
        assert!(!c.get(0, 1));
        assert!(!c.get(1, 0));
    }

    #[test]
    fn periodic_labeling_exists_for_even_period() {
        let ts = TransferSystem::new(&two_coloring());
        let w2 = vec![InLabel(0); 2];
        let l = ts.periodic_labeling(&w2).unwrap().expect("period 2 works");
        assert_ne!(l[0], l[1]);
        let w1 = vec![InLabel(0); 1];
        assert!(ts.periodic_labeling(&w1).unwrap().is_none());
        let w3 = vec![InLabel(0); 3];
        assert!(ts.periodic_labeling(&w3).unwrap().is_none());
        assert!(ts.periodic_labeling(&[]).is_err());
        assert!(ts.periodic_labeling(&[InLabel(9)]).is_err());
    }

    #[test]
    fn periodic_labeling_single_node_self_loop() {
        let p = copy_input();
        let ts = TransferSystem::new(&p);
        let l = ts
            .periodic_labeling(&[InLabel(1)])
            .unwrap()
            .expect("copy-input allows constant labelings");
        assert_eq!(l, vec![OutLabel(1)]);
    }

    #[test]
    fn accessors() {
        let p = copy_input();
        let ts = TransferSystem::new(&p);
        assert_eq!(ts.dim(), 2);
        assert_eq!(ts.num_letters(), 2);
        assert_eq!(ts.problem().name(), "copy-input");
        assert_eq!(ts.edge_relation().count(), 4);
        let r = ts.relation_of_word(&word_from_indices(&[0])).unwrap();
        let cr = ts.cycle_relation(&r).unwrap();
        assert!(cr.has_nonzero_diagonal());
    }
}
