//! The tripartition `ξ(P) = (D1, D2, D3)` of a directed path (paper §4.1,
//! Figure 4).
//!
//! For a path `P = (u_1, …, u_k)` and checkability radius `r`:
//!
//! * `u_i ∈ D1` iff `i ∈ [1, r] ∪ [k − r + 1, k]`,
//! * `u_i ∈ D2` iff `i ∈ [r + 1, 2r] ∪ [k − 2r + 1, k − r]`,
//! * `u_i ∈ D3` otherwise.
//!
//! (Indices here are 0-based; the paper uses 1-based positions.)

/// The tripartition of a path of a given length, as index sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tripartition {
    /// Nodes within distance `r − 1` of either endpoint.
    pub d1: Vec<usize>,
    /// Nodes within distance `2r − 1` of either endpoint but not in `D1`.
    pub d2: Vec<usize>,
    /// Everything else.
    pub d3: Vec<usize>,
}

impl Tripartition {
    /// All nodes of `D1 ∪ D2`, sorted.
    pub fn boundary(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.d1.iter().chain(self.d2.iter()).copied().collect();
        v.sort_unstable();
        v
    }

    /// All nodes of `D2 ∪ D3`, sorted — the nodes at which the paper requires
    /// local consistency when extending a boundary labeling.
    pub fn interior_consistency_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.d2.iter().chain(self.d3.iter()).copied().collect();
        v.sort_unstable();
        v
    }
}

/// Computes the tripartition of a path with `len` nodes for checkability
/// radius `r ≥ 1`.
///
/// For short paths (`len < 4r`) the regions overlap in the paper's 1-based
/// index arithmetic; we resolve the overlap by assigning each node to the
/// innermost region it qualifies for, scanning `D1` before `D2` before `D3`,
/// which matches the paper's convention that such short paths are compared
/// verbatim anyway.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn tripartition(len: usize, r: usize) -> Tripartition {
    assert!(r >= 1, "checkability radius must be at least 1");
    let mut d1 = Vec::new();
    let mut d2 = Vec::new();
    let mut d3 = Vec::new();
    for i in 0..len {
        let pos = i + 1; // 1-based position as in the paper
        let from_end = len - i; // 1-based distance from the far end
        if pos <= r || from_end <= r {
            d1.push(i);
        } else if pos <= 2 * r || from_end <= 2 * r {
            d2.push(i);
        } else {
            d3.push(i);
        }
    }
    Tripartition { d1, d2, d3 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_shape_r3() {
        // Figure 4: with r = 3 a long path has 3 D1 nodes and 3 D2 nodes at
        // each end.
        let t = tripartition(20, 3);
        assert_eq!(t.d1, vec![0, 1, 2, 17, 18, 19]);
        assert_eq!(t.d2, vec![3, 4, 5, 14, 15, 16]);
        assert_eq!(t.d3.len(), 20 - 12);
        assert_eq!(t.boundary().len(), 12);
        assert_eq!(t.interior_consistency_nodes().len(), 14);
    }

    #[test]
    fn radius_one_partition() {
        let t = tripartition(6, 1);
        assert_eq!(t.d1, vec![0, 5]);
        assert_eq!(t.d2, vec![1, 4]);
        assert_eq!(t.d3, vec![2, 3]);
    }

    #[test]
    fn short_paths_have_no_d3() {
        let t = tripartition(4, 1);
        assert_eq!(t.d1, vec![0, 3]);
        assert_eq!(t.d2, vec![1, 2]);
        assert!(t.d3.is_empty());
        let t = tripartition(3, 1);
        assert_eq!(t.d1, vec![0, 2]);
        assert_eq!(t.d2, vec![1]);
        let t = tripartition(2, 1);
        assert_eq!(t.d1, vec![0, 1]);
        assert!(t.d2.is_empty());
        let t = tripartition(1, 2);
        assert_eq!(t.d1, vec![0]);
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        for len in 1..30 {
            for r in 1..4 {
                let t = tripartition(len, r);
                let mut all: Vec<usize> =
                    t.d1.iter()
                        .chain(t.d2.iter())
                        .chain(t.d3.iter())
                        .copied()
                        .collect();
                all.sort_unstable();
                let expected: Vec<usize> = (0..len).collect();
                assert_eq!(all, expected, "len={len}, r={r}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_radius_panics() {
        let _ = tripartition(5, 0);
    }
}
