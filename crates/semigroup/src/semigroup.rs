//! Enumeration of the finite semigroup of transfer relations ("types").
//!
//! The paper's Lemma 12 shows that the type of a path can be computed by a
//! finite automaton whose states are the types themselves, and Lemma 13 bounds
//! their number. [`TypeSemigroup`] materializes that automaton for a concrete
//! problem: it enumerates every transfer relation reachable from the
//! single-letter relations under the join `R(u)·E·R(v)`, stores a shortest
//! witness word for each, the full letter-transition table, and the exact
//! eventual periodicity of *which types are realized by words of length n*.
//!
//! The derived constants replace the paper's astronomically large worst-case
//! pumping constant `ℓ_pump` with the tight value for the problem at hand (see
//! DESIGN.md §2, substitution 1).

use crate::{OutRelation, Result, SemigroupError, TransferSystem};
use lcl_problem::InLabel;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Identifier of a type (an index into the [`TypeSemigroup`]'s element
/// table, resolvable with [`TypeSemigroup::relation`]).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub usize);

impl TypeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Eventual periodicity of the map `n ↦ { types realized by length-n words }`.
///
/// Because the set of types of length-`(n+1)` words is a function of the set
/// of types of length-`n` words, the sequence of sets is eventually periodic;
/// `sets[i]` is the set for length `i + 1`, recorded up to one full period
/// past the pre-period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LengthProfile {
    /// Smallest `t ≥ 1` such that the set for length `t` re-occurs later.
    pub preperiod: usize,
    /// Period `p ≥ 1` of the repetition.
    pub period: usize,
    /// `sets[i]` = types realized by some word of length `i + 1`, for
    /// `i + 1 ≤ preperiod + period`.
    pub sets: Vec<BTreeSet<TypeId>>,
}

impl LengthProfile {
    /// The set of types realized by words of length `n ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn types_of_length(&self, n: usize) -> &BTreeSet<TypeId> {
        assert!(n >= 1, "words have length at least 1");
        if n <= self.sets.len() {
            &self.sets[n - 1]
        } else {
            // For n beyond the recorded prefix, S_n = S_{preperiod + ((n - preperiod) mod period)}.
            let idx = (self.preperiod - 1) + (n - self.preperiod) % self.period;
            &self.sets[idx]
        }
    }

    /// All types realized by words of length `≥ n` (union over one full
    /// period starting at `max(n, preperiod)` plus the finitely many lengths
    /// in between).
    pub fn types_of_length_at_least(&self, n: usize) -> BTreeSet<TypeId> {
        let n = n.max(1);
        let mut out = BTreeSet::new();
        let horizon = self.preperiod + self.period;
        for len in n..=horizon.max(n + self.period) {
            out.extend(self.types_of_length(len).iter().copied());
        }
        out
    }
}

/// The finite semigroup of transfer relations of a problem.
#[derive(Clone, Debug)]
pub struct TypeSemigroup {
    system: TransferSystem,
    elements: Vec<OutRelation>,
    index: HashMap<OutRelation, TypeId>,
    witness: Vec<Vec<InLabel>>,
    /// `letter_step[t][a]` = type of `witness(t) · a`.
    letter_step: Vec<Vec<TypeId>>,
    profile: LengthProfile,
}

impl TypeSemigroup {
    /// Enumerates the semigroup of the given transfer system.
    ///
    /// `budget` caps the number of elements; the enumeration aborts with
    /// [`SemigroupError::TooManyTypes`] if exceeded. The number of elements is
    /// bounded by `2^{|Σ_out|²}` in the worst case, but is small for typical
    /// problems.
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::TooManyTypes`] if the budget is exceeded.
    pub fn compute(system: &TransferSystem, budget: usize) -> Result<Self> {
        let mut elements: Vec<OutRelation> = Vec::new();
        let mut index: HashMap<OutRelation, TypeId> = HashMap::new();
        let mut witness: Vec<Vec<InLabel>> = Vec::new();
        let mut queue: VecDeque<TypeId> = VecDeque::new();

        let intern = |rel: OutRelation,
                      wit: Vec<InLabel>,
                      elements: &mut Vec<OutRelation>,
                      index: &mut HashMap<OutRelation, TypeId>,
                      witness: &mut Vec<Vec<InLabel>>,
                      queue: &mut VecDeque<TypeId>|
         -> Result<TypeId> {
            if let Some(&id) = index.get(&rel) {
                return Ok(id);
            }
            if elements.len() >= budget {
                return Err(SemigroupError::TooManyTypes { budget });
            }
            let id = TypeId(elements.len());
            index.insert(rel.clone(), id);
            elements.push(rel);
            witness.push(wit);
            queue.push_back(id);
            Ok(id)
        };

        for a in 0..system.num_letters() {
            let a = InLabel::from_index(a);
            let rel = system.letter_relation(a)?.clone();
            intern(
                rel,
                vec![a],
                &mut elements,
                &mut index,
                &mut witness,
                &mut queue,
            )?;
        }

        // BFS by appending single letters: every element of the generated
        // semigroup is reachable this way, and BFS order yields shortest
        // witnesses.
        let mut letter_step: Vec<Vec<TypeId>> = Vec::new();
        while let Some(t) = queue.pop_front() {
            let rel = elements[t.index()].clone();
            let wit = witness[t.index()].clone();
            let mut steps = Vec::with_capacity(system.num_letters());
            for a in 0..system.num_letters() {
                let a = InLabel::from_index(a);
                let next = system.join(&rel, system.letter_relation(a)?)?;
                let mut next_wit = wit.clone();
                next_wit.push(a);
                let id = intern(
                    next,
                    next_wit,
                    &mut elements,
                    &mut index,
                    &mut witness,
                    &mut queue,
                )?;
                steps.push(id);
            }
            // letter_step rows are pushed in BFS (= TypeId) order.
            if letter_step.len() == t.index() {
                letter_step.push(steps);
            } else {
                // Should not happen: BFS pops in id order.
                while letter_step.len() < t.index() {
                    letter_step.push(Vec::new());
                }
                letter_step.push(steps);
            }
        }

        let profile = Self::compute_profile(system, &index, &letter_step)?;

        Ok(TypeSemigroup {
            system: system.clone(),
            elements,
            index,
            witness,
            letter_step,
            profile,
        })
    }

    #[allow(clippy::needless_range_loop)] // dense index tables
    fn compute_profile(
        system: &TransferSystem,
        index: &HashMap<OutRelation, TypeId>,
        letter_step: &[Vec<TypeId>],
    ) -> Result<LengthProfile> {
        // S_1 = types of single letters; S_{n+1} = { step(t, a) }.
        let mut s: BTreeSet<TypeId> = BTreeSet::new();
        for a in 0..system.num_letters() {
            let rel = system.letter_relation(InLabel::from_index(a))?;
            s.insert(*index.get(rel).expect("letters are interned"));
        }
        let mut seen: HashMap<BTreeSet<TypeId>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<TypeId>> = Vec::new();
        let mut current = s;
        loop {
            if let Some(&first) = seen.get(&current) {
                let preperiod = first + 1;
                let period = sets.len() - first;
                return Ok(LengthProfile {
                    preperiod,
                    period,
                    sets,
                });
            }
            seen.insert(current.clone(), sets.len());
            sets.push(current.clone());
            let mut next = BTreeSet::new();
            for &t in &current {
                for a in 0..system.num_letters() {
                    next.insert(letter_step[t.index()][a]);
                }
            }
            current = next;
        }
    }

    /// The transfer system the semigroup was computed from.
    pub fn system(&self) -> &TransferSystem {
        &self.system
    }

    /// Number of distinct types.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the semigroup has no elements (empty input alphabet —
    /// cannot happen for well-formed problems).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The transfer relation of a type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn relation(&self, id: TypeId) -> &OutRelation {
        &self.elements[id.index()]
    }

    /// A shortest word whose transfer relation is the given type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn witness(&self, id: TypeId) -> &[InLabel] {
        &self.witness[id.index()]
    }

    /// All types, in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.elements.len()).map(TypeId)
    }

    /// Looks up the type of a relation, if it belongs to the semigroup.
    pub fn id_of(&self, relation: &OutRelation) -> Option<TypeId> {
        self.index.get(relation).copied()
    }

    /// The type of a non-empty word.
    ///
    /// # Errors
    ///
    /// Returns an error for empty words or unknown labels.
    pub fn type_of_word(&self, word: &[InLabel]) -> Result<TypeId> {
        let (&first, rest) = word.split_first().ok_or(SemigroupError::EmptyWord)?;
        let rel = self.system.letter_relation(first)?;
        let mut t = *self.index.get(rel).expect("letters are interned");
        for &a in rest {
            if a.index() >= self.system.num_letters() {
                return Err(SemigroupError::UnknownInputLabel {
                    index: a.index(),
                    alphabet_len: self.system.num_letters(),
                });
            }
            t = self.letter_step[t.index()][a.index()];
        }
        Ok(t)
    }

    /// The type obtained by appending letter `a` to a word of type `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `a` is out of range.
    pub fn step(&self, t: TypeId, a: InLabel) -> TypeId {
        self.letter_step[t.index()][a.index()]
    }

    /// The type of the concatenation of a word of type `left` and a word of
    /// type `right`.
    ///
    /// # Errors
    ///
    /// Returns an error if the joined relation leaves the semigroup (cannot
    /// happen for types produced by this semigroup).
    pub fn join(&self, left: TypeId, right: TypeId) -> Result<TypeId> {
        let rel = self
            .system
            .join(self.relation(left), self.relation(right))?;
        Ok(*self
            .index
            .get(&rel)
            .expect("semigroup is closed under join"))
    }

    /// The type of `w^k` for a word of type `t` (`k ≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::EmptyWord`] if `k == 0`.
    pub fn power(&self, t: TypeId, k: usize) -> Result<TypeId> {
        if k == 0 {
            return Err(SemigroupError::EmptyWord);
        }
        let rel = self.system.power(self.relation(t), k)?;
        Ok(*self
            .index
            .get(&rel)
            .expect("semigroup is closed under powers"))
    }

    /// The eventual periodicity of type-reachability by word length.
    pub fn length_profile(&self) -> &LengthProfile {
        &self.profile
    }

    /// The crate's stand-in for the paper's pumping constant `ℓ_pump`: a
    /// length such that every word of at least this length contains a pumpable
    /// factor (Lemma 14 with the tight constant `|types| + 1`), and beyond
    /// which the set of reachable types is governed by
    /// [`Self::length_profile`].
    pub fn pump_threshold(&self) -> usize {
        (self.len() + 1).max(self.profile.preperiod + self.profile.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::word_from_indices;
    use lcl_problem::NormalizedLcl;

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    fn copy_pred() -> NormalizedLcl {
        // Output must equal the predecessor's output; all outputs allowed at
        // every node. The transfer semigroup collapses quickly.
        let mut b = NormalizedLcl::builder("agree");
        b.input_labels(&["x"]);
        b.output_labels(&["a", "b"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 0);
        b.allow_edge_idx(1, 1);
        b.build().unwrap()
    }

    #[test]
    fn two_coloring_semigroup_has_two_elements() {
        // Words of even/odd length have different transfer relations
        // (anti-diagonal vs diagonal patterns), and that's all.
        let ts = TransferSystem::new(&two_coloring());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        assert_eq!(sg.len(), 2);
        let odd = sg.type_of_word(&word_from_indices(&[0])).unwrap();
        let even = sg.type_of_word(&word_from_indices(&[0, 0])).unwrap();
        assert_ne!(odd, even);
        assert_eq!(
            sg.type_of_word(&word_from_indices(&[0, 0, 0])).unwrap(),
            odd
        );
        assert_eq!(sg.join(odd, odd).unwrap(), even);
        assert_eq!(sg.power(odd, 4).unwrap(), even);
        assert_eq!(sg.power(odd, 5).unwrap(), odd);
        assert!(sg.power(odd, 0).is_err());
    }

    #[test]
    fn witnesses_have_matching_types() {
        let ts = TransferSystem::new(&two_coloring());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        for t in sg.iter() {
            let w = sg.witness(t);
            assert_eq!(sg.type_of_word(w).unwrap(), t);
            assert_eq!(
                ts.relation_of_word(w).unwrap(),
                *sg.relation(t),
                "witness relation matches stored relation"
            );
        }
        assert!(!sg.is_empty());
    }

    #[test]
    fn type_of_word_agrees_with_relation_of_word() {
        let ts = TransferSystem::new(&copy_pred());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        let words: Vec<Vec<u16>> = vec![vec![0], vec![0, 0], vec![0, 0, 0, 0, 0]];
        for w in words {
            let word = word_from_indices(&w);
            let t = sg.type_of_word(&word).unwrap();
            let rel = ts.relation_of_word(&word).unwrap();
            assert_eq!(sg.id_of(&rel), Some(t));
        }
    }

    #[test]
    fn length_profile_two_coloring_alternates() {
        let ts = TransferSystem::new(&two_coloring());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        let profile = sg.length_profile();
        assert_eq!(profile.period, 2);
        let odd = sg.type_of_word(&word_from_indices(&[0])).unwrap();
        let even = sg.type_of_word(&word_from_indices(&[0, 0])).unwrap();
        assert_eq!(
            profile.types_of_length(1),
            &[odd].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            profile.types_of_length(2),
            &[even].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            profile.types_of_length(101),
            &[odd].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            profile.types_of_length(100),
            &[even].into_iter().collect::<BTreeSet<_>>()
        );
        let all = profile.types_of_length_at_least(5);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn budget_exceeded() {
        let ts = TransferSystem::new(&two_coloring());
        assert!(matches!(
            TypeSemigroup::compute(&ts, 1),
            Err(SemigroupError::TooManyTypes { budget: 1 })
        ));
    }

    #[test]
    fn step_matches_concatenation() {
        let p = copy_pred();
        let ts = TransferSystem::new(&p);
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        let t = sg.type_of_word(&word_from_indices(&[0, 0])).unwrap();
        let stepped = sg.step(t, InLabel(0));
        let direct = sg.type_of_word(&word_from_indices(&[0, 0, 0])).unwrap();
        assert_eq!(stepped, direct);
    }

    #[test]
    fn errors_on_bad_words() {
        let ts = TransferSystem::new(&two_coloring());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        assert!(sg.type_of_word(&[]).is_err());
        assert!(sg.type_of_word(&[InLabel(3)]).is_err());
        assert!(sg.type_of_word(&[InLabel(0), InLabel(3)]).is_err());
    }

    #[test]
    fn pump_threshold_reasonable() {
        let ts = TransferSystem::new(&two_coloring());
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        assert!(sg.pump_threshold() >= sg.len());
        assert!(sg.pump_threshold() <= 10);
    }

    #[test]
    fn bigger_alphabet_semigroup() {
        // Input-dependent problem: output must equal input of the node
        // ("copy input"); with two inputs the semigroup distinguishes last
        // letters but stays small.
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b"]);
        b.output_labels(&["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        let p = b.build().unwrap();
        let ts = TransferSystem::new(&p);
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        assert!(sg.len() >= 2);
        assert!(sg.len() <= 16);
        // Types depend only on (first letter, last letter) here.
        let t1 = sg.type_of_word(&word_from_indices(&[0, 1, 0])).unwrap();
        let t2 = sg.type_of_word(&word_from_indices(&[0, 0, 0])).unwrap();
        assert_eq!(t1, t2);
        let t3 = sg.type_of_word(&word_from_indices(&[0, 0, 1])).unwrap();
        assert_ne!(t1, t3);
    }
}
