//! # lcl-semigroup
//!
//! The transfer-relation engine behind the decidability results of
//! *"The distributed complexity of locally checkable problems on paths is
//! decidable"* (PODC 2019), Section 4.1.
//!
//! The paper classifies input-labeled directed paths into finitely many
//! equivalence classes ("types", relation `⋆∼`) such that replacing a subpath
//! by another subpath of the same type preserves the extendability of partial
//! output labelings (Lemmas 10–11). Types are computed by a finite automaton
//! (Lemma 12), there are finitely many of them (Lemma 13) and they can be
//! pumped (Lemmas 14–15).
//!
//! This crate implements that machinery in two ways:
//!
//! * **Transfer relations** ([`OutRelation`], [`TransferSystem`]): for a word
//!   `w ∈ Σ_in^+`, the boolean relation `R(w)[p][q] = "some valid labeling of
//!   `w` starts with `p` and ends with `q`"`. `R` is a morphism into a finite
//!   semigroup (`R(uv) = R(u)·E·R(v)`), which is exactly the information the
//!   paper's types carry for radius-1 (normalized) problems. The
//!   [`TypeSemigroup`] enumerates all reachable relations, their composition
//!   table, shortest witnesses, idempotent powers and the exact
//!   pre-period/period of length-reachability — these play the role of the
//!   paper's pumping constant `ℓ_pump`, with the tight value for the given
//!   problem instead of the worst-case bound of Lemma 13.
//! * **Paper-literal types** ([`naive`]): the brute-force extendability-table
//!   definition of `⋆∼` over the tripartition `ξ(P) = (D1, D2, D3)` of
//!   Figure 4. This engine is exponentially slower and exists to cross-check
//!   the transfer-relation engine (see the `ablation_type_engines` bench and
//!   the equivalence tests).
//!
//! The crate also provides the string-combinatorics utilities the Section 4.3
//! partition needs: primitivity, periods, run decompositions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod naive;
mod periodicity;
mod pumping;
mod relation;
mod semigroup;
mod transfer;
mod tripartition;

pub use error::SemigroupError;
pub use periodicity::{
    is_primitive, maximal_run_at, primitive_root, primitive_strings_up_to, smallest_period,
};
pub use pumping::{pump_decomposition, pump_exponent, PumpDecomposition, PumpExponent};
pub use relation::OutRelation;
pub use semigroup::{LengthProfile, TypeId, TypeSemigroup};
pub use transfer::{word_from_indices, TransferSystem};
pub use tripartition::{tripartition, Tripartition};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SemigroupError>;
