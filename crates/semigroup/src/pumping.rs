//! Pumping lemmas for path types (paper Lemmas 14 and 15), instantiated on
//! the computed type semigroup.
//!
//! * [`pump_decomposition`] is Lemma 14: every sufficiently long word `w`
//!   factors as `x ◦ y ◦ z` with `|xy|` bounded, `|y| ≥ 1`, and
//!   `Type(x ◦ y^i ◦ z) = Type(w)` for every `i ≥ 0`.
//! * [`pump_exponent`] is Lemma 15: for every word `w` there are `a, b` with
//!   `a + b` bounded such that `Type(w^{a·i + b})` is the same for every
//!   `i ≥ 0`.
//!
//! Both bounds use the tight constant derived from the actual semigroup
//! (number of elements + 1) instead of the paper's worst-case `ℓ_pump`; the
//! statements and proofs are otherwise identical.

use crate::{Result, SemigroupError, TypeId, TypeSemigroup};
use lcl_problem::InLabel;

/// Result of Lemma 14: a factorization `w = x ◦ y ◦ z` that can be pumped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PumpDecomposition {
    /// Length of the prefix `x` (may be zero).
    pub x_len: usize,
    /// Length of the pumpable factor `y` (at least one).
    pub y_len: usize,
    /// The type of the whole word, preserved by pumping.
    pub word_type: TypeId,
}

impl PumpDecomposition {
    /// Builds the pumped word `x ◦ y^i ◦ z` for a given exponent `i ≥ 0`.
    pub fn pumped(&self, word: &[InLabel], i: usize) -> Vec<InLabel> {
        let x = &word[..self.x_len];
        let y = &word[self.x_len..self.x_len + self.y_len];
        let z = &word[self.x_len + self.y_len..];
        let mut out = Vec::with_capacity(x.len() + y.len() * i + z.len());
        out.extend_from_slice(x);
        for _ in 0..i {
            out.extend_from_slice(y);
        }
        out.extend_from_slice(z);
        out
    }
}

/// Result of Lemma 15: exponents `a·i + b` along which the type of `w^k`
/// stabilizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PumpExponent {
    /// The period `a ≥ 1` of the exponent progression.
    pub a: usize,
    /// The offset `b ≥ 1`.
    pub b: usize,
    /// The common type of `w^{a·i + b}` for every `i ≥ 0`.
    pub power_type: TypeId,
}

/// Lemma 14. Finds a pumpable factorization of `word`.
///
/// Requires `|word| ≥ semigroup.pump_threshold()`; by the pigeonhole principle
/// two prefixes then share a type, and the factor between them can be pumped
/// (including pumped away, `i = 0`) without changing the type of the word.
///
/// # Errors
///
/// Returns [`SemigroupError::EmptyWord`] if the word is shorter than the
/// pump threshold, or an error if the word contains unknown labels.
pub fn pump_decomposition(
    semigroup: &TypeSemigroup,
    word: &[InLabel],
) -> Result<PumpDecomposition> {
    if word.len() < semigroup.pump_threshold() {
        return Err(SemigroupError::EmptyWord);
    }
    // Types of prefixes word[..k] for k = 1 ..= min(len, |types| + 1).
    let horizon = (semigroup.len() + 1).min(word.len());
    let mut seen: Vec<(TypeId, usize)> = Vec::with_capacity(horizon);
    let mut t = semigroup.type_of_word(&word[..1])?;
    seen.push((t, 1));
    let mut found: Option<(usize, usize)> = None;
    for k in 2..=horizon {
        t = semigroup.step(t, word[k - 1]);
        if let Some(&(_, prev)) = seen.iter().find(|&&(pt, _)| pt == t) {
            found = Some((prev, k));
            break;
        }
        seen.push((t, k));
    }
    // Also consider the empty prefix sharing a "type" with a later prefix is
    // not expressible (types of non-empty words only); the pigeonhole over
    // horizon = |types| + 1 non-empty prefixes always succeeds.
    let (i, j) = found.ok_or(SemigroupError::EmptyWord)?;
    let word_type = semigroup.type_of_word(word)?;
    Ok(PumpDecomposition {
        x_len: i,
        y_len: j - i,
        word_type,
    })
}

/// Lemma 15. Finds exponents along which the type of `w^k` is invariant.
///
/// # Errors
///
/// Returns an error if the word is empty or contains unknown labels.
pub fn pump_exponent(semigroup: &TypeSemigroup, word: &[InLabel]) -> Result<PumpExponent> {
    let base = semigroup.type_of_word(word)?;
    // The sequence base, base², base³, … (under join) over a finite semigroup
    // is eventually periodic; find the first repetition.
    let mut seen: Vec<TypeId> = vec![base];
    let mut current = base;
    loop {
        current = semigroup.join(current, base)?;
        if let Some(pos) = seen.iter().position(|&t| t == current) {
            // seen[k] is the type of w^{k+1}; the repetition is
            // w^{seen.len() + 1} == w^{pos + 1}.
            let b = pos + 1;
            let a = seen.len() + 1 - b;
            return Ok(PumpExponent {
                a,
                b,
                power_type: current,
            });
        }
        seen.push(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransferSystem, TypeSemigroup};
    use lcl_problem::NormalizedLcl;

    fn two_coloring() -> TypeSemigroup {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        let p = b.build().unwrap();
        TypeSemigroup::compute(&TransferSystem::new(&p), 1000).unwrap()
    }

    fn copy_input() -> TypeSemigroup {
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b"]);
        b.output_labels(&["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        let p = b.build().unwrap();
        TypeSemigroup::compute(&TransferSystem::new(&p), 1000).unwrap()
    }

    fn w(indices: &[u16]) -> Vec<InLabel> {
        indices.iter().copied().map(InLabel).collect()
    }

    #[test]
    fn decomposition_preserves_type() {
        let sg = two_coloring();
        let word = w(&[0; 9]);
        let d = pump_decomposition(&sg, &word).unwrap();
        assert!(d.y_len >= 1);
        assert!(d.x_len + d.y_len <= sg.pump_threshold());
        for i in 0..5 {
            let pumped = d.pumped(&word, i);
            assert_eq!(
                sg.type_of_word(&pumped).unwrap(),
                d.word_type,
                "pumping with i={i} must preserve the type"
            );
        }
        // i = 1 reproduces the original word.
        assert_eq!(d.pumped(&word, 1), word);
    }

    #[test]
    fn decomposition_preserves_type_multi_letter() {
        let sg = copy_input();
        let word = w(&[0, 1, 1, 0, 1, 0, 0, 1, 1, 0]);
        let d = pump_decomposition(&sg, &word).unwrap();
        let original_type = sg.type_of_word(&word).unwrap();
        assert_eq!(d.word_type, original_type);
        for i in [0usize, 2, 3, 7] {
            let pumped = d.pumped(&word, i);
            if pumped.is_empty() {
                continue;
            }
            assert_eq!(sg.type_of_word(&pumped).unwrap(), original_type);
        }
    }

    #[test]
    fn decomposition_rejects_short_words() {
        let sg = two_coloring();
        assert!(pump_decomposition(&sg, &w(&[0])).is_err());
    }

    #[test]
    fn exponent_pumping_two_coloring() {
        let sg = two_coloring();
        let word = w(&[0]);
        let e = pump_exponent(&sg, &word).unwrap();
        // For 2-coloring the powers of the single-letter type alternate, so
        // the period is 2.
        assert_eq!(e.a, 2);
        for i in 0..4 {
            let k = e.a * i + e.b;
            let long = w(&vec![0; k]);
            assert_eq!(sg.type_of_word(&long).unwrap(), e.power_type);
        }
        assert!(e.a + e.b <= sg.pump_threshold() + 1);
    }

    #[test]
    fn exponent_pumping_word_pattern() {
        let sg = copy_input();
        let word = w(&[0, 1]);
        let e = pump_exponent(&sg, &word).unwrap();
        for i in 0..4 {
            let k = e.a * i + e.b;
            let mut long = Vec::new();
            for _ in 0..k {
                long.extend_from_slice(&word);
            }
            assert_eq!(sg.type_of_word(&long).unwrap(), e.power_type);
        }
    }

    #[test]
    fn exponent_pumping_rejects_empty() {
        let sg = two_coloring();
        assert!(pump_exponent(&sg, &[]).is_err());
    }
}
