//! String combinatorics used by the `(ℓ_width, ℓ_count, ℓ_pattern)`-partition
//! (paper §4.3): primitivity, smallest periods, maximal runs and enumeration
//! of primitive patterns.

use lcl_problem::InLabel;

/// The smallest period of a non-empty word: the least `p ≥ 1` such that
/// `w[i] = w[i + p]` for all valid `i`.
///
/// # Panics
///
/// Panics if the word is empty.
pub fn smallest_period(word: &[InLabel]) -> usize {
    assert!(!word.is_empty(), "period of the empty word is undefined");
    // Failure function of KMP gives the smallest period as n - border.
    let n = word.len();
    let mut fail = vec![0usize; n];
    let mut k = 0usize;
    for i in 1..n {
        while k > 0 && word[i] != word[k] {
            k = fail[k - 1];
        }
        if word[i] == word[k] {
            k += 1;
        }
        fail[i] = k;
    }
    n - fail[n - 1]
}

/// Returns `true` if the word is *primitive*: it is not a repetition `x^i`
/// with `i ≥ 2` of a shorter word (paper §4.3).
///
/// # Panics
///
/// Panics if the word is empty.
pub fn is_primitive(word: &[InLabel]) -> bool {
    let p = smallest_period(word);
    // A word is a proper power iff its smallest period divides its length and
    // is strictly shorter.
    p == word.len() || !word.len().is_multiple_of(p)
}

/// The primitive root of a word: the shortest `x` such that `w = x^k`.
///
/// # Panics
///
/// Panics if the word is empty.
pub fn primitive_root(word: &[InLabel]) -> &[InLabel] {
    let p = smallest_period(word);
    if word.len().is_multiple_of(p) {
        &word[..p]
    } else {
        word
    }
}

/// Enumerates all primitive words over an alphabet of `alpha` letters with
/// length between 1 and `max_len`, in length-then-lexicographic order.
///
/// The count grows as `alpha^max_len`; intended for the small constants used
/// by the classifier.
pub fn primitive_strings_up_to(alpha: usize, max_len: usize) -> Vec<Vec<InLabel>> {
    let mut out = Vec::new();
    for len in 1..=max_len {
        let total = alpha.checked_pow(len as u32).unwrap_or(0);
        for code in 0..total {
            let mut c = code;
            let mut word = Vec::with_capacity(len);
            for _ in 0..len {
                word.push(InLabel::from_index(c % alpha));
                c /= alpha;
            }
            word.reverse();
            if is_primitive(&word) {
                out.push(word);
            }
        }
    }
    out
}

/// Length of the maximal run of the pattern `pattern` starting at position
/// `start` of `word`: the largest `x` such that `word[start .. start + x·|pattern|]`
/// equals `pattern^x`.
///
/// # Panics
///
/// Panics if `pattern` is empty or `start > word.len()`.
pub fn maximal_run_at(word: &[InLabel], start: usize, pattern: &[InLabel]) -> usize {
    assert!(!pattern.is_empty(), "pattern must be non-empty");
    assert!(start <= word.len(), "start out of range");
    let mut x = 0;
    let mut pos = start;
    while pos + pattern.len() <= word.len() && word[pos..pos + pattern.len()] == *pattern {
        x += 1;
        pos += pattern.len();
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(indices: &[u16]) -> Vec<InLabel> {
        indices.iter().copied().map(InLabel).collect()
    }

    #[test]
    fn periods() {
        assert_eq!(smallest_period(&w(&[0])), 1);
        assert_eq!(smallest_period(&w(&[0, 0, 0])), 1);
        assert_eq!(smallest_period(&w(&[0, 1, 0, 1])), 2);
        assert_eq!(smallest_period(&w(&[0, 1, 0])), 2);
        assert_eq!(smallest_period(&w(&[0, 1, 2])), 3);
        assert_eq!(smallest_period(&w(&[0, 1, 1, 0])), 3);
    }

    #[test]
    fn primitivity() {
        assert!(is_primitive(&w(&[0])));
        assert!(is_primitive(&w(&[0, 1])));
        assert!(!is_primitive(&w(&[0, 0])));
        assert!(!is_primitive(&w(&[0, 1, 0, 1])));
        assert!(is_primitive(&w(&[0, 1, 0])));
        assert!(is_primitive(&w(&[0, 0, 1])));
    }

    #[test]
    fn primitive_roots() {
        assert_eq!(primitive_root(&w(&[0, 1, 0, 1])), &w(&[0, 1])[..]);
        assert_eq!(primitive_root(&w(&[0, 1, 0])), &w(&[0, 1, 0])[..]);
        assert_eq!(primitive_root(&w(&[2, 2, 2])), &w(&[2])[..]);
    }

    #[test]
    fn enumerate_primitive_strings() {
        let ps = primitive_strings_up_to(2, 3);
        // length 1: [0], [1]; length 2: [0,1], [1,0]; length 3: all except 000, 111.
        assert_eq!(ps.iter().filter(|p| p.len() == 1).count(), 2);
        assert_eq!(ps.iter().filter(|p| p.len() == 2).count(), 2);
        assert_eq!(ps.iter().filter(|p| p.len() == 3).count(), 6);
        assert!(ps.iter().all(|p| is_primitive(p)));
        // Unary alphabet: only the single-letter word is primitive.
        let unary = primitive_strings_up_to(1, 4);
        assert_eq!(unary, vec![w(&[0])]);
    }

    #[test]
    fn runs() {
        let word = w(&[0, 1, 0, 1, 0, 1, 1]);
        assert_eq!(maximal_run_at(&word, 0, &w(&[0, 1])), 3);
        assert_eq!(maximal_run_at(&word, 1, &w(&[1, 0])), 2);
        assert_eq!(maximal_run_at(&word, 0, &w(&[1])), 0);
        assert_eq!(maximal_run_at(&word, 6, &w(&[1])), 1);
        assert_eq!(maximal_run_at(&word, 7, &w(&[1])), 0);
    }

    #[test]
    #[should_panic]
    fn empty_word_period_panics() {
        let _ = smallest_period(&[]);
    }
}
