//! Paper-literal path types: the `⋆∼` equivalence of Section 4.1, computed by
//! brute force.
//!
//! The type of a directed path `P` (of length ≥ 4r) consists of
//!
//! 1. the input labels of the boundary region `D1 ∪ D2` of the tripartition
//!    `ξ(P)`, and
//! 2. for every assignment `𝓛` of output labels to `D1 ∪ D2`, a bit saying
//!    whether `𝓛` is *extendible* w.r.t. `P`: some complete labeling of `P`
//!    agrees with `𝓛` on `D1 ∪ D2` and is locally consistent at all nodes of
//!    `D2 ∪ D3`.
//!
//! Paths shorter than `4r` are their own type (compared verbatim).
//!
//! This module exists as the ground truth against which the transfer-relation
//! engine is validated (`ablation_type_engines` bench, cross-check tests); the
//! classifier itself uses [`crate::TypeSemigroup`].

use lcl_problem::{InLabel, NormalizedLcl, OutLabel};

use crate::tripartition;

/// A paper-literal path type for a normalized (radius-1) problem.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NaiveType {
    /// Paths shorter than `4r` are compared verbatim.
    Short(Vec<InLabel>),
    /// Longer paths: boundary inputs plus the extendability table.
    Long {
        /// Input labels of `D1 ∪ D2`, in index order (first `2r` then last `2r`).
        boundary_inputs: Vec<InLabel>,
        /// One bit per assignment of outputs to `D1 ∪ D2`, in mixed-radix
        /// order (first boundary node varies slowest).
        extendible: Vec<bool>,
    },
}

/// Computes boundary-labeling extendability by brute force for radius-1
/// problems.
#[derive(Clone, Debug)]
pub struct NaiveTypeEngine {
    problem: NormalizedLcl,
}

impl NaiveTypeEngine {
    /// Creates an engine for a normalized problem (checkability radius 1).
    pub fn new(problem: &NormalizedLcl) -> Self {
        NaiveTypeEngine {
            problem: problem.clone(),
        }
    }

    /// The number of boundary nodes for radius 1: `min(4, len)`.
    fn boundary_nodes(len: usize) -> Vec<usize> {
        tripartition(len, 1).boundary()
    }

    /// Decides whether the boundary assignment `assignment` (outputs for the
    /// nodes returned by the tripartition boundary, in sorted node order) is
    /// extendible w.r.t. the word `word`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match the boundary size.
    #[allow(clippy::needless_range_loop)] // dense index tables
    pub fn extendible(&self, word: &[InLabel], assignment: &[OutLabel]) -> bool {
        let len = word.len();
        let boundary = Self::boundary_nodes(len);
        assert_eq!(
            boundary.len(),
            assignment.len(),
            "assignment must cover exactly the boundary"
        );
        let beta = self.problem.num_outputs();
        // fixed[i] = Some(label) for boundary nodes.
        let mut fixed: Vec<Option<OutLabel>> = vec![None; len];
        for (&node, &label) in boundary.iter().zip(assignment.iter()) {
            fixed[node] = Some(label);
        }
        // Consistency must hold at all nodes of D2 ∪ D3, i.e. all nodes except
        // the first and last (r = 1).
        let consistency_required = |i: usize| i > 0 && i + 1 < len;
        // DP over positions, tracking the label of the previous node.
        // states[q] = reachable with previous node labeled q.
        let mut states: Vec<bool> = vec![false; beta];
        for (i, &input) in word.iter().enumerate() {
            let candidates: Vec<OutLabel> = match fixed[i] {
                Some(l) => vec![l],
                None => (0..beta).map(OutLabel::from_index).collect(),
            };
            let mut next = vec![false; beta];
            if i == 0 {
                for &c in &candidates {
                    if consistency_required(0) && !self.problem.node_ok(input, c) {
                        continue;
                    }
                    next[c.index()] = true;
                }
            } else {
                for &c in &candidates {
                    if consistency_required(i) && !self.problem.node_ok(input, c) {
                        continue;
                    }
                    for p in 0..beta {
                        if !states[p] {
                            continue;
                        }
                        if consistency_required(i)
                            && !self.problem.edge_ok(OutLabel::from_index(p), c)
                        {
                            continue;
                        }
                        next[c.index()] = true;
                        break;
                    }
                }
            }
            states = next;
            if states.iter().all(|&b| !b) {
                return false;
            }
        }
        states.iter().any(|&b| b)
    }

    /// Computes the paper-literal type of a word.
    pub fn type_of(&self, word: &[InLabel]) -> NaiveType {
        let len = word.len();
        if len < 4 {
            return NaiveType::Short(word.to_vec());
        }
        let boundary = Self::boundary_nodes(len);
        let boundary_inputs: Vec<InLabel> = boundary.iter().map(|&i| word[i]).collect();
        let beta = self.problem.num_outputs();
        let total = beta.pow(boundary.len() as u32);
        let mut extendible = Vec::with_capacity(total);
        for code in 0..total {
            let mut c = code;
            let mut assignment = vec![OutLabel(0); boundary.len()];
            for slot in (0..boundary.len()).rev() {
                assignment[slot] = OutLabel::from_index(c % beta);
                c /= beta;
            }
            extendible.push(self.extendible(word, &assignment));
        }
        NaiveType::Long {
            boundary_inputs,
            extendible,
        }
    }

    /// Returns `true` if the two words have the same paper-literal type.
    pub fn same_type(&self, left: &[InLabel], right: &[InLabel]) -> bool {
        self.type_of(left) == self.type_of(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::{Instance, Labeling};

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    fn w(indices: &[u16]) -> Vec<InLabel> {
        indices.iter().copied().map(InLabel).collect()
    }

    /// Exhaustive reference implementation of extendability: enumerate every
    /// complete labeling and check the paper's condition directly.
    #[allow(clippy::needless_range_loop)] // dense index tables
    fn extendible_reference(
        problem: &NormalizedLcl,
        word: &[InLabel],
        assignment: &[OutLabel],
    ) -> bool {
        let len = word.len();
        let boundary = tripartition(len, 1).boundary();
        let beta = problem.num_outputs();
        let total = beta.pow(len as u32);
        let instance = Instance::path(word.to_vec());
        'outer: for code in 0..total {
            let mut c = code;
            let mut outputs = vec![0u16; len];
            for slot in 0..len {
                outputs[slot] = (c % beta) as u16;
                c /= beta;
            }
            let labeling = Labeling::from_indices(&outputs);
            for (&node, &label) in boundary.iter().zip(assignment.iter()) {
                if labeling.output(node) != label {
                    continue 'outer;
                }
            }
            // locally consistent at all nodes of D2 ∪ D3 = all except ends.
            let ok = (1..len.saturating_sub(1))
                .all(|i| problem.locally_consistent_at(&instance, &labeling, i));
            if ok {
                return true;
            }
        }
        false
    }

    #[test]
    fn extendibility_matches_reference() {
        let p = two_coloring();
        let engine = NaiveTypeEngine::new(&p);
        for len in 4..8usize {
            let word = w(&vec![0; len]);
            let boundary_size = 4;
            for code in 0..(2u32.pow(boundary_size)) {
                let assignment: Vec<OutLabel> = (0..boundary_size)
                    .map(|i| OutLabel(((code >> i) & 1) as u16))
                    .collect();
                assert_eq!(
                    engine.extendible(&word, &assignment),
                    extendible_reference(&p, &word, &assignment),
                    "len={len} code={code:b}"
                );
            }
        }
    }

    #[test]
    fn types_distinguish_parity_for_two_coloring() {
        let p = two_coloring();
        let engine = NaiveTypeEngine::new(&p);
        assert!(engine.same_type(&w(&[0; 6]), &w(&[0; 8])));
        assert!(engine.same_type(&w(&[0; 5]), &w(&[0; 7])));
        assert!(!engine.same_type(&w(&[0; 6]), &w(&[0; 7])));
    }

    #[test]
    fn short_words_compared_verbatim() {
        let p = two_coloring();
        let engine = NaiveTypeEngine::new(&p);
        assert_eq!(engine.type_of(&w(&[0])), NaiveType::Short(w(&[0])));
        assert!(engine.same_type(&w(&[0, 0]), &w(&[0, 0])));
        assert!(!engine.same_type(&w(&[0, 0]), &w(&[0, 0, 0])));
    }

    #[test]
    fn semigroup_equality_refines_naive_types_on_equal_boundaries() {
        // If two words have the same transfer relation, the same length parity
        // of boundaries and identical boundary inputs, their paper-literal
        // types coincide. (The converse need not hold.)
        use crate::{TransferSystem, TypeSemigroup};
        let p = two_coloring();
        let engine = NaiveTypeEngine::new(&p);
        let ts = TransferSystem::new(&p);
        let sg = TypeSemigroup::compute(&ts, 1000).unwrap();
        let words = [w(&[0; 4]), w(&[0; 5]), w(&[0; 6]), w(&[0; 7]), w(&[0; 8])];
        for a in &words {
            for b in &words {
                if sg.type_of_word(a).unwrap() == sg.type_of_word(b).unwrap() {
                    assert!(
                        engine.same_type(a, b),
                        "transfer-equal words must be paper-type-equal: {} vs {}",
                        a.len(),
                        b.len()
                    );
                }
            }
        }
    }
}
