//! Error type for the semigroup crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the transfer-relation and type-semigroup machinery.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SemigroupError {
    /// Two relations of different dimensions were combined.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A word contained a label outside the problem's input alphabet.
    UnknownInputLabel {
        /// The offending label index.
        index: usize,
        /// Size of the input alphabet.
        alphabet_len: usize,
    },
    /// An operation required a non-empty word but received an empty one.
    EmptyWord,
    /// The semigroup enumeration exceeded the configured element budget.
    TooManyTypes {
        /// The configured budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for SemigroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemigroupError::DimensionMismatch { left, right } => {
                write!(f, "relation dimensions differ: {left} vs {right}")
            }
            SemigroupError::UnknownInputLabel {
                index,
                alphabet_len,
            } => write!(
                f,
                "input label {index} is outside the alphabet of size {alphabet_len}"
            ),
            SemigroupError::EmptyWord => write!(f, "operation requires a non-empty word"),
            SemigroupError::TooManyTypes { budget } => {
                write!(f, "type semigroup exceeded the budget of {budget} elements")
            }
        }
    }
}

impl StdError for SemigroupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SemigroupError::DimensionMismatch { left: 2, right: 3 }
            .to_string()
            .contains("2 vs 3"));
        assert!(SemigroupError::EmptyWord.to_string().contains("non-empty"));
        assert!(SemigroupError::TooManyTypes { budget: 10 }
            .to_string()
            .contains("10"));
        assert!(SemigroupError::UnknownInputLabel {
            index: 5,
            alphabet_len: 2
        }
        .to_string()
        .contains("size 2"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<SemigroupError>();
    }
}
