//! Boolean relations over the output alphabet, stored as bitset matrices.

use crate::{Result, SemigroupError};
use lcl_problem::OutLabel;
use std::fmt;

/// A boolean relation over `Σ_out × Σ_out`, stored row-major as bitsets.
///
/// `OutRelation` is the carrier type of the transfer-relation semigroup: for
/// a word `w`, `R(w)[p][q]` says whether some valid labeling of the directed
/// path with inputs `w` starts with output `p` and ends with output `q`.
///
/// The composition used throughout the crate is *boolean matrix
/// multiplication* ([`OutRelation::compose`]); the semigroup operation on
/// transfer relations interleaves the problem's edge relation between the two
/// operands and lives in [`crate::TransferSystem::join`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OutRelation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl OutRelation {
    /// Creates the empty (all-false) relation on `n` labels.
    pub fn empty(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        OutRelation {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Creates the identity relation on `n` labels.
    pub fn identity(n: usize) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            r.set(i, i, true);
        }
        r
    }

    /// Creates the full (all-true) relation on `n` labels.
    pub fn full(n: usize) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            for j in 0..n {
                r.set(i, j, true);
            }
        }
        r
    }

    /// Creates a relation from a predicate.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            for j in 0..n {
                if f(i, j) {
                    r.set(i, j, true);
                }
            }
        }
        r
    }

    /// Creates a diagonal relation: `(i, i)` is related iff `diag(i)`.
    pub fn diagonal(n: usize, mut diag: impl FnMut(usize) -> bool) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            if diag(i) {
                r.set(i, i, true);
            }
        }
        r
    }

    /// Dimension of the relation (the size of `Σ_out`).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns whether `(i, j)` is in the relation.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "relation index out of range");
        let word = self.bits[i * self.words_per_row + j / 64];
        (word >> (j % 64)) & 1 == 1
    }

    /// Sets whether `(i, j)` is in the relation.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.n && j < self.n, "relation index out of range");
        let idx = i * self.words_per_row + j / 64;
        if value {
            self.bits[idx] |= 1 << (j % 64);
        } else {
            self.bits[idx] &= !(1 << (j % 64));
        }
    }

    /// Returns whether `(p, q)` is in the relation, using typed labels.
    pub fn contains(&self, p: OutLabel, q: OutLabel) -> bool {
        self.get(p.index(), q.index())
    }

    /// Boolean matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns an error if the dimensions differ.
    pub fn compose(&self, other: &OutRelation) -> Result<OutRelation> {
        if self.n != other.n {
            return Err(SemigroupError::DimensionMismatch {
                left: self.n,
                right: other.n,
            });
        }
        let mut result = OutRelation::empty(self.n);
        for i in 0..self.n {
            let out_row =
                &mut result.bits[i * result.words_per_row..(i + 1) * result.words_per_row];
            for k in 0..self.n {
                if self.get(i, k) {
                    let other_row =
                        &other.bits[k * other.words_per_row..(k + 1) * other.words_per_row];
                    for (o, w) in out_row.iter_mut().zip(other_row.iter()) {
                        *o |= *w;
                    }
                }
            }
        }
        Ok(result)
    }

    /// Element-wise union.
    ///
    /// # Errors
    ///
    /// Returns an error if the dimensions differ.
    pub fn union(&self, other: &OutRelation) -> Result<OutRelation> {
        if self.n != other.n {
            return Err(SemigroupError::DimensionMismatch {
                left: self.n,
                right: other.n,
            });
        }
        let mut result = self.clone();
        for (a, b) in result.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        Ok(result)
    }

    /// Element-wise intersection.
    ///
    /// # Errors
    ///
    /// Returns an error if the dimensions differ.
    pub fn intersection(&self, other: &OutRelation) -> Result<OutRelation> {
        if self.n != other.n {
            return Err(SemigroupError::DimensionMismatch {
                left: self.n,
                right: other.n,
            });
        }
        let mut result = self.clone();
        for (a, b) in result.bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        Ok(result)
    }

    /// The transposed relation.
    pub fn transpose(&self) -> OutRelation {
        OutRelation::from_fn(self.n, |i, j| self.get(j, i))
    }

    /// `true` if no pair is related.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// `true` if some diagonal entry `(i, i)` is related (boolean trace).
    ///
    /// On a cycle with input word `x`, the problem has a valid labeling iff
    /// the boolean trace of `R(x)·E` is non-zero (see
    /// [`crate::TransferSystem::cycle_solvable`]).
    pub fn has_nonzero_diagonal(&self) -> bool {
        (0..self.n).any(|i| self.get(i, i))
    }

    /// Indices `q` such that `(p, q)` is related, for a fixed `p`.
    pub fn row(&self, p: usize) -> Vec<usize> {
        (0..self.n).filter(|&q| self.get(p, q)).collect()
    }

    /// Indices `p` such that `(p, q)` is related, for a fixed `q`.
    pub fn column(&self, q: usize) -> Vec<usize> {
        (0..self.n).filter(|&p| self.get(p, q)).collect()
    }

    /// Number of related pairs.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `k`-fold iterated composition of `self` under the associative operation
    /// `op` (for `k ≥ 1`). The operation does not need a neutral element, so
    /// this works both for plain boolean matrix products and for the
    /// edge-interleaved join of [`crate::TransferSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`SemigroupError::EmptyWord`] if `k == 0`, or propagates errors
    /// from `op`.
    pub fn power_with(
        &self,
        k: usize,
        op: impl Fn(&OutRelation, &OutRelation) -> Result<OutRelation>,
    ) -> Result<OutRelation> {
        if k == 0 {
            return Err(SemigroupError::EmptyWord);
        }
        let mut acc: Option<OutRelation> = None;
        let mut base = self.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = Some(match acc {
                    None => base.clone(),
                    Some(a) => op(&a, &base)?,
                });
            }
            k >>= 1;
            if k > 0 {
                base = op(&base, &base)?;
            }
        }
        Ok(acc.expect("k >= 1 guarantees at least one factor"))
    }
}

impl fmt::Display for OutRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            if i + 1 < self.n {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_empty() {
        let id = OutRelation::identity(3);
        assert!(id.get(0, 0) && id.get(2, 2));
        assert!(!id.get(0, 1));
        assert!(id.has_nonzero_diagonal());
        let e = OutRelation::empty(3);
        assert!(e.is_zero());
        assert!(!e.has_nonzero_diagonal());
        let f = OutRelation::full(3);
        assert_eq!(f.count(), 9);
    }

    #[test]
    fn compose_matches_manual_matmul() {
        // a = {(0,1)}, b = {(1,2)}: a∘b = {(0,2)}
        let a = OutRelation::from_fn(3, |i, j| i == 0 && j == 1);
        let b = OutRelation::from_fn(3, |i, j| i == 1 && j == 2);
        let c = a.compose(&b).unwrap();
        assert!(c.get(0, 2));
        assert_eq!(c.count(), 1);
        // identity is neutral
        let id = OutRelation::identity(3);
        assert_eq!(a.compose(&id).unwrap(), a);
        assert_eq!(id.compose(&a).unwrap(), a);
    }

    #[test]
    fn compose_dimension_mismatch() {
        let a = OutRelation::identity(2);
        let b = OutRelation::identity(3);
        assert!(matches!(
            a.compose(&b),
            Err(SemigroupError::DimensionMismatch { .. })
        ));
        assert!(a.union(&b).is_err());
        assert!(a.intersection(&b).is_err());
    }

    #[test]
    fn union_intersection_transpose() {
        let a = OutRelation::from_fn(2, |i, j| i == 0 && j == 1);
        let b = OutRelation::from_fn(2, |i, j| i == 1 && j == 0);
        let u = a.union(&b).unwrap();
        assert_eq!(u.count(), 2);
        let i = a.intersection(&b).unwrap();
        assert!(i.is_zero());
        assert_eq!(a.transpose(), b);
    }

    #[test]
    fn rows_columns_and_contains() {
        let a = OutRelation::from_fn(3, |i, j| j == (i + 1) % 3);
        assert_eq!(a.row(0), vec![1]);
        assert_eq!(a.column(0), vec![2]);
        assert!(a.contains(OutLabel(2), OutLabel(0)));
        assert!(!a.contains(OutLabel(0), OutLabel(0)));
    }

    #[test]
    fn diagonal_constructor() {
        let d = OutRelation::diagonal(4, |i| i % 2 == 0);
        assert!(d.get(0, 0) && d.get(2, 2));
        assert!(!d.get(1, 1));
        assert_eq!(d.count(), 2);
    }

    #[test]
    fn display_renders_grid() {
        let id = OutRelation::identity(2);
        assert_eq!(id.to_string(), "10\n01");
    }

    #[test]
    fn power_with_boolean_matmul() {
        // successor relation on 4 elements; its cube maps 0 -> 3.
        let succ = OutRelation::from_fn(4, |i, j| j == i + 1);
        let op = |a: &OutRelation, b: &OutRelation| a.compose(b);
        let p3 = succ.power_with(3, op).unwrap();
        assert!(p3.get(0, 3));
        assert_eq!(p3.count(), 1);
        let p1 = succ.power_with(1, op).unwrap();
        assert_eq!(p1, succ);
        assert!(succ.power_with(0, op).is_err());
    }

    #[test]
    fn large_dimension_bitsets() {
        // Exercise the multi-word-per-row path (dim > 64).
        let n = 70;
        let a = OutRelation::from_fn(n, |i, j| j == (i + 1) % n);
        let b = a.compose(&a).unwrap();
        assert!(b.get(0, 2));
        assert!(b.get(n - 1, 1));
        assert_eq!(b.count(), n);
    }
}
