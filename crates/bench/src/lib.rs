//! Shared helpers for the benchmark harness (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results).
//!
//! Every bench target is a standalone experiment binary (`harness = false`)
//! that regenerates one figure- or theorem-level artifact of the paper and
//! prints the series it measured; two ablation benches additionally use
//! criterion for statistically robust timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lcl_local_sim::{IdAssignment, Network};
use lcl_problem::{Instance, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A cycle network with uniformly random inputs from an alphabet of size
/// `alpha` and random identifiers.
pub fn random_cycle_network(n: usize, alpha: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..alpha as u16)).collect();
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    Network::new(
        Instance::from_indices(Topology::Cycle, &inputs),
        IdAssignment::RandomFromSpace { multiplier: 8 },
        &mut rng2,
    )
    .expect("network construction")
}

/// A cycle network whose input repeats the pattern `0 1 0 1 …` with `defects`
/// randomly flipped positions — the workload family used by the `O(1)`
/// experiments (periodic background, sparse irregularities).
pub fn periodic_cycle_network(n: usize, defects: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
    for _ in 0..defects {
        let pos = rng.gen_range(0..n);
        inputs[pos] = 1 - inputs[pos];
    }
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xabcd);
    Network::new(
        Instance::from_indices(Topology::Cycle, &inputs),
        IdAssignment::RandomFromSpace { multiplier: 8 },
        &mut rng2,
    )
    .expect("network construction")
}

/// Prints a standard experiment header so the bench output is self-describing.
pub fn banner(id: &str, paper_artifact: &str, what: &str) {
    println!("==============================================================");
    println!("experiment {id} — reproduces {paper_artifact}");
    println!("{what}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generators_produce_expected_shapes() {
        let net = random_cycle_network(32, 3, 1);
        assert_eq!(net.len(), 32);
        let per = periodic_cycle_network(64, 2, 1);
        assert_eq!(per.len(), 64);
        let flips: usize = per
            .instance()
            .inputs()
            .iter()
            .enumerate()
            .filter(|(i, l)| l.index() != i % 2)
            .count();
        assert!(flips <= 2);
    }
}
