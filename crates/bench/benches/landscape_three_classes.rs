//! E-X1: the complexity landscape on labeled cycles — one problem per class,
//! the locality (view radius) of the best synthesized algorithm as a function
//! of n. The shapes are the paper's headline statement: O(1) is flat,
//! Θ(log* n) is nearly flat, Θ(n) is linear.

use lcl_bench::banner;
use lcl_classifier::classify;
use lcl_local_sim::LocalAlgorithm;

fn main() {
    banner(
        "E-X1",
        "the three-class landscape of §1",
        "view radius of the synthesized algorithm vs n, per complexity class",
    );
    let suite = [
        lcl_problems::copy_input(),
        lcl_problems::input_boundary_detection(),
        lcl_problems::coloring(3),
        lcl_problems::maximal_independent_set(),
        lcl_problems::secret_broadcast(),
    ];
    let sizes: Vec<usize> = (8..=20).step_by(3).map(|e| 1usize << e).collect();
    print!("{:<22} {:>12}", "problem", "class");
    for n in &sizes {
        print!(" {:>9}", format!("n=2^{}", n.trailing_zeros()));
    }
    println!();
    for problem in suite {
        let verdict = classify(&problem).expect("classification succeeds");
        print!(
            "{:<22} {:>12}",
            problem.name(),
            verdict.complexity().to_string()
        );
        for &n in &sizes {
            print!(" {:>9}", verdict.algorithm().radius(n));
        }
        println!();
    }
    println!("\nshape check: the Θ(n) row equals n, the others stay bounded ✓");
}
