//! E-ENGINE: `Engine::classify_many` throughput over the corpus at 1/4/8
//! worker threads, against the sequential uncached baseline.
//!
//! Each configuration classifies the full corpus from a cold cache; the
//! sequential baseline calls `classify_with_options` per problem with no
//! engine at all. This records the scaling trajectory that later
//! batching/sharding PRs need to beat. A final warm-cache pass shows what the
//! memo cache is worth on repeated traffic.

use lcl_bench::banner;
use lcl_classifier::{classify_with_options, ClassifierOptions, Engine};
use lcl_problems::corpus;
use std::time::{Duration, Instant};

const REPS: usize = 5;

fn main() {
    banner(
        "E-ENGINE",
        "the Engine service API (this repository's addition)",
        "classify_many over the corpus: sequential baseline vs 1/4/8 threads, cold and warm cache",
    );

    let problems: Vec<_> = corpus().into_iter().map(|e| e.problem).collect();
    println!(
        "corpus: {} problems, {REPS} repetitions per configuration\n",
        problems.len()
    );

    // Sequential baseline: no engine, no cache.
    let options = ClassifierOptions::default();
    let baseline = measure(|| {
        for problem in &problems {
            classify_with_options(problem, &options).expect("classification");
        }
    });
    report("sequential (no engine)", baseline, baseline);

    // Cold-cache batches: a fresh engine per repetition.
    for workers in [1usize, 4, 8] {
        let elapsed = measure(|| {
            let engine = Engine::builder().parallelism(workers).build();
            let results = engine.classify_many(&problems);
            assert!(results.iter().all(Result::is_ok));
        });
        report(
            &format!("classify_many, {workers} thread(s), cold cache"),
            elapsed,
            baseline,
        );
    }

    // Warm cache: the steady state of a long-lived service.
    let engine = Engine::new();
    let _ = engine.classify_many(&problems);
    let warm = measure(|| {
        let results = engine.classify_many(&problems);
        assert!(results.iter().all(Result::is_ok));
    });
    report("classify_many, warm cache", warm, baseline);
    let stats = engine.cache_stats();
    println!(
        "\nwarm-cache stats: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
}

fn measure(mut run: impl FnMut()) -> Duration {
    // One untimed warm-up repetition.
    run();
    let start = Instant::now();
    for _ in 0..REPS {
        run();
    }
    start.elapsed() / REPS as u32
}

fn report(label: &str, elapsed: Duration, baseline: Duration) {
    let speedup = baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-12);
    println!("{label:<45} {elapsed:>10.2?}   {speedup:>6.2}x vs baseline");
}
