//! E-T6/T7 (§3.8): encoding input labels as attached trees — Enc/Dec
//! round-trips and the G* construction on random labeled cycles.

use lcl_bench::banner;
use lcl_hardness::{decode_tree, encode_bits, LabeledGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    banner(
        "E-T7",
        "Theorems 6–7 (§3.8, input labels as trees)",
        "Enc/Dec round-trips and label recovery from G*",
    );
    println!("{:>8} {:>10} {:>12}", "|Σ_in|", "tree size", "roundtrips");
    for bits in [2usize, 4, 8] {
        let alphabet = 1usize << bits.min(4);
        let mut ok = 0usize;
        let mut tree_size = 0usize;
        for code in 0..(1usize << bits) {
            let word: Vec<bool> = (0..bits).map(|i| (code >> i) & 1 == 1).collect();
            let tree = encode_bits(&word);
            tree_size = tree.len();
            assert_eq!(decode_tree(&tree), Some(word));
            ok += 1;
        }
        println!("{:>8} {:>10} {:>12}", alphabet, tree_size, ok);
    }
    let mut rng = StdRng::seed_from_u64(3);
    let t0 = Instant::now();
    let mut recovered_ok = 0usize;
    for trial in 0..20 {
        let n = rng.gen_range(4..12);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let mut g = LabeledGraph::new(labels.clone());
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        let (gstar, roots) = g.attach_label_trees(8);
        assert!(gstar.max_degree() <= 3);
        let rec = LabeledGraph::recover_labels(n, &gstar, &roots);
        assert_eq!(
            rec.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            labels,
            "trial {trial}"
        );
        recovered_ok += 1;
    }
    println!(
        "G* label recovery on {recovered_ok}/20 random labeled cycles in {:.2?} ✓",
        t0.elapsed()
    );
}
