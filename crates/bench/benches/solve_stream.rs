//! E-STREAM: the `solve_stream` protocol kind at its design point — labeling
//! paths and cycles of a **million nodes** without ever materializing them.
//!
//! Two experiments:
//!
//! 1. **engine streaming** — `Engine::solve_stream` over a 1,000,000-node
//!    path and cycle of the `O(1)` `copy-input` problem, drained in
//!    server-sized chunks. Printed: rows/sec and the cursor's peak resident
//!    window. **Asserted**: `peak_resident_nodes()` stays at
//!    `chunk + 2·radius + 1` — under 1/10 of the instance — so the solve
//!    provably never holds the instance in memory;
//! 2. **end-to-end TCP** — the same million-node instances streamed through
//!    `lcl-serve` loopback connections on both connection backends (chunked
//!    reply frames, bounded write backlog, pipelined slot accounting).
//!    Printed: rows/sec per backend. **Asserted**: chunk counts and the
//!    FNV-1a digest of the label stream are identical across backends, and
//!    every stream passes the client's ordering checks (id echo, `seq`
//!    increments, contiguous offsets, node-count reconciliation).
//!
//! `copy-input` is the workload because its synthesized constant-round
//! algorithm streams at ~6 µs/node; a `Θ(log* n)` problem like 3-coloring
//! streams correctly through the same path (covered by tests) but pays
//! ~0.5 ms/node for its radius-470 views, which would make a million-node
//! bench run take minutes for no additional coverage.

use lcl_bench::banner;
use lcl_classifier::Engine;
use lcl_problem::{StreamInputs, StreamInstanceSpec, Topology};
use lcl_problems::copy_input;
use lcl_server::{Backend, Client, Server, Service, DEFAULT_MAX_CHUNK_BYTES};
use std::sync::Arc;
use std::time::Instant;

/// One million nodes: the scale the subsystem exists for.
const NODES: u64 = 1_000_000;

/// Labels per chunk at the server's default `--max-chunk-bytes`, mirrored
/// here so experiment 1 drains the cursor exactly as the service does.
fn server_chunk_nodes() -> usize {
    (DEFAULT_MAX_CHUNK_BYTES - 128) / 8
}

fn instances() -> Vec<StreamInstanceSpec> {
    vec![
        StreamInstanceSpec {
            topology: Topology::Path,
            length: NODES,
            inputs: StreamInputs::Pattern {
                pattern: vec![0, 1],
            },
        },
        StreamInstanceSpec {
            topology: Topology::Cycle,
            length: NODES,
            inputs: StreamInputs::Uniform { label: 0 },
        },
    ]
}

/// FNV-1a over the label stream: cheap enough to run inside the timed
/// region, strong enough to catch any cross-backend divergence.
fn fnv1a(hash: u64, labels: &[u16]) -> u64 {
    labels.iter().fold(hash, |mut h, &l| {
        for byte in l.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    })
}

fn main() {
    banner(
        "E-STREAM",
        "million-node streaming solve: O(window) memory, chunked replies (this repository's addition)",
        "rows/sec for 1M-node path + cycle, in-engine and end-to-end over both backends",
    );

    let problem = copy_input();
    let chunk = server_chunk_nodes();
    println!(
        "workload: {} on {NODES} nodes, {chunk} labels per chunk (the server default)\n",
        problem.name()
    );

    println!("-- engine streaming: the cursor itself ------------------------");
    let engine = Engine::builder().parallelism(1).build();
    let mut digests = Vec::new();
    for spec in instances() {
        let start = Instant::now();
        let mut solution = engine
            .solve_stream(&problem, &spec)
            .expect("stream must open");
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut emitted = 0u64;
        while let Some(part) = solution.next_chunk(chunk) {
            let part = part.expect("chunk must verify");
            let indices: Vec<u16> = part.iter().map(|o| o.0).collect();
            digest = fnv1a(digest, &indices);
            emitted += part.len() as u64;
        }
        let elapsed = start.elapsed();
        assert_eq!(emitted, NODES, "every node must be labeled exactly once");

        // The O(window) claim, asserted: the cursor never held more than one
        // chunk plus the radius overlap — a fixed fraction of the instance.
        let peak = solution.peak_resident_nodes();
        let window = chunk + 2 * solution.rounds() + 1;
        assert!(
            peak <= window,
            "peak resident {peak} nodes exceeds the {window}-node window"
        );
        assert!(
            (peak as u64) < NODES / 10,
            "peak resident {peak} nodes: the instance was effectively materialized"
        );
        let rows = NODES as f64 / elapsed.as_secs_f64().max(1e-12);
        println!(
            "{:>6} x {NODES}: {elapsed:>8.2?}   {rows:>12.0} rows/s   peak window {peak} nodes ({:.2}% of instance)",
            spec.topology.to_string(),
            100.0 * peak as f64 / NODES as f64,
        );
        digests.push(digest);
    }

    println!("\n-- end-to-end TCP: chunked reply frames per backend -----------");
    let backends: Vec<Backend> = [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect();
    let spec_wire = problem.to_spec();
    let mut per_backend: Vec<(Backend, Vec<(u64, u64)>)> = Vec::new();
    for &backend in &backends {
        let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind loopback")
            .backend(backend)
            .start()
            .expect("start server");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let mut outcomes = Vec::new();
        for instance in instances() {
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            let start = Instant::now();
            let summary = client
                .solve_stream(&spec_wire, &instance, |_, outputs| {
                    digest = fnv1a(digest, outputs);
                })
                .unwrap_or_else(|e| panic!("[{backend}] stream: {e}"));
            let elapsed = start.elapsed();
            assert_eq!(summary.nodes, NODES, "[{backend}] node count");
            let rows = NODES as f64 / elapsed.as_secs_f64().max(1e-12);
            println!(
                "{:>7} backend, {:>5}: {elapsed:>8.2?}   {rows:>12.0} rows/s   {} chunk frames",
                backend.name(),
                instance.topology.to_string(),
                summary.chunks,
            );
            outcomes.push((digest, summary.chunks));
        }
        drop(client);
        handle.shutdown();
        per_backend.push((backend, outcomes));
    }

    // Cross-backend and engine-vs-wire byte identity, via the digests.
    for (backend, outcomes) in &per_backend {
        for (digest_and_chunks, engine_digest) in outcomes.iter().zip(&digests) {
            assert_eq!(
                digest_and_chunks.0, *engine_digest,
                "{backend} backend streamed different labels than the engine cursor"
            );
        }
    }
    if let [(first, first_outcomes), rest @ ..] = per_backend.as_slice() {
        for (other, other_outcomes) in rest {
            assert_eq!(
                first_outcomes, other_outcomes,
                "backends {first} and {other} must stream identical chunks"
            );
        }
        println!(
            "\nall backends streamed byte-identical labelings ({} instances, digests checked against the engine cursor)",
            first_outcomes.len()
        );
    }
}
