//! E-SERVER: the persistent worker pool against the PR 1 scoped-thread
//! baseline, and end-to-end NDJSON service throughput over loopback TCP.
//!
//! Eight experiments, the first four at 1/4/8 pool workers:
//!
//! 1. **cold batch** — `classify_many` over the corpus from a cold cache,
//!    vs the original design (replicated below) that spawned a fresh
//!    `std::thread::scope` per call;
//! 2. **warm batch** — the same comparison with a warm cache, where real
//!    work is ~zero and per-call thread churn dominates: this isolates what
//!    the persistent pool buys a long-lived service;
//! 3. **end-to-end TCP** — requests/sec for single `classify` round-trips
//!    through `lcl-server` on a loopback socket (warm cache, so the wire +
//!    dispatch + pool path is what's measured);
//! 4. **single-connection pipelining** — the PR 3 addition: one connection
//!    sweeping the corpus lock-step (read each reply before the next
//!    request) vs pipelined (`Client::classify_many_pipelined`, a window of
//!    requests in flight). Lock-step pays a full round-trip of latency per
//!    request; pipelining overlaps wire, dispatch, pool and write stages,
//!    so one client pipe can finally keep the pool busy;
//! 5. **many connections** — the reactor addition: 512 simultaneously open
//!    pipelined connections sweeping the corpus, served by the epoll
//!    reactor backend vs the thread-per-connection backend. Printed for
//!    each: requests/sec and the **process thread count** while all 512
//!    connections were open — the reactor holds it at
//!    `constant + pool workers` where the thread backend pays
//!    `2 × connections`. The reply frames of the two backends are asserted
//!    byte-identical;
//! 6. **observability overhead** — warm pipelined sweeps with detailed
//!    metrics (latency histograms + stage traces) enabled vs the no-op
//!    recorder (`set_detailed(false)`), interleaved on one server and one
//!    connection so clock drift cannot land on one side. The observability
//!    layer must cost under 5% of throughput; the run asserts it.
//! 7. **zero-serialization hit path** — warm corpus sweeps through the
//!    stdio front-end with the reply-bytes splice lane on vs off
//!    (`set_reply_splice` is a live toggle), interleaved and fastest-of
//!    like experiment 6. The off mode is the verdict-cache-only baseline:
//!    every hit re-serializes its reply; the on mode answers hits by
//!    splicing the request id into the cached payload bytes. Printed as
//!    ns/frame; the outputs of the two modes are asserted byte-identical
//!    and the spliced mode must cut hit-path time at least 2x.
//! 8. **admission + persistence** — the production-posture gates. Three
//!    measurements: (a) with thresholds far above the workload, warm
//!    pipelined sweeps must shed exactly zero frames (admission is
//!    invisible below its limits); (b) with one worker pinned by slow
//!    solves and queue-depth shedding armed, a probe connection's
//!    rejections must come back under 1ms at p99 — a shed takes no pool
//!    slot, so its cost is parse + admission check + a pre-rendered error
//!    frame; (c) a verdict cache snapshotted to disk and restored into a
//!    fresh engine must answer the first corpus sweep at a > 0.9 hit
//!    ratio.
//!
//! The acceptance bar is experiment 1/2 (the pool must be no slower than
//! the scoped-thread baseline), experiment 4 (pipelined must beat
//! lock-step clearly — the PR targets ≥ 2x on warm sweeps), experiment 5
//! (the reactor must complete the 512-connection run on its fixed thread
//! budget with byte-identical replies), experiment 6 (< 5% observability
//! overhead), experiment 7 (≥ 2x on the memoized classify hit path,
//! byte-identical replies) and experiment 8 (zero sheds below thresholds,
//! shed-path reply p99 < 1ms, restored-snapshot first-pass hit ratio
//! > 0.9).

use lcl_bench::banner;
use lcl_classifier::{Classification, Engine};
use lcl_problem::NormalizedLcl;
use lcl_problems::corpus;
use lcl_server::{Backend, Client, Server, Service};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

const REPS: usize = 3;
const WARM_BATCHES: usize = 50;

/// The PR 1 `classify_many`: spawn `workers` scoped threads per call over a
/// work-stealing cursor. Kept here as the baseline after the engine moved to
/// a persistent pool.
fn classify_many_scoped(
    engine: &Engine,
    problems: &[NormalizedLcl],
    workers: usize,
) -> Vec<lcl_classifier::Result<Arc<Classification>>> {
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for _ in 0..workers.min(problems.len()).max(1) {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(problem) = problems.get(k) else {
                    break;
                };
                let result = engine.classify(problem);
                if tx.send((k, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut results: Vec<_> = rx.into_iter().collect();
    results.sort_by_key(|(k, _)| *k);
    results.into_iter().map(|(_, r)| r).collect()
}

fn main() {
    banner(
        "E-SERVER",
        "the lcl-server service + persistent engine pool (this repository's addition)",
        "pool vs scoped-thread classify_many, and end-to-end NDJSON requests/sec over TCP",
    );

    let problems: Vec<_> = corpus().into_iter().map(|e| e.problem).collect();
    let specs: Vec<_> = problems.iter().map(NormalizedLcl::to_spec).collect();
    println!(
        "corpus: {} problems, {REPS} repetitions per configuration\n",
        problems.len()
    );

    println!("-- cold cache: full corpus batch ------------------------------");
    for workers in [1usize, 4, 8] {
        let scoped = measure(|| {
            let engine = Engine::builder().parallelism(1).build();
            let results = classify_many_scoped(&engine, &problems, workers);
            assert!(results.iter().all(Result::is_ok));
        });
        let pooled = measure(|| {
            let engine = Engine::builder().parallelism(workers).build();
            let results = engine.classify_many(&problems);
            assert!(results.iter().all(Result::is_ok));
        });
        compare(workers, "cold corpus batch", scoped, pooled);
    }

    println!("\n-- warm cache: {WARM_BATCHES} repeated batches (spawn churn isolated) ----");
    for workers in [1usize, 4, 8] {
        let engine = Engine::builder().parallelism(workers).build();
        let _ = engine.classify_many(&problems); // warm up the cache
        let scoped = measure(|| {
            for _ in 0..WARM_BATCHES {
                let results = classify_many_scoped(&engine, &problems, workers);
                assert!(results.iter().all(Result::is_ok));
            }
        });
        let pooled = measure(|| {
            for _ in 0..WARM_BATCHES {
                let results = engine.classify_many(&problems);
                assert!(results.iter().all(Result::is_ok));
            }
        });
        compare(workers, "warm repeated batches", scoped, pooled);
    }

    println!("\n-- end-to-end TCP: single-classify round-trips (warm) ---------");
    for workers in [1usize, 4, 8] {
        let service = Arc::new(Service::new(Engine::builder().parallelism(workers).build()));
        let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
        let handle = server.start().expect("start server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        // Warm both the cache and the connection.
        for spec in &specs {
            client.classify(spec).expect("warm-up classify");
        }
        let mut requests = 0u64;
        let elapsed = measure(|| {
            for spec in &specs {
                client.classify(spec).expect("classify round-trip");
                requests += 1;
            }
        });
        let per_rep = specs.len() as f64;
        let rps = per_rep / elapsed.as_secs_f64().max(1e-12);
        println!(
            "{workers} pool worker(s): {:>10.2?} per corpus sweep   {rps:>9.0} req/s",
            elapsed
        );
        drop(client);
        handle.shutdown();
        let pool = service.engine().pool_stats();
        assert_eq!(
            pool.workers, workers,
            "pool width must match the configuration"
        );
    }
    println!("\n-- single connection: lock-step vs pipelined (warm) -----------");
    // Context first: on a single-core host the two sides of one connection
    // cannot actually run concurrently, so even a zero-work echo server
    // caps the pipelined/lock-step ratio well below what the design reaches
    // on real hardware (where N workers parse/classify N frames at once).
    let cores = thread::available_parallelism().map_or(1, |p| p.get());
    let (echo_lockstep, echo_pipelined) = wire_ceiling();
    println!(
        "host: {cores} core(s); bare TCP line-echo ceiling: lock-step {echo_lockstep:.0} req/s, \
         pipelined {echo_pipelined:.0} req/s ({:.2}x)",
        echo_pipelined / echo_lockstep.max(1e-12)
    );
    const SWEEPS: usize = 20;
    for workers in [1usize, 4, 8] {
        let service = Arc::new(Service::new(Engine::builder().parallelism(workers).build()));
        let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
        let handle = server.start().expect("start server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        for spec in &specs {
            client.classify(spec).expect("warm-up classify");
        }
        let lockstep = measure(|| {
            for _ in 0..SWEEPS {
                for spec in &specs {
                    client.classify(spec).expect("lock-step classify");
                }
            }
        });
        let pipelined = measure(|| {
            for _ in 0..SWEEPS {
                let outcomes = client
                    .classify_many_pipelined(&specs, 0)
                    .expect("pipelined sweep");
                assert!(outcomes.iter().all(Result::is_ok));
            }
        });
        let per_sweep = (specs.len() * SWEEPS) as f64;
        let lockstep_rps = per_sweep / lockstep.as_secs_f64().max(1e-12);
        let pipelined_rps = per_sweep / pipelined.as_secs_f64().max(1e-12);
        let speedup = lockstep.as_secs_f64() / pipelined.as_secs_f64().max(1e-12);
        println!(
            "{workers} pool worker(s): lock-step {lockstep_rps:>9.0} req/s   pipelined {pipelined_rps:>9.0} req/s   {speedup:>5.2}x"
        );
        drop(client);
        handle.shutdown();
    }

    println!("\n-- many connections: {MANY_CONNS} pipelined conns, reactor vs threads --");
    let backends: Vec<Backend> = [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect();
    let mut reply_sets: Vec<(Backend, Vec<String>)> = Vec::new();
    for &backend in &backends {
        let outcome = many_connections(backend, &specs);
        let threads = outcome
            .threads
            .map_or_else(|| "n/a".to_string(), |t| t.to_string());
        println!(
            "{:>7} backend: {MANY_CONNS} conns x {FRAMES_PER_CONN} reqs   {:>10.2?} total   {:>9.0} req/s   {threads:>5} process threads",
            backend.name(),
            outcome.elapsed,
            outcome.rps,
        );
        reply_sets.push((backend, outcome.replies));
    }
    if let [(_, first), (_, second)] = reply_sets.as_slice() {
        assert_eq!(
            first, second,
            "reactor and thread backends must produce byte-identical reply frames"
        );
        println!(
            "         both backends produced byte-identical reply frames ({} replies)",
            reply_sets[0].1.len()
        );
    }

    println!("\n-- observability overhead: detailed metrics on vs off (warm) --");
    let (on, off) = obs_compare(&specs);
    let overhead = on.as_secs_f64() / off.as_secs_f64().max(1e-12) - 1.0;
    println!(
        "detailed on {on:>10.2?}   no-op recorder {off:>10.2?}   overhead {:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "observability must cost < 5% of warm pipelined throughput (measured {:+.2}%)",
        overhead * 100.0
    );

    println!("\n-- zero-serialization hit path: splice on vs off (warm) -------");
    let (spliced, rendered, frames_per_mode) = splice_compare(&specs);
    let spliced_ns = spliced.as_nanos() as f64 / frames_per_mode as f64;
    let rendered_ns = rendered.as_nanos() as f64 / frames_per_mode as f64;
    let speedup = rendered_ns / spliced_ns.max(1e-12);
    println!(
        "splice on {spliced_ns:>8.0} ns/frame   splice off {rendered_ns:>8.0} ns/frame   {speedup:>5.2}x"
    );
    assert!(
        speedup >= 2.0,
        "the spliced hit path must be at least 2x faster than re-serializing \
         every memoized reply (measured {speedup:.2}x)"
    );

    println!("\n-- admission control + snapshot persistence -------------------");
    let clean_sheds = clean_path_sheds(&specs);
    println!("below thresholds: {clean_sheds} frames shed across 3 warm pipelined sweeps");
    assert_eq!(
        clean_sheds, 0,
        "admission must be invisible below its thresholds ({clean_sheds} frames shed)"
    );
    let (shed_p99, probes) = shed_latency();
    println!("shed path: {probes} probe rejections against a pinned pool, p99 {shed_p99:?}");
    assert!(
        shed_p99 < Duration::from_millis(1),
        "a shed reply must not cost a pool slot's worth of latency (p99 {shed_p99:?} >= 1ms)"
    );
    let (restored_hits, swept) = restored_warmth(&specs);
    let ratio = restored_hits as f64 / swept as f64;
    println!(
        "restored warmth: {restored_hits}/{swept} first-pass cache hits after a snapshot restore ({ratio:.2})"
    );
    assert!(
        ratio > 0.9,
        "a restored snapshot must answer the first corpus sweep mostly from cache (hit ratio {ratio:.2})"
    );

    println!("\n(no thread is spawned on any per-request path above: all classification runs on the engines' persistent pools)");
}

/// Experiment 8a: thresholds far above the workload. Warm pipelined corpus
/// sweeps run with every admission signal armed but generous; afterwards
/// the per-kind shed counters must all read zero — admission control may
/// only cost anything when it actually rejects.
fn clean_path_sheds(specs: &[lcl_problem::ProblemSpec]) -> u64 {
    use lcl_server::{AdmissionConfig, RequestKind};

    let service = Arc::new(
        Service::new(Engine::builder().parallelism(4).build()).with_admission(AdmissionConfig {
            shed_queue_depth: 1_000_000,
            shed_p99_micros: 60_000_000,
            quota_rps: 1_000_000,
            quota_burst: 1_000_000,
        }),
    );
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .start()
        .expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..3 {
        let outcomes = client
            .classify_many_pipelined(specs, 0)
            .expect("pipelined sweep");
        assert!(outcomes.iter().all(Result::is_ok));
    }
    drop(client);
    handle.shutdown();
    RequestKind::ALL
        .iter()
        .map(|&kind| service.metrics().snapshot(Some(kind)).shed)
        .sum()
}

/// Experiment 8b: shed-path reply latency. A burst of slow solves pins the
/// single worker and fills the queue to the shed threshold; a separate
/// probe connection then times rejected classify round-trips. The probe
/// connection has nothing pending, so each rejection's latency is pure
/// shed path: parse, admission check, pre-rendered `overloaded` frame.
fn shed_latency() -> (Duration, usize) {
    use lcl_problem::json::JsonValue;
    use lcl_problem::{Instance, RequestEnvelope, ResponseEnvelope, Topology};
    use lcl_server::AdmissionConfig;
    use std::io::{BufRead, BufReader, Write};

    const PROBES: usize = 200;
    let service = Arc::new(
        Service::new(Engine::builder().parallelism(1).cache_shards(1).build()).with_admission(
            AdmissionConfig {
                shed_queue_depth: 2,
                shed_p99_micros: 0,
                quota_rps: 0,
                quota_burst: 0,
            },
        ),
    );
    // Keep probes on the dispatch path: a cache hit would answer from the
    // splice lane, which bypasses admission by design.
    service.set_reply_splice(false);
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .start()
        .expect("start server");

    // Pin the pool: the solve burst arrives faster than the one worker can
    // drain it, so the queue settles at the threshold (excess solves shed)
    // and stays there for the duration of the running solve — hundreds of
    // milliseconds, plenty for a 200-probe measurement that takes tens.
    let spec = lcl_problems::coloring(3).to_spec();
    let instance = Instance::from_indices(Topology::Cycle, &[0; 1200]);
    let mut flood = std::net::TcpStream::connect(handle.addr()).expect("connect flood");
    flood.set_nodelay(true).expect("nodelay");
    for id in 0..8i64 {
        let mut line = RequestEnvelope::new(
            id,
            "solve",
            JsonValue::object([
                ("problem", spec.to_json()),
                ("instance", instance.to_json()),
            ]),
        )
        .to_json_string();
        line.push('\n');
        flood.write_all(line.as_bytes()).expect("flood send");
    }
    flood.flush().expect("flood flush");

    let probe_stream = std::net::TcpStream::connect(handle.addr()).expect("connect probe");
    probe_stream.set_nodelay(true).expect("nodelay");
    let mut probe_writer = probe_stream.try_clone().expect("clone probe stream");
    let mut probe_reader = BufReader::new(probe_stream);
    let mut probe_line = RequestEnvelope::new(
        0,
        "classify",
        JsonValue::object([("problem", spec.to_json())]),
    )
    .to_json_string();
    probe_line.push('\n');
    let mut round_trip = || -> ResponseEnvelope {
        probe_writer
            .write_all(probe_line.as_bytes())
            .expect("probe send");
        let mut reply = String::new();
        assert!(
            probe_reader.read_line(&mut reply).expect("probe reply") > 0,
            "probe connection closed"
        );
        ResponseEnvelope::from_json_str(reply.trim_end()).expect("probe reply parses")
    };

    // Settle: probe until the first rejection, so the timed loop below
    // measures sheds only (the solves need a moment to reach the queue).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if round_trip().result.is_err() {
            break;
        }
        assert!(Instant::now() < deadline, "queue shedding never engaged");
    }
    let mut latencies = Vec::with_capacity(PROBES);
    for _ in 0..PROBES {
        let start = Instant::now();
        let reply = round_trip();
        latencies.push(start.elapsed());
        let error = reply
            .result
            .expect_err("probe sheds while the pool is pinned");
        assert_eq!(error.category, "overloaded", "{}", error.message);
        assert_eq!(error.retryable, Some(true));
        assert!(error.retry_after_millis.unwrap_or(0) >= 1);
    }
    drop(probe_writer);
    drop(probe_reader);
    drop(flood);
    handle.shutdown();
    latencies.sort();
    let p99 = latencies[latencies.len() - 1 - latencies.len() / 100];
    (p99, PROBES)
}

/// Experiment 8c: restored warmth. Warm a service over the corpus, write
/// its verdict cache snapshot, restore the file into a fresh service, and
/// sweep the corpus once. Returns `(first-pass cache hits, frames swept)`
/// — the hit ratio must clear 0.9 for the restore to have been worth the
/// disk round-trip.
fn restored_warmth(specs: &[lcl_problem::ProblemSpec]) -> (u64, usize) {
    use lcl_problem::json::JsonValue;
    use lcl_problem::RequestEnvelope;

    let dir = std::env::temp_dir().join(format!("lcl-bench-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let path = dir.join("warm.snapshot");
    let lines: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let payload = JsonValue::object([("problem", spec.to_json())]);
            RequestEnvelope::new(i as i64, "classify", payload).to_json_string()
        })
        .collect();

    let warm = Service::new(Engine::builder().parallelism(4).build())
        .with_cache_snapshot_path(path.clone());
    for line in &lines {
        assert!(warm.handle_line(line).is_ok(), "warm-up classify succeeds");
    }
    warm.write_cache_snapshot()
        .expect("snapshot path configured")
        .expect("snapshot writes");

    let restored =
        Service::new(Engine::builder().parallelism(4).build()).with_cache_snapshot_path(path);
    restored
        .restore_cache_snapshot()
        .expect("snapshot file present")
        .expect("snapshot restores");
    let before = restored.engine().cache_stats();
    for line in &lines {
        assert!(
            restored.handle_line(line).is_ok(),
            "restored classify succeeds"
        );
    }
    let hits = restored.engine().cache_stats().hits - before.hits;
    let _ = std::fs::remove_dir_all(&dir);
    (hits, lines.len())
}

/// Experiment 6: warm pipelined corpus sweeps with the observability layer
/// (histograms + stage traces) enabled vs replaced by the no-op recorder,
/// returning `(detailed, no-op)` as the fastest batch per mode.
///
/// Both modes run on the *same* server and connection, alternating every
/// round (`set_detailed` is a live toggle), so frequency scaling or noisy
/// neighbors degrade both sides alike instead of whichever mode happened to
/// run second. Fastest-of, not mean-of: both configurations hit the same
/// cache-warm path, so the minimum is the least noisy estimate of the
/// per-request cost.
fn obs_compare(specs: &[lcl_problem::ProblemSpec]) -> (Duration, Duration) {
    const OBS_SWEEPS: usize = 20;
    const OBS_ROUNDS: usize = 8;
    let service = Arc::new(Service::new(Engine::builder().parallelism(4).build()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let handle = server.start().expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let sweep = |client: &mut Client| {
        let outcomes = client
            .classify_many_pipelined(specs, 0)
            .expect("pipelined sweep");
        assert!(outcomes.iter().all(Result::is_ok));
    };
    sweep(&mut client); // warm the cache and the connection
    let mut fastest = [Duration::MAX; 2];
    for _ in 0..OBS_ROUNDS {
        for (mode, detailed) in [(0, true), (1, false)] {
            service.metrics().set_detailed(detailed);
            sweep(&mut client); // settle: drain requests dispatched pre-toggle
            let start = Instant::now();
            for _ in 0..OBS_SWEEPS {
                sweep(&mut client);
            }
            fastest[mode] = fastest[mode].min(start.elapsed());
        }
    }
    drop(client);
    handle.shutdown();
    (fastest[0], fastest[1])
}

/// Experiment 7: warm corpus sweeps through the stdio front-end with the
/// reply-bytes splice lane on vs off, returning `(spliced, rendered,
/// frames per timed mode)` with the fastest batch per mode.
///
/// The stdio front-end isolates the hit path: no sockets, no pipelining —
/// each frame is parse + memoized lookup + reply emission, which is
/// exactly the work the splice lane changes. Both modes run on the *same*
/// service (the cache stays warm and `set_reply_splice` toggles live),
/// interleaved every round like experiment 6 so noise lands on both sides.
/// Every reply line of the two modes is asserted byte-identical, and the
/// counters must show the fast lane actually engaged.
fn splice_compare(specs: &[lcl_problem::ProblemSpec]) -> (Duration, Duration, usize) {
    use lcl_problem::json::JsonValue;
    use lcl_problem::RequestEnvelope;
    use lcl_server::serve_stdio;

    const SPLICE_SWEEPS: usize = 30;
    const SPLICE_ROUNDS: usize = 8;
    let service = Service::new(Engine::builder().parallelism(1).build());
    let input: String = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let payload = JsonValue::object([("problem", spec.to_json())]);
            RequestEnvelope::new(i as i64, "classify", payload).to_json_string() + "\n"
        })
        .collect();
    let sweep = |service: &Service| -> Vec<u8> {
        let mut output = Vec::with_capacity(64 * 1024);
        serve_stdio(service, input.as_bytes(), &mut output).expect("stdio sweep");
        output
    };

    // Warm the verdict cache on the baseline path, then pin each mode's
    // reply bytes for the identity check.
    service.set_reply_splice(false);
    let rendered_replies = sweep(&service);
    service.set_reply_splice(true);
    sweep(&service); // attaches the cached reply bytes (bytes misses)
    let spliced_replies = sweep(&service); // pure bytes hits
    assert_eq!(
        spliced_replies, rendered_replies,
        "spliced replies must be byte-identical to freshly serialized ones"
    );
    assert!(service.metrics().spliced_frames() >= 2 * specs.len() as u64);
    assert!(service.engine().cache_stats().bytes_hits >= specs.len() as u64);

    let mut fastest = [Duration::MAX; 2];
    for _ in 0..SPLICE_ROUNDS {
        for (mode, splice) in [(0, true), (1, false)] {
            service.set_reply_splice(splice);
            let start = Instant::now();
            for _ in 0..SPLICE_SWEEPS {
                let output = sweep(&service);
                assert_eq!(output.len(), rendered_replies.len());
            }
            fastest[mode] = fastest[mode].min(start.elapsed());
        }
    }
    (fastest[0], fastest[1], SPLICE_SWEEPS * specs.len())
}

/// Experiment 5 configuration: how many simultaneously open connections,
/// and how many pipelined classify requests each sends.
const MANY_CONNS: usize = 512;
const FRAMES_PER_CONN: usize = 8;

struct ManyConnOutcome {
    elapsed: Duration,
    rps: f64,
    /// Process thread count sampled while all connections were open.
    threads: Option<usize>,
    /// Every raw reply frame, sorted (ids are deterministic, so the two
    /// backends must agree byte-for-byte).
    replies: Vec<String>,
}

/// Opens [`MANY_CONNS`] connections against a server on the given backend,
/// floods [`FRAMES_PER_CONN`] pipelined classify frames down each, then
/// drains and verifies every reply (id echo + success).
fn many_connections(backend: Backend, specs: &[lcl_problem::ProblemSpec]) -> ManyConnOutcome {
    use lcl_problem::json::JsonValue;
    use lcl_problem::{RequestEnvelope, ResponseEnvelope};

    let service = Arc::new(Service::new(Engine::builder().parallelism(4).build()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .backend(backend);
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Warm the cache so the run measures the connection machinery, not
    // first-time classification.
    let mut warm = Client::connect(addr).expect("connect warm-up");
    for spec in specs {
        warm.classify(spec).expect("warm-up classify");
    }
    drop(warm);

    let mut conns: Vec<Client> = (0..MANY_CONNS)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    // Both backends account connections asynchronously; sample the thread
    // count only once every connection is actually being served.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.metrics().open_connections() < MANY_CONNS as u64 {
        assert!(Instant::now() < deadline, "connections never all opened");
        thread::yield_now();
    }
    let threads = process_threads();

    // Serialize all request frames up front (ids deterministic across
    // backends), so the timed section is wire + dispatch + pool + write.
    let frames: Vec<Vec<String>> = (0..MANY_CONNS)
        .map(|i| {
            (0..FRAMES_PER_CONN)
                .map(|j| {
                    let slot = i * FRAMES_PER_CONN + j;
                    let spec = &specs[slot % specs.len()];
                    let payload = JsonValue::object([("problem", spec.to_json())]);
                    RequestEnvelope::new(slot as i64, "classify", payload).to_json_string()
                })
                .collect()
        })
        .collect();

    let start = Instant::now();
    for (conn, conn_frames) in conns.iter_mut().zip(&frames) {
        for frame in conn_frames {
            conn.send_frame(frame).expect("send frame");
        }
    }
    let mut replies: Vec<String> = Vec::with_capacity(MANY_CONNS * FRAMES_PER_CONN);
    for (i, conn) in conns.iter_mut().enumerate() {
        for j in 0..FRAMES_PER_CONN {
            let raw = conn.recv_frame().expect("reply arrives");
            let reply = ResponseEnvelope::from_json_str(&raw).expect("reply parses");
            assert_eq!(
                reply.id,
                Some((i * FRAMES_PER_CONN + j) as i64),
                "replies echo ids in request order"
            );
            assert!(reply.is_ok(), "classification succeeds");
            replies.push(raw);
        }
    }
    let elapsed = start.elapsed();
    let rps = (MANY_CONNS * FRAMES_PER_CONN) as f64 / elapsed.as_secs_f64().max(1e-12);

    drop(conns);
    handle.shutdown();
    replies.sort();
    ManyConnOutcome {
        elapsed,
        rps,
        threads,
        replies,
    }
}

/// The current process's thread count from `/proc/self/status` (Linux; the
/// experiment prints `n/a` elsewhere).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|value| value.trim().parse().ok())
}

/// Measures the host's single-connection ceiling with a trivial line-echo
/// server: requests/sec for 230-byte lines, lock-step and with a 32-deep
/// window. No parsing, no classification — any gap between these two
/// numbers is pure wire/scheduling behavior, the upper bound on what
/// pipelining a *real* server can gain on this host.
fn wire_ceiling() -> (f64, f64) {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
    let addr = listener.local_addr().expect("echo addr");
    let echo = thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_nodelay(true);
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        let mut writer = BufWriter::new(writer);
        let reader = BufReader::new(stream);
        for line in reader.split(b'\n') {
            let Ok(line) = line else { break };
            if writer
                .write_all(&line)
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
    });

    let stream = TcpStream::connect(addr).expect("connect echo");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone echo stream");
    let mut reader = BufReader::new(stream);
    let frame = [b'x'; 230];
    let mut line = Vec::new();
    let mut read_reply = |reader: &mut BufReader<TcpStream>| {
        line.clear();
        reader.read_until(b'\n', &mut line).expect("echo reply")
    };
    const N: usize = 20_000;

    let start = Instant::now();
    for _ in 0..N {
        writer.write_all(&frame).expect("echo send");
        writer.write_all(b"\n").expect("echo send");
        read_reply(&mut reader);
    }
    let lockstep = N as f64 / start.elapsed().as_secs_f64().max(1e-12);

    let start = Instant::now();
    let (mut sent, mut received) = (0usize, 0usize);
    while received < N {
        while sent < N && sent - received < 32 {
            writer.write_all(&frame).expect("echo send");
            writer.write_all(b"\n").expect("echo send");
            sent += 1;
        }
        read_reply(&mut reader);
        received += 1;
    }
    let pipelined = N as f64 / start.elapsed().as_secs_f64().max(1e-12);

    drop(writer);
    drop(reader); // closes the socket; the echo thread sees EOF
    let _ = echo.join();
    (lockstep, pipelined)
}

fn measure(mut run: impl FnMut()) -> Duration {
    // One untimed warm-up repetition.
    run();
    let start = Instant::now();
    for _ in 0..REPS {
        run();
    }
    start.elapsed() / REPS as u32
}

fn compare(workers: usize, what: &str, scoped: Duration, pooled: Duration) {
    let speedup = scoped.as_secs_f64() / pooled.as_secs_f64().max(1e-12);
    let verdict = if speedup >= 1.0 {
        "pool wins"
    } else {
        "scoped wins"
    };
    println!(
        "{workers} worker(s), {what:<24} scoped {scoped:>10.2?}   pool {pooled:>10.2?}   {speedup:>5.2}x ({verdict})"
    );
}
