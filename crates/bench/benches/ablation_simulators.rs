//! E-X3 (ablation): the ball-view simulator vs the crossbeam message-passing
//! actor simulator, running the same Cole–Vishkin 3-colouring.

use criterion::{criterion_group, criterion_main, Criterion};
use lcl_algorithms::ThreeColoringAlgorithm;
use lcl_bench::random_cycle_network;
use lcl_local_sim::{ActorSimulator, SyncSimulator};

fn bench_simulators(c: &mut Criterion) {
    let net = random_cycle_network(256, 1, 7);
    let mut group = c.benchmark_group("cole-vishkin-on-256-nodes");
    group.bench_function("ball-view-simulator", |b| {
        let sim = SyncSimulator::new();
        b.iter(|| sim.run(&net, &ThreeColoringAlgorithm).unwrap())
    });
    group.bench_function("actor-simulator", |b| {
        let sim = ActorSimulator::new();
        b.iter(|| sim.run(&net, &ThreeColoringAlgorithm).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_simulators
}
criterion_main!(benches);
