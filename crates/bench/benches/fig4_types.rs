//! E-F4 (Figure 4): the tripartition and the path types — number of types,
//! pumping threshold, and agreement between the transfer-relation engine and
//! the paper-literal (naive) engine on random words.

use lcl_bench::banner;
use lcl_problems::corpus;
use lcl_semigroup::{naive::NaiveTypeEngine, TransferSystem, TypeSemigroup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    banner(
        "E-F4",
        "Figure 4 (tripartition ξ(P) and the type machinery of §4.1)",
        "types per corpus problem; cross-check of the two type engines",
    );
    println!(
        "{:>22} {:>8} {:>8} {:>12}",
        "problem", "types", "pump", "enum time"
    );
    let mut rng = StdRng::seed_from_u64(11);
    for entry in corpus() {
        let ts = TransferSystem::new(&entry.problem);
        let t0 = Instant::now();
        let sg = TypeSemigroup::compute(&ts, 100_000).expect("semigroup fits");
        let elapsed = t0.elapsed();
        println!(
            "{:>22} {:>8} {:>8} {:>12.2?}",
            entry.problem.name(),
            sg.len(),
            sg.pump_threshold(),
            elapsed
        );
        // Cross-check: transfer-equal words are paper-type-equal.
        let naive = NaiveTypeEngine::new(&entry.problem);
        let alpha = entry.problem.num_inputs() as u16;
        for _ in 0..20 {
            let len = rng.gen_range(4..9);
            let w1: Vec<lcl_problem::InLabel> = (0..len)
                .map(|_| lcl_problem::InLabel(rng.gen_range(0..alpha)))
                .collect();
            let w2: Vec<lcl_problem::InLabel> = (0..len)
                .map(|_| lcl_problem::InLabel(rng.gen_range(0..alpha)))
                .collect();
            if w1.iter().zip(&w2).take(2).all(|(a, b)| a == b)
                && w1
                    .iter()
                    .rev()
                    .zip(w2.iter().rev())
                    .take(2)
                    .all(|(a, b)| a == b)
                && sg.type_of_word(&w1).unwrap() == sg.type_of_word(&w2).unwrap()
            {
                assert!(
                    naive.same_type(&w1, &w2),
                    "engines disagree on {:?} vs {:?}",
                    w1,
                    w2
                );
            }
        }
    }
    println!("type-engine cross-check passed ✓");
}
