//! E-T5 (Theorem 5): deciding whether Π_{M_B} is O(1) or Ω(n) amounts to
//! deciding whether the LBA halts. We compare the direct LBA-simulation
//! baseline against the size of the Π_{M_B} construction that the reduction
//! produces, for halting and looping machines.

use lcl_bench::banner;
use lcl_hardness::PiMb;
use lcl_lba::machines;
use std::time::Instant;

fn main() {
    banner(
        "E-T5",
        "Theorem 5 (PSPACE-hardness of the O(1) vs Ω(n) question)",
        "Π_{M_B} complexity ≡ LBA termination; baseline = direct LBA simulation",
    );
    println!(
        "{:>16} {:>3} {:>8} {:>12} {:>14} {:>14}",
        "machine", "B", "halts?", "Π class", "labels (in/out)", "baseline time"
    );
    for machine in machines::all_machines() {
        for b in [4usize, 6, 8] {
            let name = machine.name().to_string();
            let t0 = Instant::now();
            let halts = machine.halts(b).expect("decidable within budget");
            let elapsed = t0.elapsed();
            let problem = PiMb::new(machine.clone(), b);
            let class = if halts { "O(1)" } else { "Θ(n)" };
            println!(
                "{:>16} {:>3} {:>8} {:>12} {:>7}/{:<6} {:>14.2?}",
                name,
                b,
                halts,
                class,
                problem.input_labels().len(),
                problem.output_labels().len(),
                elapsed
            );
        }
    }
    println!("the Π_{{M_B}} description stays polynomial in B while the decision");
    println!("requires solving LBA termination — the content of the PSPACE-hardness proof.");
}
