//! E-F3 (Figure 3): β-normalization — binary block layout, round-trip, and the
//! growth of the description size with the input alphabet.

use lcl_bench::banner;
use lcl_hardness::beta_normalize;
use lcl_problem::NormalizedLcl;

fn copy_input(alpha: usize) -> NormalizedLcl {
    let mut b = NormalizedLcl::builder(format!("copy-{alpha}"));
    let names: Vec<String> = (0..alpha).map(|i| format!("i{i}")).collect();
    b.input_labels(&names);
    b.output_labels(&names);
    for i in 0..alpha as u16 {
        b.allow_node_idx(i, i);
    }
    b.allow_all_edge_pairs();
    b.build().unwrap()
}

fn main() {
    banner(
        "E-F3",
        "Figure 3 (normalizing an LCL)",
        "block length γ = 2⌈log α⌉ + 3 and description size of the β-normalized problem",
    );
    println!(
        "{:>6} {:>6} {:>6} {:>12} {:>14}",
        "alpha", "bits", "gamma", "|Σ'_out|", "descr. size"
    );
    for alpha in [2usize, 3, 4, 6, 8, 12, 16] {
        let p = copy_input(alpha);
        let norm = beta_normalize(&p).expect("normalization succeeds");
        println!(
            "{:>6} {:>6} {:>6} {:>12} {:>14}",
            alpha,
            norm.bits,
            norm.gamma,
            norm.normalized.num_outputs(),
            norm.description_size()
        );
        // Round-trip sanity on a small instance.
        let inst = lcl_problem::Instance::from_indices(
            lcl_problem::Topology::Cycle,
            &(0..alpha as u16).collect::<Vec<_>>(),
        );
        let enc = norm.encode_instance(&inst);
        assert_eq!(norm.decode_instance(&enc).len(), alpha);
    }
}
