//! E-F5 (Figure 5): the O(1) synthesis pipeline — classify an O(1) problem,
//! then run the synthesized constant-radius algorithm on large cycles with a
//! periodic background and sparse defects, and verify every output.

use lcl_bench::{banner, periodic_cycle_network};
use lcl_classifier::{classify, Complexity};
use lcl_local_sim::{LocalAlgorithm, SyncSimulator};
use lcl_problems::input_boundary_detection;
use std::time::Instant;

fn main() {
    banner(
        "E-F5",
        "Figure 5 (the O(1) algorithm of Lemma 27)",
        "synthesized constant-radius algorithm on periodic inputs with defects",
    );
    let problem = input_boundary_detection();
    let verdict = classify(&problem).expect("classification succeeds");
    assert_eq!(verdict.complexity(), Complexity::Constant);
    let algo = verdict.algorithm();
    let constant = algo.radius(usize::MAX / 4);
    println!("constant radius of the synthesized algorithm: {constant}");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>8}",
        "n", "defects", "radius", "sim time", "valid"
    );
    let sim = SyncSimulator::new();
    for (n, defects) in [(2_000usize, 2usize), (4_000, 4), (8_000, 6), (16_000, 8)] {
        let n = n.max(2 * constant + 64);
        let net = periodic_cycle_network(n, defects, n as u64);
        let t0 = Instant::now();
        let labeling = sim.run(&net, algo).expect("simulation succeeds");
        let elapsed = t0.elapsed();
        let valid = problem.is_valid(net.instance(), &labeling);
        assert!(valid);
        println!(
            "{:>8} {:>8} {:>10} {:>12.2?} {:>8}",
            n,
            defects,
            algo.radius(n),
            elapsed,
            valid
        );
    }
    println!("the radius column stays constant while n grows ✓");
}
