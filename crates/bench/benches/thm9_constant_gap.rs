//! E-T9 (Theorem 9): the ω(1) — o(log* n) gap is decidable. Verify that the
//! O(1) corpus problems get constant-radius algorithms while the Θ(log* n)
//! ones are rejected at the constant level, and measure the constant radii.

use lcl_bench::{banner, periodic_cycle_network};
use lcl_classifier::{classify, Complexity};
use lcl_local_sim::{LocalAlgorithm, SyncSimulator};
use lcl_problems::{corpus, KnownComplexity};
use std::time::Instant;

fn main() {
    banner(
        "E-T9",
        "Theorem 9 (decidability of the 1-vs-log* gap)",
        "constant-class verdicts, their synthesized radii, and end-to-end validation",
    );
    println!(
        "{:>22} {:>12} {:>16}",
        "problem", "class", "radius (large n)"
    );
    for entry in corpus() {
        let verdict = classify(&entry.problem).expect("classification succeeds");
        let radius = if verdict.complexity() == Complexity::Constant {
            verdict.algorithm().radius(usize::MAX / 4).to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{:>22} {:>12} {:>16}",
            entry.problem.name(),
            verdict.complexity().to_string(),
            radius
        );
        let expected_constant = entry.expected == KnownComplexity::Constant;
        assert_eq!(
            verdict.complexity() == Complexity::Constant,
            expected_constant
        );
    }
    // Run one constant-class algorithm on growing periodic workloads: the
    // radius stays flat.
    let problem = lcl_problems::copy_input();
    let verdict = classify(&problem).expect("classification succeeds");
    let algo = verdict.algorithm();
    let constant = algo.radius(usize::MAX / 4);
    println!("\ncopy-input synthesized radius = {constant}; execution on periodic workloads:");
    let sim = SyncSimulator::new();
    for n in [2 * constant + 64, 4 * constant, 8 * constant] {
        let net = periodic_cycle_network(n, 3, n as u64);
        let t0 = Instant::now();
        let out = sim.run(&net, algo).expect("run");
        assert!(problem.is_valid(net.instance(), &out));
        println!(
            "  n = {:>7}: radius {:>4}, simulated in {:.2?} ✓",
            n,
            algo.radius(n),
            t0.elapsed()
        );
    }
}
