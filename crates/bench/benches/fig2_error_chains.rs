//! E-F2 (Figure 2): corrupt one copied tape cell of a good input and check
//! that the solver's Error² chain is accepted, while no error chain is
//! acceptable on the uncorrupted input.

use lcl_bench::banner;
use lcl_hardness::{solve_pi_mb, PiInput, PiMb, Secret};
use lcl_lba::{machines, TapeSymbol};
use std::time::Instant;

fn main() {
    banner(
        "E-F2",
        "Figure 2 (incorrect encoding, Error² chain)",
        "corruption-site sweep: every corrupted input gets a valid error-chain output",
    );
    println!(
        "{:>3} {:>10} {:>12} {:>14}",
        "B", "sites", "E2 chains", "solve time"
    );
    for b in 3..=7usize {
        let problem = PiMb::new(machines::unary_counter(), b);
        let base = problem.good_input(Secret::A, 0).expect("halting machine");
        let mut chains = 0usize;
        let mut sites = 0usize;
        let t0 = Instant::now();
        for pos in 0..base.len() {
            let PiInput::Tape {
                content,
                state,
                head,
            } = base[pos]
            else {
                continue;
            };
            if head {
                continue;
            }
            sites += 1;
            let mut corrupted = base.clone();
            let flipped = if content == TapeSymbol::Zero {
                TapeSymbol::One
            } else {
                TapeSymbol::Zero
            };
            corrupted[pos] = PiInput::Tape {
                content: flipped,
                state,
                head,
            };
            let output = solve_pi_mb(&problem, &corrupted);
            assert!(problem.is_valid(&corrupted, &output), "B={b} pos={pos}");
            if output.iter().any(|o| o.error_family() == Some(2)) {
                chains += 1;
            }
        }
        println!(
            "{:>3} {:>10} {:>12} {:>14.2?}",
            b,
            sites,
            chains,
            t0.elapsed()
        );
    }
    println!("every corrupted input admits a locally checkable disproof ✓");
}
