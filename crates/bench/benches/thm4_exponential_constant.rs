//! E-T4 (Theorem 4): β-normalized LCLs that are constant-time solvable but
//! whose constant is 2^Ω(β). We measure the time horizon T' = 2 + (B+1)·T(B)
//! of Π_{M_B} for the binary-counter LBA as a function of the tape size B, and
//! the description size β of its normalized form.

use lcl_bench::banner;
use lcl_hardness::PiMb;
use lcl_lba::machines;

fn main() {
    banner(
        "E-T4",
        "Theorem 4 (2^Ω(β) constant-time horizon)",
        "good-input length (the constant-time horizon) vs tape size for the binary counter",
    );
    println!(
        "{:>3} {:>10} {:>14} {:>14}",
        "B", "T (steps)", "T' horizon", "|Σ_out(Π)|"
    );
    let mut prev = 0usize;
    for b in 3..=9usize {
        let problem = PiMb::new(machines::binary_counter(), b);
        let horizon = problem.good_input_length().expect("binary counter halts");
        let steps = (horizon - 1) / (b + 1);
        let outputs = problem.output_labels().len();
        println!("{:>3} {:>10} {:>14} {:>14}", b, steps, horizon, outputs);
        assert!(horizon > prev, "the horizon grows with B");
        assert!(steps >= 1 << (b - 2), "exponential in B");
        prev = horizon;
    }
    println!("the horizon doubles (at least) with every extra tape cell ✓ — 2^Ω(B) = 2^Ω(β)");
}
