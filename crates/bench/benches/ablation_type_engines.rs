//! E-X2 (ablation): the semigroup type engine vs the paper-literal
//! extendability-table engine — criterion timings of computing the type of a
//! word with each engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcl_problems::coloring;
use lcl_semigroup::{naive::NaiveTypeEngine, TransferSystem, TypeSemigroup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_engines(c: &mut Criterion) {
    let problem = coloring(3);
    let ts = TransferSystem::new(&problem);
    let sg = TypeSemigroup::compute(&ts, 100_000).expect("semigroup fits");
    let naive = NaiveTypeEngine::new(&problem);
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("type-of-a-12-letter-word");
    group.bench_function("semigroup-engine", |b| {
        b.iter_batched(
            || {
                (0..12)
                    .map(|_| lcl_problem::InLabel(rng.gen_range(0..1)))
                    .collect::<Vec<_>>()
            },
            |word| sg.type_of_word(&word).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let mut rng2 = StdRng::seed_from_u64(1);
    group.bench_function("paper-literal-engine", |b| {
        b.iter_batched(
            || {
                (0..12)
                    .map(|_| lcl_problem::InLabel(rng2.gen_range(0..1)))
                    .collect::<Vec<_>>()
            },
            |word| naive.type_of(&word),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_engines
}
criterion_main!(benches);
