//! C-CACHE: the sharded memo cache's three scalability claims, measured.
//!
//! 1. **O(1) eviction** — per-insert cost into a *full* cache (every insert
//!    evicts) must stay flat as the capacity grows 1k → 10k → 100k. "Flat"
//!    is asserted two ways, because wall-clock per-insert inevitably rises
//!    with the working set (at 100k entries the map outgrows the CPU caches
//!    and *any* bounded map pays DRAM latency per probe): (a) normalized by
//!    the irreducible churn cost of a plain `HashMap` remove+insert at the
//!    same capacity — identical memory-hierarchy regime, zero LRU machinery
//!    — the cache's overhead must stay within 2x from 1k to 100k; (b) the
//!    raw per-insert cost must stay within 4x, a backstop no O(entries)
//!    algorithm could sneak under (the old scan, reimplemented inline below,
//!    is already ~50x slower at 1k and ~500x at 10k). Eviction scanning the
//!    entries, the bug this PR deletes, fails both gates instantly.
//! 2. **Multi-thread hit throughput** — 4 threads hammering `get` on a warm
//!    cache at 1/4/8 shards. Shards split the lock, so on multi-core hosts
//!    throughput rises with the shard count; on this repository's 1-core
//!    benchmark container the numbers mostly show the lock-splitting is not
//!    a regression.
//! 3. **The hot-key read fast lane** — 1/4/8 threads hammering `get` on ONE
//!    key (the worst case sharding cannot help with: every hit lands on one
//!    shard). Two asserted gates, both designed to hold on the 1-core CI
//!    container where throughput numbers cannot show scaling: (a) at one
//!    thread the fast-lane read (RwLock read + `try_lock` touch: two lock
//!    words where the old path took one) stays within a small constant
//!    (< 3x) of the bare mutex-map probe *floor* — a floor no recency-
//!    tracking hit can actually reach — and the contention counter stays
//!    *flat* (`fast_hits == 0`: an uncontended `try_lock` never fails, so
//!    recency tracking is never skipped single-threaded); (b)
//!    under 8-thread contention the fast lane provably engages
//!    (`fast_hits > 0`: some hit found the LRU mutex busy and was served
//!    without blocking — the old code would have serialized there).

use lcl_bench::banner;
use lcl_classifier::ShardedLruCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Inserts per timed repetition of experiment 1.
const INSERTS: usize = 50_000;
/// Timed repetitions (best-of, to shed container noise).
const REPS: usize = 7;
/// Per-thread `get`s in experiment 2.
const GETS: usize = 200_000;
const THREADS: usize = 4;

/// Keys sized like the engine's real `structural_key()`s (the corpus keys
/// run 17–21 bytes): a 24-byte buffer carrying the counter.
fn key(i: u64) -> Vec<u8> {
    let mut k = vec![0u8; 24];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn main() {
    banner(
        "C-CACHE",
        "the sharded O(1)-LRU memo cache (this repository's addition)",
        "insert+evict cost vs capacity (flatness asserted), old-scan baseline, \
         multi-thread hits, one-key fast-lane proof",
    );

    let measured = insert_evict_vs_capacity();
    old_scan_baseline();
    hit_throughput_by_shards();
    one_key_hit_scaling();

    // The acceptance gates: O(1) eviction means capacity must not buy
    // per-insert cost beyond what the memory hierarchy charges any bounded
    // map. Checked last so the printout is complete on failure.
    let [(cache_1k, map_1k), _, (cache_100k, map_100k)] = measured;
    let raw = cache_100k.as_secs_f64() / cache_1k.as_secs_f64().max(1e-12);
    let normalized = (cache_100k.as_secs_f64() / map_100k.as_secs_f64().max(1e-12))
        / (cache_1k.as_secs_f64() / map_1k.as_secs_f64().max(1e-12)).max(1e-12);
    println!(
        "\nflatness 1k -> 100k: raw {raw:.2}x (gate < 4x); vs the plain-map churn floor \
         {normalized:.2}x (gate < 2x)"
    );
    assert!(
        normalized < 2.0,
        "LRU overhead over the hash-map churn floor must stay flat (within 2x) \
         from 1k to 100k capacity, got {normalized:.2}x"
    );
    assert!(
        raw < 4.0,
        "raw insert+evict cost grew {raw:.2}x from 1k to 100k capacity; \
         that is not O(1) eviction"
    );
}

/// Experiment 1: per-insert cost into a full cache at growing capacities,
/// next to the churn floor of a plain bounded `HashMap` (one remove + one
/// insert, no recency tracking) over the same keys at the same capacity.
/// All six (capacity, structure) cells are measured interleaved round-robin
/// with best-of-`REPS` per cell, so container-wide noise hits every cell
/// alike instead of biasing one side of a flatness ratio. Returns per
/// capacity the (sharded cache, plain map) per-insert costs.
fn insert_evict_vs_capacity() -> [(Duration, Duration); 3] {
    println!(
        "\n[1] insert+evict into a full cache (single shard, every insert evicts), \
         vs plain-map churn"
    );
    let capacities = [1_000usize, 10_000, 100_000];
    let caches: Vec<(ShardedLruCache<u64>, std::cell::Cell<u64>)> = capacities
        .iter()
        .map(|&capacity| {
            let cache = ShardedLruCache::new(capacity, 1);
            // Fill to capacity so every timed insert takes the eviction path.
            for i in 0..capacity as u64 {
                cache.insert(key(i), i);
            }
            (cache, std::cell::Cell::new(capacity as u64))
        })
        .collect();
    // The churn floor: a FIFO-bounded plain map — remove the key inserted
    // `capacity` ops ago, insert the fresh one. Same key sizes, same probe
    // count a bounded map cannot avoid, none of the LRU bookkeeping.
    let mut floors: Vec<(HashMap<Vec<u8>, u64>, u64)> = capacities
        .iter()
        .map(|&capacity| {
            let mut map = HashMap::new();
            for i in 0..capacity as u64 {
                map.insert(key(i), i);
            }
            (map, capacity as u64)
        })
        .collect();
    let mut cache_best = [Duration::MAX; 3];
    let mut floor_best = [Duration::MAX; 3];
    for _ in 0..REPS {
        for (at, (cache, next)) in caches.iter().enumerate() {
            let start = Instant::now();
            let mut n = next.get();
            for _ in 0..INSERTS {
                cache.insert(key(n), n);
                n += 1;
            }
            cache_best[at] = cache_best[at].min(start.elapsed());
            next.set(n);
        }
        for (at, &capacity) in capacities.iter().enumerate() {
            let (map, next) = &mut floors[at];
            let start = Instant::now();
            for _ in 0..INSERTS {
                map.remove(&key(*next - capacity as u64));
                map.insert(key(*next), *next);
                *next += 1;
            }
            floor_best[at] = floor_best[at].min(start.elapsed());
        }
    }
    let mut costs = [(Duration::ZERO, Duration::ZERO); 3];
    for (at, capacity) in capacities.into_iter().enumerate() {
        let per_insert = cache_best[at] / INSERTS as u32;
        let floor = floor_best[at] / INSERTS as u32;
        println!(
            "  capacity {capacity:>7}: {per_insert:>8.1?} per insert+evict  \
             (plain-map churn floor {floor:>8.1?}; {INSERTS} inserts, best of {REPS})"
        );
        let stats = caches[at].0.stats();
        assert_eq!(stats.entries, capacity, "cache must stay exactly full");
        assert_eq!(
            stats.entries as u64 + stats.evictions,
            stats.inserts,
            "books must balance: {stats}"
        );
        assert_eq!(floors[at].0.len(), capacity, "floor map must stay full");
        costs[at] = (per_insert, floor);
    }
    costs
}

/// Experiment 1b: the deleted design, reimplemented inline — a map whose
/// insert scans all entries for the smallest recency stamp. The per-insert
/// cost growing ~10x per decade of capacity is the curve the intrusive list
/// flattens. (Few inserts; at 100k capacity this would take minutes.)
fn old_scan_baseline() {
    println!(
        "\n[2] old-scan baseline (O(entries) victim scan on insert, as deleted from engine.rs)"
    );
    for capacity in [1_000usize, 10_000] {
        let mut map: HashMap<Vec<u8>, (u64, u64)> = HashMap::new(); // value, stamp
        let mut clock = 0u64;
        let mut next = 0u64;
        let mut scan_insert = |map: &mut HashMap<Vec<u8>, (u64, u64)>, next: &mut u64| {
            if map.len() >= capacity {
                let victim = map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k.clone())
                    .expect("full map has a victim");
                map.remove(&victim);
            }
            clock += 1;
            map.insert(key(*next), (*next, clock));
            *next += 1;
        };
        for _ in 0..capacity {
            scan_insert(&mut map, &mut next);
        }
        let timed = 2_000usize;
        let start = Instant::now();
        for _ in 0..timed {
            scan_insert(&mut map, &mut next);
        }
        let per_insert = start.elapsed() / timed as u32;
        println!(
            "  capacity {capacity:>7}: {per_insert:>8.1?} per insert+evict  ({timed} inserts)"
        );
    }
}

/// Experiment 2: aggregate hit throughput, 4 threads, shard count 1/4/8.
fn hit_throughput_by_shards() {
    println!("\n[3] warm-cache hit throughput, {THREADS} threads x {GETS} gets, by shard count");
    let capacity = 1_024usize;
    // Keys hash-route unevenly, so a working set at exactly `capacity` would
    // overflow some shard and evict; half capacity keeps every key resident
    // whatever the shard count, so the sweep measures pure hits.
    let working_set = (capacity / 2) as u64;
    for shards in [1usize, 4, 8] {
        let cache = ShardedLruCache::new(capacity, shards);
        for i in 0..working_set {
            cache.insert(key(i), i);
        }
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
                    for _ in 0..GETS {
                        let k = rng.gen_range(0..working_set);
                        assert!(cache.get(&key(k)).is_some(), "warm cache must hit");
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let total = (THREADS * GETS) as f64;
        let mops = total / elapsed.as_secs_f64() / 1e6;
        let stats = cache.stats();
        assert_eq!(stats.hits, (THREADS * GETS) as u64);
        println!(
            "  {} shard(s): {mops:>6.2} M hits/s  ({elapsed:.2?} total)",
            stats.shards
        );
    }
    println!("  (shards split the lock; gains need multiple cores — this container has one)");
}

/// Experiment 3: hits on ONE key — the case sharding cannot help with, and
/// the workload the read fast lane exists for. Wall-clock scaling is
/// invisible on a 1-core container, so both gates are counter-based:
/// single-threaded the contention counter must stay flat (`fast_hits == 0`,
/// every hit tracked recency) while staying within 3x of the bare mutex-map
/// probe floor (the fast lane takes two lock words — RwLock read plus the
/// touch's `try_lock` — where the old path took one, so ~2x the no-touch
/// floor is the expected constant and 3x is the regression backstop); under
/// 8-thread contention the fast lane must provably engage (`fast_hits > 0`
/// — a hit found the LRU mutex busy and was served without blocking on it).
fn one_key_hit_scaling() {
    println!("\n[4] one-key hit scaling (every hit lands on one shard's one entry)");
    let hot = key(0);

    // Single-threaded cost, interleaved best-of-REPS against the path the
    // fast lane replaced: one mutex around the whole map, lock + probe per
    // hit (the touch is a no-op for a key that is already the LRU head,
    // there and here alike).
    let cache = ShardedLruCache::new(16, 1);
    cache.insert(hot.clone(), 42u64);
    let mutex_map = std::sync::Mutex::new(HashMap::from([(hot.clone(), 42u64)]));
    let mut cache_best = Duration::MAX;
    let mut mutex_best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..GETS {
            assert_eq!(cache.get(&hot), Some(42), "the hot key must stay resident");
        }
        cache_best = cache_best.min(start.elapsed());
        let start = Instant::now();
        for _ in 0..GETS {
            let map = mutex_map
                .lock()
                .expect("bench-local mutex is never poisoned");
            assert_eq!(map.get(&hot).copied(), Some(42));
        }
        mutex_best = mutex_best.min(start.elapsed());
    }
    let stats = cache.stats();
    assert_eq!(
        stats.fast_hits, 0,
        "single-threaded, an uncontended try_lock never fails — the contention \
         counter must stay flat: {stats}"
    );
    assert_eq!(
        stats.locked_hits, stats.hits,
        "single-threaded, every hit takes the recency-tracking path: {stats}"
    );
    let per_get = cache_best / GETS as u32;
    let floor = mutex_best / GETS as u32;
    let ratio = cache_best.as_secs_f64() / mutex_best.as_secs_f64().max(1e-12);
    println!(
        "  1 thread: {per_get:>7.1?} per hit vs {floor:>7.1?} mutex-map probe floor \
         ({ratio:.2}x, gate < 3x); fast_hits 0 of {} hits",
        stats.hits
    );
    assert!(
        ratio < 3.0,
        "the fast-lane read (RwLock read + try_lock touch, two lock words) must \
         stay within 3x of the bare no-touch mutex-map probe floor, got {ratio:.2}x"
    );

    // Contended: 4 then 8 threads on the same single key. Throughput numbers
    // are printed for multi-core hosts; the asserted proof is the counter —
    // at 8 threads some hit must have found the LRU mutex busy and taken the
    // fast lane. One round is nearly always enough (any preemption inside a
    // touch's lock hold strands the other threads into try_lock failures for
    // a whole timeslice); the bounded retry shrugs off a lucky schedule.
    for threads in [4usize, 8] {
        let cache = ShardedLruCache::new(16, 1);
        cache.insert(hot.clone(), 42u64);
        let per_thread = 100_000usize;
        let mut first_round = Duration::ZERO;
        let mut rounds = 0usize;
        let stats = loop {
            rounds += 1;
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let cache = &cache;
                    let hot = &hot;
                    scope.spawn(move || {
                        for _ in 0..per_thread {
                            assert_eq!(cache.get(hot), Some(42), "hot key evaporated");
                        }
                    });
                }
            });
            if rounds == 1 {
                first_round = start.elapsed();
            }
            let stats = cache.stats();
            if stats.fast_hits > 0 || rounds >= 50 {
                break stats;
            }
        };
        let total = (threads * per_thread) as f64;
        let mops = total / first_round.as_secs_f64().max(1e-12) / 1e6;
        println!(
            "  {threads} threads: {mops:>6.2} M hits/s  (round 1 of {rounds}; \
             {} fast / {} locked hits)",
            stats.fast_hits, stats.locked_hits
        );
        assert_eq!(
            stats.hits,
            stats.fast_hits + stats.locked_hits,
            "pure-hit run: {stats}"
        );
        if threads == 8 {
            assert!(
                stats.fast_hits > 0,
                "8 threads on one key must drive some hit through the fast lane \
                 (try_lock found the LRU mutex busy), got none after {rounds} \
                 rounds: {stats}"
            );
        }
    }
}
