//! C-CACHE: the sharded memo cache's two scalability claims, measured.
//!
//! 1. **O(1) eviction** — per-insert cost into a *full* cache (every insert
//!    evicts) must stay flat as the capacity grows 1k → 10k → 100k. "Flat"
//!    is asserted two ways, because wall-clock per-insert inevitably rises
//!    with the working set (at 100k entries the map outgrows the CPU caches
//!    and *any* bounded map pays DRAM latency per probe): (a) normalized by
//!    the irreducible churn cost of a plain `HashMap` remove+insert at the
//!    same capacity — identical memory-hierarchy regime, zero LRU machinery
//!    — the cache's overhead must stay within 2x from 1k to 100k; (b) the
//!    raw per-insert cost must stay within 4x, a backstop no O(entries)
//!    algorithm could sneak under (the old scan, reimplemented inline below,
//!    is already ~50x slower at 1k and ~500x at 10k). Eviction scanning the
//!    entries, the bug this PR deletes, fails both gates instantly.
//! 2. **Multi-thread hit throughput** — 4 threads hammering `get` on a warm
//!    cache at 1/4/8 shards. Shards split the lock, so on multi-core hosts
//!    throughput rises with the shard count; on this repository's 1-core
//!    benchmark container the numbers mostly show the lock-splitting is not
//!    a regression.

use lcl_bench::banner;
use lcl_classifier::ShardedLruCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Inserts per timed repetition of experiment 1.
const INSERTS: usize = 50_000;
/// Timed repetitions (best-of, to shed container noise).
const REPS: usize = 7;
/// Per-thread `get`s in experiment 2.
const GETS: usize = 200_000;
const THREADS: usize = 4;

/// Keys sized like the engine's real `structural_key()`s (the corpus keys
/// run 17–21 bytes): a 24-byte buffer carrying the counter.
fn key(i: u64) -> Vec<u8> {
    let mut k = vec![0u8; 24];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn main() {
    banner(
        "C-CACHE",
        "the sharded O(1)-LRU memo cache (this repository's addition)",
        "insert+evict cost vs capacity (flatness asserted), old-scan baseline, multi-thread hits",
    );

    let measured = insert_evict_vs_capacity();
    old_scan_baseline();
    hit_throughput_by_shards();

    // The acceptance gates: O(1) eviction means capacity must not buy
    // per-insert cost beyond what the memory hierarchy charges any bounded
    // map. Checked last so the printout is complete on failure.
    let [(cache_1k, map_1k), _, (cache_100k, map_100k)] = measured;
    let raw = cache_100k.as_secs_f64() / cache_1k.as_secs_f64().max(1e-12);
    let normalized = (cache_100k.as_secs_f64() / map_100k.as_secs_f64().max(1e-12))
        / (cache_1k.as_secs_f64() / map_1k.as_secs_f64().max(1e-12)).max(1e-12);
    println!(
        "\nflatness 1k -> 100k: raw {raw:.2}x (gate < 4x); vs the plain-map churn floor \
         {normalized:.2}x (gate < 2x)"
    );
    assert!(
        normalized < 2.0,
        "LRU overhead over the hash-map churn floor must stay flat (within 2x) \
         from 1k to 100k capacity, got {normalized:.2}x"
    );
    assert!(
        raw < 4.0,
        "raw insert+evict cost grew {raw:.2}x from 1k to 100k capacity; \
         that is not O(1) eviction"
    );
}

/// Experiment 1: per-insert cost into a full cache at growing capacities,
/// next to the churn floor of a plain bounded `HashMap` (one remove + one
/// insert, no recency tracking) over the same keys at the same capacity.
/// All six (capacity, structure) cells are measured interleaved round-robin
/// with best-of-`REPS` per cell, so container-wide noise hits every cell
/// alike instead of biasing one side of a flatness ratio. Returns per
/// capacity the (sharded cache, plain map) per-insert costs.
fn insert_evict_vs_capacity() -> [(Duration, Duration); 3] {
    println!(
        "\n[1] insert+evict into a full cache (single shard, every insert evicts), \
         vs plain-map churn"
    );
    let capacities = [1_000usize, 10_000, 100_000];
    let caches: Vec<(ShardedLruCache<u64>, std::cell::Cell<u64>)> = capacities
        .iter()
        .map(|&capacity| {
            let cache = ShardedLruCache::new(capacity, 1);
            // Fill to capacity so every timed insert takes the eviction path.
            for i in 0..capacity as u64 {
                cache.insert(key(i), i);
            }
            (cache, std::cell::Cell::new(capacity as u64))
        })
        .collect();
    // The churn floor: a FIFO-bounded plain map — remove the key inserted
    // `capacity` ops ago, insert the fresh one. Same key sizes, same probe
    // count a bounded map cannot avoid, none of the LRU bookkeeping.
    let mut floors: Vec<(HashMap<Vec<u8>, u64>, u64)> = capacities
        .iter()
        .map(|&capacity| {
            let mut map = HashMap::new();
            for i in 0..capacity as u64 {
                map.insert(key(i), i);
            }
            (map, capacity as u64)
        })
        .collect();
    let mut cache_best = [Duration::MAX; 3];
    let mut floor_best = [Duration::MAX; 3];
    for _ in 0..REPS {
        for (at, (cache, next)) in caches.iter().enumerate() {
            let start = Instant::now();
            let mut n = next.get();
            for _ in 0..INSERTS {
                cache.insert(key(n), n);
                n += 1;
            }
            cache_best[at] = cache_best[at].min(start.elapsed());
            next.set(n);
        }
        for (at, &capacity) in capacities.iter().enumerate() {
            let (map, next) = &mut floors[at];
            let start = Instant::now();
            for _ in 0..INSERTS {
                map.remove(&key(*next - capacity as u64));
                map.insert(key(*next), *next);
                *next += 1;
            }
            floor_best[at] = floor_best[at].min(start.elapsed());
        }
    }
    let mut costs = [(Duration::ZERO, Duration::ZERO); 3];
    for (at, capacity) in capacities.into_iter().enumerate() {
        let per_insert = cache_best[at] / INSERTS as u32;
        let floor = floor_best[at] / INSERTS as u32;
        println!(
            "  capacity {capacity:>7}: {per_insert:>8.1?} per insert+evict  \
             (plain-map churn floor {floor:>8.1?}; {INSERTS} inserts, best of {REPS})"
        );
        let stats = caches[at].0.stats();
        assert_eq!(stats.entries, capacity, "cache must stay exactly full");
        assert_eq!(
            stats.entries as u64 + stats.evictions,
            stats.inserts,
            "books must balance: {stats}"
        );
        assert_eq!(floors[at].0.len(), capacity, "floor map must stay full");
        costs[at] = (per_insert, floor);
    }
    costs
}

/// Experiment 1b: the deleted design, reimplemented inline — a map whose
/// insert scans all entries for the smallest recency stamp. The per-insert
/// cost growing ~10x per decade of capacity is the curve the intrusive list
/// flattens. (Few inserts; at 100k capacity this would take minutes.)
fn old_scan_baseline() {
    println!(
        "\n[2] old-scan baseline (O(entries) victim scan on insert, as deleted from engine.rs)"
    );
    for capacity in [1_000usize, 10_000] {
        let mut map: HashMap<Vec<u8>, (u64, u64)> = HashMap::new(); // value, stamp
        let mut clock = 0u64;
        let mut next = 0u64;
        let mut scan_insert = |map: &mut HashMap<Vec<u8>, (u64, u64)>, next: &mut u64| {
            if map.len() >= capacity {
                let victim = map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k.clone())
                    .expect("full map has a victim");
                map.remove(&victim);
            }
            clock += 1;
            map.insert(key(*next), (*next, clock));
            *next += 1;
        };
        for _ in 0..capacity {
            scan_insert(&mut map, &mut next);
        }
        let timed = 2_000usize;
        let start = Instant::now();
        for _ in 0..timed {
            scan_insert(&mut map, &mut next);
        }
        let per_insert = start.elapsed() / timed as u32;
        println!(
            "  capacity {capacity:>7}: {per_insert:>8.1?} per insert+evict  ({timed} inserts)"
        );
    }
}

/// Experiment 2: aggregate hit throughput, 4 threads, shard count 1/4/8.
fn hit_throughput_by_shards() {
    println!("\n[3] warm-cache hit throughput, {THREADS} threads x {GETS} gets, by shard count");
    let capacity = 1_024usize;
    // Keys hash-route unevenly, so a working set at exactly `capacity` would
    // overflow some shard and evict; half capacity keeps every key resident
    // whatever the shard count, so the sweep measures pure hits.
    let working_set = (capacity / 2) as u64;
    for shards in [1usize, 4, 8] {
        let cache = ShardedLruCache::new(capacity, shards);
        for i in 0..working_set {
            cache.insert(key(i), i);
        }
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
                    for _ in 0..GETS {
                        let k = rng.gen_range(0..working_set);
                        assert!(cache.get(&key(k)).is_some(), "warm cache must hit");
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let total = (THREADS * GETS) as f64;
        let mops = total / elapsed.as_secs_f64() / 1e6;
        let stats = cache.stats();
        assert_eq!(stats.hits, (THREADS * GETS) as u64);
        println!(
            "  {} shard(s): {mops:>6.2} M hits/s  ({elapsed:.2?} total)",
            stats.shards
        );
    }
    println!("  (shards split the lock; gains need multiple cores — this container has one)");
}
