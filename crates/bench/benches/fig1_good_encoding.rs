//! E-F1 (Figure 1): encode the unary counter's execution as a good input of
//! Π_{M_B} and verify that the all-Start(φ) output satisfies constraints 1–12.

use lcl_bench::banner;
use lcl_hardness::{solve_pi_mb, PiInput, PiMb, PiOutput, Secret};
use lcl_lba::machines;
use std::time::Instant;

fn main() {
    banner(
        "E-F1",
        "Figure 1 (correct LBA encoding on a path)",
        "good-input length and verification time of the all-Start labeling, per tape size B",
    );
    println!(
        "{:>3} {:>10} {:>14} {:>14}",
        "B", "path len", "encode time", "verify time"
    );
    for b in 3..=8usize {
        let problem = PiMb::new(machines::unary_counter(), b);
        let t0 = Instant::now();
        let input = problem.good_input(Secret::A, 4).expect("halting machine");
        let encode = t0.elapsed();
        let output: Vec<PiOutput> = input
            .iter()
            .map(|i| match i {
                PiInput::Empty => PiOutput::Empty,
                _ => PiOutput::Start(Secret::A),
            })
            .collect();
        let t1 = Instant::now();
        let ok = problem.is_valid(&input, &output);
        let verify = t1.elapsed();
        assert!(ok, "Figure 1 labeling must be accepted");
        // The §3.3 solver reproduces exactly this labeling on good inputs.
        assert_eq!(solve_pi_mb(&problem, &input), output);
        println!(
            "{:>3} {:>10} {:>14.2?} {:>14.2?}",
            b,
            input.len(),
            encode,
            verify
        );
    }
    println!("all good-input labelings accepted ✓ (see EXPERIMENTS.md, E-F1)");
}
