//! E-T8 (Theorem 8): the ω(log* n) — o(n) gap is decidable. Classify the
//! corpus, report decision time and type counts, and measure the locality of
//! the synthesized Θ(log* n) algorithms across a size sweep.

use lcl_bench::{banner, random_cycle_network};
use lcl_classifier::{classify, Complexity};
use lcl_local_sim::{LocalAlgorithm, SyncSimulator};
use lcl_problems::corpus;
use std::time::Instant;

fn main() {
    banner(
        "E-T8",
        "Theorem 8 (decidability of the log*-vs-n gap)",
        "decision time per corpus problem; locality of synthesized Θ(log* n) algorithms",
    );
    println!(
        "{:>22} {:>12} {:>8} {:>12}",
        "problem", "class", "types", "decide time"
    );
    let mut logstar_algos = Vec::new();
    for entry in corpus() {
        let t0 = Instant::now();
        let verdict = classify(&entry.problem).expect("classification succeeds");
        let elapsed = t0.elapsed();
        println!(
            "{:>22} {:>12} {:>8} {:>12.2?}",
            entry.problem.name(),
            verdict.complexity().to_string(),
            verdict.num_types(),
            elapsed
        );
        if verdict.complexity() == Complexity::LogStar {
            logstar_algos.push((entry.problem.clone(), verdict));
        }
    }
    println!("\nlocality (view radius) of synthesized Θ(log* n) algorithms:");
    println!(
        "{:>22} {:>8} {:>8} {:>8} {:>8}",
        "problem", "n=2^8", "n=2^12", "n=2^16", "n=2^20"
    );
    for (problem, verdict) in &logstar_algos {
        let radii: Vec<usize> = [8u32, 12, 16, 20]
            .iter()
            .map(|&e| verdict.algorithm().radius(1usize << e))
            .collect();
        println!(
            "{:>22} {:>8} {:>8} {:>8} {:>8}",
            problem.name(),
            radii[0],
            radii[1],
            radii[2],
            radii[3]
        );
    }
    // Execute one synthesized algorithm end to end.
    if let Some((problem, verdict)) = logstar_algos.first() {
        let net = random_cycle_network(300, problem.num_inputs(), 5);
        let t0 = Instant::now();
        let out = SyncSimulator::new()
            .run(&net, verdict.algorithm())
            .expect("run");
        assert!(problem.is_valid(net.instance(), &out));
        println!(
            "\nran {} on a 300-node cycle in {:.2?}: valid ✓",
            problem.name(),
            t0.elapsed()
        );
    }
}
