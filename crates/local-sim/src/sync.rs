//! The ball-view simulator: materializes each node's view and applies the
//! algorithm's output function.

use crate::{BallView, LocalAlgorithm, Network, Result, SimError};
use lcl_problem::{Labeling, Topology};

/// The centralized LOCAL simulator.
///
/// Building a radius-`T` view costs `O(T)` per node, so one run costs
/// `O(n · T)` — matching the information-theoretic content of `T` LOCAL
/// rounds.
#[derive(Clone, Debug)]
pub struct SyncSimulator {
    radius_cap: usize,
}

impl Default for SyncSimulator {
    fn default() -> Self {
        SyncSimulator {
            radius_cap: 1 << 22,
        }
    }
}

impl SyncSimulator {
    /// Creates a simulator with the default safety cap on view radii.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a simulator with an explicit cap on view radii; algorithms
    /// requesting more are rejected rather than looping for hours.
    pub fn with_radius_cap(radius_cap: usize) -> Self {
        SyncSimulator { radius_cap }
    }

    /// Builds the radius-`radius` ball view of node `i`.
    ///
    /// On cycles the view wraps; if the radius exceeds the cycle length the
    /// view simply contains every node (possibly more than once on tiny
    /// cycles, mirroring what a node would actually see when messages travel
    /// around the cycle).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn view(&self, network: &Network, i: usize, radius: usize) -> BallView {
        let inst = network.instance();
        let n = inst.len();
        assert!(i < n, "node index out of range");
        let mut left = Vec::new();
        let mut right = Vec::new();
        match inst.topology() {
            Topology::Cycle => {
                let reach = radius.min(n.saturating_sub(1));
                let mut p = i;
                for _ in 0..reach {
                    p = (p + n - 1) % n;
                    left.push((network.id(p), inst.input(p)));
                }
                let mut s = i;
                for _ in 0..reach {
                    s = (s + 1) % n;
                    right.push((network.id(s), inst.input(s)));
                }
                // On cycles, pad to the full radius by continuing around; a
                // node that has seen the whole cycle knows everything, so the
                // padded entries are genuine knowledge, not fabrication.
                let mut p2 = p;
                while left.len() < radius && n > 0 {
                    p2 = (p2 + n - 1) % n;
                    left.push((network.id(p2), inst.input(p2)));
                }
                let mut s2 = s;
                while right.len() < radius && n > 0 {
                    s2 = (s2 + 1) % n;
                    right.push((network.id(s2), inst.input(s2)));
                }
            }
            Topology::Path => {
                let mut p = i;
                while left.len() < radius && p > 0 {
                    p -= 1;
                    left.push((network.id(p), inst.input(p)));
                }
                let mut s = i;
                while right.len() < radius && s + 1 < n {
                    s += 1;
                    right.push((network.id(s), inst.input(s)));
                }
            }
        }
        BallView {
            n,
            radius,
            center: (network.id(i), inst.input(i)),
            left,
            right,
        }
    }

    /// Runs the algorithm on every node of the network and collects the
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RadiusTooLarge`] if the algorithm requests a view
    /// radius beyond the simulator's cap.
    pub fn run<A: LocalAlgorithm + ?Sized>(
        &self,
        network: &Network,
        algorithm: &A,
    ) -> Result<Labeling> {
        let n = network.len();
        let radius = algorithm.radius(n);
        if radius > self.radius_cap {
            return Err(SimError::RadiusTooLarge {
                radius,
                cap: self.radius_cap,
            });
        }
        let mut outputs = Vec::with_capacity(n);
        for i in 0..n {
            let view = self.view(network, i, radius);
            outputs.push(algorithm.compute(&view));
        }
        Ok(Labeling::new(outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnAlgorithm;
    use lcl_problem::{InLabel, Instance, OutLabel};

    fn cycle_net(inputs: &[u16]) -> Network {
        Network::with_sequential_ids(Instance::from_indices(Topology::Cycle, inputs))
    }

    fn path_net(inputs: &[u16]) -> Network {
        Network::with_sequential_ids(Instance::from_indices(Topology::Path, inputs))
    }

    #[test]
    fn views_wrap_on_cycles() {
        let net = cycle_net(&[0, 1, 2, 3]);
        let sim = SyncSimulator::new();
        let v = sim.view(&net, 0, 2);
        assert_eq!(v.input_at(-1), Some(InLabel(3)));
        assert_eq!(v.input_at(-2), Some(InLabel(2)));
        assert_eq!(v.input_at(1), Some(InLabel(1)));
        assert_eq!(v.input_at(2), Some(InLabel(2)));
        assert!(!v.sees_path_start());
        assert!(!v.sees_path_end());
    }

    #[test]
    fn views_clip_on_paths() {
        let net = path_net(&[0, 1, 2, 3]);
        let sim = SyncSimulator::new();
        let v = sim.view(&net, 1, 3);
        assert_eq!(v.left.len(), 1);
        assert_eq!(v.right.len(), 2);
        assert!(v.sees_path_start());
        assert!(v.sees_path_end());
        assert_eq!(v.distance_to_start(), Some(1));
        assert_eq!(v.distance_to_end(), Some(2));
    }

    #[test]
    fn huge_radius_on_cycle_sees_everything() {
        let net = cycle_net(&[0, 1, 2]);
        let sim = SyncSimulator::new();
        let v = sim.view(&net, 0, 10);
        assert_eq!(v.left.len(), 10);
        assert_eq!(v.right.len(), 10);
        // The wrap repeats the cycle content.
        assert_eq!(v.input_at(3), Some(InLabel(0)));
        assert_eq!(v.input_at(4), Some(InLabel(1)));
    }

    #[test]
    fn run_applies_algorithm_at_every_node() {
        let net = cycle_net(&[0, 1, 0, 1]);
        let sim = SyncSimulator::new();
        // Output = predecessor's input.
        let alg = FnAlgorithm::new(
            "pred-input",
            |_| 1,
            |v: &BallView| OutLabel(v.input_at(-1).map(|l| l.0).unwrap_or(9)),
        );
        let out = sim.run(&net, &alg).unwrap();
        assert_eq!(
            out.outputs(),
            &[OutLabel(1), OutLabel(0), OutLabel(1), OutLabel(0)]
        );
    }

    #[test]
    fn radius_cap_enforced() {
        let net = cycle_net(&[0; 8]);
        let sim = SyncSimulator::with_radius_cap(4);
        let alg = FnAlgorithm::new("greedy", |n| n * 10, |_: &BallView| OutLabel(0));
        assert!(matches!(
            sim.run(&net, &alg),
            Err(SimError::RadiusTooLarge { .. })
        ));
    }

    #[test]
    fn path_endpoint_views() {
        let net = path_net(&[5, 6, 7]);
        let sim = SyncSimulator::new();
        let v0 = sim.view(&net, 0, 2);
        assert_eq!(v0.distance_to_start(), Some(0));
        assert_eq!(v0.left.len(), 0);
        let v2 = sim.view(&net, 2, 2);
        assert_eq!(v2.distance_to_end(), Some(0));
        assert_eq!(v2.input_at(-2), Some(InLabel(5)));
    }
}
