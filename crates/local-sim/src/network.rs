//! Communication networks: an instance plus unique node identifiers.

use crate::{Result, SimError};
use lcl_problem::Instance;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// How node identifiers are assigned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdAssignment {
    /// Node `i` gets identifier `i + 1`.
    Sequential,
    /// A random permutation of `1..=c·n` restricted to `n` values, matching
    /// the LOCAL model's polynomially-bounded identifier space (the paper uses
    /// `O(log n)`-bit identifiers).
    RandomFromSpace {
        /// Multiplier `c ≥ 1`: the identifier space is `1..=c·n`.
        multiplier: u64,
    },
    /// Explicit identifiers supplied by the caller.
    Explicit(Vec<u64>),
}

/// An input-labeled path or cycle together with unique node identifiers: the
/// "computer network" of the paper's introduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Network {
    instance: Instance,
    ids: Vec<u64>,
}

impl Network {
    /// Creates a network with sequential identifiers `1..=n`.
    pub fn with_sequential_ids(instance: Instance) -> Self {
        let ids = (1..=instance.len() as u64).collect();
        Network { instance, ids }
    }

    /// Creates a network with identifiers assigned according to `assignment`,
    /// using `rng` for the random variants.
    ///
    /// # Errors
    ///
    /// Returns an error if explicit identifiers are not unique or do not match
    /// the instance length, or if the identifier space is too small.
    pub fn new<R: Rng + ?Sized>(
        instance: Instance,
        assignment: IdAssignment,
        rng: &mut R,
    ) -> Result<Self> {
        let n = instance.len();
        let ids = match assignment {
            IdAssignment::Sequential => (1..=n as u64).collect(),
            IdAssignment::RandomFromSpace { multiplier } => {
                let multiplier = multiplier.max(1);
                let space = (n as u64).saturating_mul(multiplier);
                if space < n as u64 {
                    return Err(SimError::IdSpaceTooSmall { nodes: n, space });
                }
                let mut pool: Vec<u64> = (1..=space).collect();
                pool.shuffle(rng);
                pool.truncate(n);
                pool
            }
            IdAssignment::Explicit(ids) => {
                if ids.len() != n {
                    return Err(SimError::LengthMismatch {
                        expected: n,
                        got: ids.len(),
                    });
                }
                ids
            }
        };
        let distinct: HashSet<u64> = ids.iter().copied().collect();
        if distinct.len() != ids.len() {
            return Err(SimError::DuplicateIds);
        }
        Ok(Network { instance, ids })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// The identifier of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// All identifiers in node order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize) -> Instance {
        Instance::from_indices(Topology::Cycle, &vec![0; n])
    }

    #[test]
    fn sequential_ids() {
        let net = Network::with_sequential_ids(instance(4));
        assert_eq!(net.ids(), &[1, 2, 3, 4]);
        assert_eq!(net.id(2), 3);
        assert_eq!(net.len(), 4);
        assert!(!net.is_empty());
        assert_eq!(net.instance().topology(), Topology::Cycle);
    }

    #[test]
    fn random_ids_are_unique_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Network::new(
            instance(50),
            IdAssignment::RandomFromSpace { multiplier: 10 },
            &mut rng,
        )
        .unwrap();
        let set: HashSet<u64> = net.ids().iter().copied().collect();
        assert_eq!(set.len(), 50);
        assert!(net.ids().iter().all(|&id| (1..=500).contains(&id)));
    }

    #[test]
    fn explicit_ids_validation() {
        let mut rng = StdRng::seed_from_u64(7);
        let ok = Network::new(
            instance(3),
            IdAssignment::Explicit(vec![10, 20, 30]),
            &mut rng,
        );
        assert!(ok.is_ok());
        let dup = Network::new(
            instance(3),
            IdAssignment::Explicit(vec![10, 10, 30]),
            &mut rng,
        );
        assert_eq!(dup.unwrap_err(), SimError::DuplicateIds);
        let wrong_len = Network::new(instance(3), IdAssignment::Explicit(vec![1]), &mut rng);
        assert!(matches!(
            wrong_len.unwrap_err(),
            SimError::LengthMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn sequential_via_new() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Network::new(instance(5), IdAssignment::Sequential, &mut rng).unwrap();
        assert_eq!(net.ids(), &[1, 2, 3, 4, 5]);
    }
}
