//! The message-passing simulator: one thread per node, crossbeam channels on
//! every edge, explicit synchronous rounds.
//!
//! Protocol: in round `t` each node forwards to its successor the information
//! it learned about its `(t−1)`-th predecessor in the previous round (its own
//! identifier and input in round 1), and symmetrically towards its
//! predecessor. Path endpoints forward an explicit "no node there" marker so
//! that endpoint knowledge propagates exactly as it would in the real LOCAL
//! model. After `T` rounds each node has assembled precisely its radius-`T`
//! ball view and applies the algorithm's output function.
//!
//! The [`ActorSimulator`] is intentionally literal rather than fast; the
//! `ablation_simulators` bench and the cross-check tests compare it against
//! [`crate::SyncSimulator`].

use crate::{BallView, LocalAlgorithm, Network, Result, SimError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lcl_problem::{InLabel, Labeling, OutLabel, Topology};
use parking_lot::Mutex;
use std::thread;

/// One hop's worth of gossip: the `(id, input)` of some node, or `None` when
/// the path ends before that offset.
type Gossip = Option<(u64, InLabel)>;

/// The explicit message-passing LOCAL simulator.
#[derive(Clone, Debug)]
pub struct ActorSimulator {
    radius_cap: usize,
    node_cap: usize,
}

impl Default for ActorSimulator {
    fn default() -> Self {
        ActorSimulator {
            radius_cap: 1 << 14,
            node_cap: 1 << 14,
        }
    }
}

impl ActorSimulator {
    /// Creates a simulator with default caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a simulator with explicit caps on the view radius and the
    /// number of nodes (each node is a thread).
    pub fn with_caps(radius_cap: usize, node_cap: usize) -> Self {
        ActorSimulator {
            radius_cap,
            node_cap,
        }
    }

    /// Runs the algorithm by spawning one thread per node and exchanging
    /// messages for `algorithm.radius(n)` rounds.
    ///
    /// # Errors
    ///
    /// Returns an error if the radius or node caps are exceeded, or if a node
    /// thread fails.
    pub fn run<A>(&self, network: &Network, algorithm: &A) -> Result<Labeling>
    where
        A: LocalAlgorithm + Sync + ?Sized,
    {
        let n = network.len();
        if n == 0 {
            return Ok(Labeling::new(vec![]));
        }
        if n > self.node_cap {
            return Err(SimError::ActorFailure {
                what: format!("{n} nodes exceed the actor cap of {}", self.node_cap),
            });
        }
        let radius = algorithm.radius(n);
        if radius > self.radius_cap {
            return Err(SimError::RadiusTooLarge {
                radius,
                cap: self.radius_cap,
            });
        }

        let inst = network.instance();
        let is_cycle = inst.topology() == Topology::Cycle;

        // Channels: to_succ[i] carries messages from node i to node i+1;
        // to_pred[i] carries messages from node i to node i-1 (indices mod n
        // on cycles). On paths the channels at the ends exist but are unused.
        let mut to_succ_tx: Vec<Sender<Gossip>> = Vec::with_capacity(n);
        let mut to_succ_rx: Vec<Receiver<Gossip>> = Vec::with_capacity(n);
        let mut to_pred_tx: Vec<Sender<Gossip>> = Vec::with_capacity(n);
        let mut to_pred_rx: Vec<Receiver<Gossip>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            to_succ_tx.push(tx);
            to_succ_rx.push(rx);
            let (tx, rx) = unbounded();
            to_pred_tx.push(tx);
            to_pred_rx.push(rx);
        }

        let outputs = Mutex::new(vec![OutLabel(0); n]);
        let failures = Mutex::new(Vec::<String>::new());

        thread::scope(|scope| {
            for i in 0..n {
                // Node i sends on to_succ_tx[i] and to_pred_tx[i];
                // it receives from its predecessor's to_succ channel and its
                // successor's to_pred channel.
                let send_right = to_succ_tx[i].clone();
                let send_left = to_pred_tx[i].clone();
                let pred = if i == 0 {
                    if is_cycle {
                        Some(n - 1)
                    } else {
                        None
                    }
                } else {
                    Some(i - 1)
                };
                let succ = if i + 1 == n {
                    if is_cycle {
                        Some(0)
                    } else {
                        None
                    }
                } else {
                    Some(i + 1)
                };
                let recv_from_left = pred.map(|p| to_succ_rx[p].clone());
                let recv_from_right = succ.map(|s| to_pred_rx[s].clone());
                let my_id = network.id(i);
                let my_input = inst.input(i);
                let outputs = &outputs;
                let failures = &failures;
                let algorithm = &algorithm;

                scope.spawn(move || {
                    let mut left: Vec<Gossip> = Vec::with_capacity(radius);
                    let mut right: Vec<Gossip> = Vec::with_capacity(radius);
                    for round in 0..radius {
                        // What do I forward this round?
                        let rightbound: Gossip = if round == 0 {
                            Some((my_id, my_input))
                        } else {
                            left.get(round - 1).copied().flatten()
                        };
                        let leftbound: Gossip = if round == 0 {
                            Some((my_id, my_input))
                        } else {
                            right.get(round - 1).copied().flatten()
                        };
                        // Send (ignore send errors to absent neighbours).
                        if succ.is_some() {
                            let _ = send_right.send(rightbound);
                        }
                        if pred.is_some() {
                            let _ = send_left.send(leftbound);
                        }
                        // Receive.
                        let from_left: Gossip = match &recv_from_left {
                            Some(rx) => match rx.recv() {
                                Ok(msg) => msg,
                                Err(_) => {
                                    failures
                                        .lock()
                                        .push(format!("node {i}: left channel closed"));
                                    None
                                }
                            },
                            None => None,
                        };
                        let from_right: Gossip = match &recv_from_right {
                            Some(rx) => match rx.recv() {
                                Ok(msg) => msg,
                                Err(_) => {
                                    failures
                                        .lock()
                                        .push(format!("node {i}: right channel closed"));
                                    None
                                }
                            },
                            None => None,
                        };
                        left.push(from_left);
                        right.push(from_right);
                    }
                    let view = BallView {
                        n,
                        radius,
                        center: (my_id, my_input),
                        left: left.into_iter().map_while(|g| g).collect(),
                        right: right.into_iter().map_while(|g| g).collect(),
                    };
                    let out = algorithm.compute(&view);
                    outputs.lock()[i] = out;
                });
            }
        });

        let failures = failures.into_inner();
        if let Some(first) = failures.into_iter().next() {
            return Err(SimError::ActorFailure { what: first });
        }
        Ok(Labeling::new(outputs.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, SyncSimulator};
    use lcl_problem::Instance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_network(n: usize, topology: Topology, alpha: u16, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..alpha)).collect();
        Network::with_sequential_ids(Instance::from_indices(topology, &inputs))
    }

    /// An algorithm that serializes its entire view; used to compare the two
    /// simulators bit by bit.
    fn view_fingerprint_algorithm(radius: usize) -> impl LocalAlgorithm + Sync {
        FnAlgorithm::new(
            "view-fingerprint",
            move |_| radius,
            move |v: &BallView| {
                let mut h: u64 = 17;
                let mut mix = |x: u64| {
                    h = h.wrapping_mul(31).wrapping_add(x + 1);
                };
                mix(v.center.0);
                mix(u64::from(v.center.1 .0));
                for &(id, l) in &v.left {
                    mix(id);
                    mix(u64::from(l.0));
                }
                mix(999);
                for &(id, l) in &v.right {
                    mix(id);
                    mix(u64::from(l.0));
                }
                mix(v.left.len() as u64);
                mix(v.right.len() as u64);
                OutLabel((h % 251) as u16)
            },
        )
    }

    #[test]
    fn agrees_with_sync_simulator_on_cycles() {
        for radius in [0usize, 1, 2, 3, 5] {
            let net = random_network(17, Topology::Cycle, 3, radius as u64);
            let alg = view_fingerprint_algorithm(radius);
            let sync = SyncSimulator::new().run(&net, &alg).unwrap();
            let actor = ActorSimulator::new().run(&net, &alg).unwrap();
            assert_eq!(sync, actor, "radius {radius}");
        }
    }

    #[test]
    fn agrees_with_sync_simulator_on_paths() {
        for radius in [0usize, 1, 2, 4] {
            let net = random_network(11, Topology::Path, 2, 100 + radius as u64);
            let alg = view_fingerprint_algorithm(radius);
            let sync = SyncSimulator::new().run(&net, &alg).unwrap();
            let actor = ActorSimulator::new().run(&net, &alg).unwrap();
            assert_eq!(sync, actor, "radius {radius}");
        }
    }

    #[test]
    fn empty_network() {
        let net = Network::with_sequential_ids(Instance::cycle(vec![]));
        let alg = view_fingerprint_algorithm(2);
        let out = ActorSimulator::new().run(&net, &alg).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn caps_are_enforced() {
        let net = random_network(10, Topology::Cycle, 2, 1);
        let alg = view_fingerprint_algorithm(100);
        let sim = ActorSimulator::with_caps(10, 1000);
        assert!(matches!(
            sim.run(&net, &alg),
            Err(SimError::RadiusTooLarge { .. })
        ));
        let tiny = ActorSimulator::with_caps(1000, 4);
        assert!(matches!(
            tiny.run(&net, &alg),
            Err(SimError::ActorFailure { .. })
        ));
    }
}
