//! Error type for the simulator crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the LOCAL simulators.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The requested ID assignment cannot produce enough distinct identifiers.
    IdSpaceTooSmall {
        /// Number of nodes that need identifiers.
        nodes: usize,
        /// Size of the identifier space.
        space: u64,
    },
    /// Identifiers are not unique.
    DuplicateIds,
    /// The network and another argument disagree on the number of nodes.
    LengthMismatch {
        /// Expected number of nodes.
        expected: usize,
        /// Number of entries provided.
        got: usize,
    },
    /// The algorithm requested a radius so large the simulation would not
    /// terminate in reasonable time (guards against runaway `radius()`).
    RadiusTooLarge {
        /// The requested radius.
        radius: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A worker thread of the actor simulator panicked or disconnected.
    ActorFailure {
        /// Description of the failure.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IdSpaceTooSmall { nodes, space } => {
                write!(
                    f,
                    "cannot assign {nodes} unique ids from a space of {space}"
                )
            }
            SimError::DuplicateIds => write!(f, "node identifiers are not unique"),
            SimError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
            SimError::RadiusTooLarge { radius, cap } => {
                write!(f, "algorithm requested radius {radius}, cap is {cap}")
            }
            SimError::ActorFailure { what } => write!(f, "actor simulator failure: {what}"),
        }
    }
}

impl StdError for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::DuplicateIds.to_string().contains("unique"));
        assert!(SimError::IdSpaceTooSmall { nodes: 5, space: 3 }
            .to_string()
            .contains("5"));
        assert!(SimError::LengthMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("got 3"));
        assert!(SimError::RadiusTooLarge { radius: 9, cap: 4 }
            .to_string()
            .contains("cap is 4"));
        assert!(SimError::ActorFailure {
            what: "oops".into()
        }
        .to_string()
        .contains("oops"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
