//! # lcl-local-sim
//!
//! A simulator for the deterministic LOCAL model of distributed computing on
//! input-labeled directed paths and cycles (paper §2).
//!
//! In the LOCAL model, computation proceeds in synchronous rounds; in each
//! round every node exchanges arbitrarily large messages with its neighbours
//! and updates its state. Because messages are unbounded, a `T(n)`-round
//! algorithm is equivalent to a function from radius-`T(n)` neighbourhood
//! views to outputs — the paper's own formulation. This crate provides both
//! operational models:
//!
//! * [`SyncSimulator`] — the ball-view formulation: it materializes each
//!   node's [`BallView`] and applies the algorithm's output function. This is
//!   the fast simulator used by the benchmarks.
//! * [`ActorSimulator`] — an explicit message-passing implementation on
//!   crossbeam channels, one thread per node, exchanging neighbourhood
//!   knowledge round by round. It exists as an operational cross-check of the
//!   ball-view simulator (see the `ablation_simulators` bench) and as a more
//!   faithful rendition of "a computer network that consists of a path".
//!
//! Algorithms implement the [`LocalAlgorithm`] trait; [`Network`] couples a
//! problem [`Instance`](lcl_problem::Instance) with unique node identifiers
//! from a polynomially-sized ID space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod algorithm;
mod error;
mod measure;
mod network;
mod sync;
mod view;

pub use actor::ActorSimulator;
pub use algorithm::{FnAlgorithm, LocalAlgorithm};
pub use error::SimError;
pub use measure::{
    locality_curve, log_star, validate_algorithm, LocalityMeasurement, ValidationOutcome,
};
pub use network::{IdAssignment, Network};
pub use sync::SyncSimulator;
pub use view::BallView;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
