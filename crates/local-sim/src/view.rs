//! Ball views: everything a node learns after `T` communication rounds.

use lcl_problem::InLabel;

/// The radius-`T` view of one node: its own identifier and input, the
/// identifiers and inputs of up to `T` predecessors and up to `T` successors,
/// the total number of nodes `n` (global knowledge in the LOCAL model), and
/// whether either endpoint of a path became visible.
///
/// Offsets are directed: offset `-k` is the `k`-th predecessor, offset `+k`
/// the `k`-th successor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BallView {
    /// Total number of nodes in the network.
    pub n: usize,
    /// The radius that was collected.
    pub radius: usize,
    /// `(id, input)` of the node itself.
    pub center: (u64, InLabel),
    /// `(id, input)` of predecessors, nearest first (`left[0]` is offset −1).
    /// Shorter than `radius` only if the start of a path was reached.
    pub left: Vec<(u64, InLabel)>,
    /// `(id, input)` of successors, nearest first (`right[0]` is offset +1).
    /// Shorter than `radius` only if the end of a path was reached.
    pub right: Vec<(u64, InLabel)>,
}

impl BallView {
    /// `(id, input)` at the given signed offset from the centre, if visible.
    pub fn at(&self, offset: isize) -> Option<(u64, InLabel)> {
        if offset == 0 {
            Some(self.center)
        } else if offset < 0 {
            self.left.get((-offset - 1) as usize).copied()
        } else {
            self.right.get((offset - 1) as usize).copied()
        }
    }

    /// The input label at the given offset, if visible.
    pub fn input_at(&self, offset: isize) -> Option<InLabel> {
        self.at(offset).map(|(_, l)| l)
    }

    /// The identifier at the given offset, if visible.
    pub fn id_at(&self, offset: isize) -> Option<u64> {
        self.at(offset).map(|(id, _)| id)
    }

    /// `true` if the view reaches the first node of a path (the node itself
    /// may be that first node).
    pub fn sees_path_start(&self) -> bool {
        self.left.len() < self.radius
    }

    /// `true` if the view reaches the last node of a path.
    pub fn sees_path_end(&self) -> bool {
        self.right.len() < self.radius
    }

    /// Distance to the first node of the path if visible: `Some(k)` means the
    /// centre is the `k`-th node (0-based) of the path.
    pub fn distance_to_start(&self) -> Option<usize> {
        if self.sees_path_start() {
            Some(self.left.len())
        } else {
            None
        }
    }

    /// Distance to the last node of the path if visible.
    pub fn distance_to_end(&self) -> Option<usize> {
        if self.sees_path_end() {
            Some(self.right.len())
        } else {
            None
        }
    }

    /// The window of inputs from offset `-k` to offset `+k` (clipped at path
    /// endpoints), together with the index of the centre within that window.
    pub fn input_window(&self, k: usize) -> (usize, Vec<InLabel>) {
        let left_take = k.min(self.left.len());
        let mut inputs = Vec::with_capacity(2 * k + 1);
        for i in (0..left_take).rev() {
            inputs.push(self.left[i].1);
        }
        let center_pos = left_take;
        inputs.push(self.center.1);
        for i in 0..k.min(self.right.len()) {
            inputs.push(self.right[i].1);
        }
        (center_pos, inputs)
    }

    /// Restricts the view to a smaller radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the view's radius.
    pub fn shrink(&self, radius: usize) -> BallView {
        assert!(radius <= self.radius, "cannot grow a view by shrinking");
        BallView {
            n: self.n,
            radius,
            center: self.center,
            left: self.left.iter().copied().take(radius).collect(),
            right: self.right.iter().copied().take(radius).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> BallView {
        BallView {
            n: 100,
            radius: 3,
            center: (50, InLabel(5)),
            left: vec![(40, InLabel(4)), (30, InLabel(3))],
            right: vec![(60, InLabel(6)), (70, InLabel(7)), (80, InLabel(8))],
        }
    }

    #[test]
    fn offsets() {
        let v = view();
        assert_eq!(v.at(0), Some((50, InLabel(5))));
        assert_eq!(v.at(-1), Some((40, InLabel(4))));
        assert_eq!(v.at(-2), Some((30, InLabel(3))));
        assert_eq!(v.at(-3), None);
        assert_eq!(v.at(3), Some((80, InLabel(8))));
        assert_eq!(v.input_at(1), Some(InLabel(6)));
        assert_eq!(v.id_at(2), Some(70));
        assert_eq!(v.id_at(9), None);
    }

    #[test]
    fn endpoint_detection() {
        let v = view();
        assert!(v.sees_path_start());
        assert!(!v.sees_path_end());
        assert_eq!(v.distance_to_start(), Some(2));
        assert_eq!(v.distance_to_end(), None);
    }

    #[test]
    fn input_window_clips() {
        let v = view();
        let (center, inputs) = v.input_window(3);
        assert_eq!(center, 2);
        assert_eq!(
            inputs,
            vec![
                InLabel(3),
                InLabel(4),
                InLabel(5),
                InLabel(6),
                InLabel(7),
                InLabel(8)
            ]
        );
        let (center1, inputs1) = v.input_window(1);
        assert_eq!(center1, 1);
        assert_eq!(inputs1, vec![InLabel(4), InLabel(5), InLabel(6)]);
    }

    #[test]
    fn shrink_view() {
        let v = view();
        let s = v.shrink(1);
        assert_eq!(s.left.len(), 1);
        assert_eq!(s.right.len(), 1);
        assert_eq!(s.radius, 1);
        assert!(!s.sees_path_start());
    }

    #[test]
    #[should_panic]
    fn shrink_beyond_radius_panics() {
        let _ = view().shrink(9);
    }
}
