//! The interface implemented by every distributed algorithm that runs on the
//! simulators.

use crate::BallView;
use lcl_problem::OutLabel;

/// A deterministic LOCAL algorithm on directed paths/cycles.
///
/// A `T(n)`-round algorithm is a function from radius-`T(n)` ball views to
/// output labels (paper §2). The trait exposes the radius and the output
/// function separately so that simulators can gather exactly the required
/// neighbourhood.
///
/// Implementors must be deterministic: two calls with identical views must
/// return identical outputs. The simulators rely on this when cross-checking.
pub trait LocalAlgorithm {
    /// The number of communication rounds (equivalently, the view radius) the
    /// algorithm uses on networks with `n` nodes.
    fn radius(&self, n: usize) -> usize;

    /// Computes the node's output from its radius-`radius(n)` view.
    fn compute(&self, view: &BallView) -> OutLabel;

    /// A human-readable name, used in reports and benchmarks.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// A [`LocalAlgorithm`] built from closures; convenient for tests and for the
/// "trivial" algorithms of the paper (gather everything, decide locally).
pub struct FnAlgorithm<R, F>
where
    R: Fn(usize) -> usize,
    F: Fn(&BallView) -> OutLabel,
{
    name: String,
    radius: R,
    compute: F,
}

impl<R, F> FnAlgorithm<R, F>
where
    R: Fn(usize) -> usize,
    F: Fn(&BallView) -> OutLabel,
{
    /// Creates an algorithm from a radius function and an output function.
    pub fn new(name: impl Into<String>, radius: R, compute: F) -> Self {
        FnAlgorithm {
            name: name.into(),
            radius,
            compute,
        }
    }
}

impl<R, F> LocalAlgorithm for FnAlgorithm<R, F>
where
    R: Fn(usize) -> usize,
    F: Fn(&BallView) -> OutLabel,
{
    fn radius(&self, n: usize) -> usize {
        (self.radius)(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        (self.compute)(view)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<T: LocalAlgorithm + ?Sized> LocalAlgorithm for &T {
    fn radius(&self, n: usize) -> usize {
        (**self).radius(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        (**self).compute(view)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: LocalAlgorithm + ?Sized> LocalAlgorithm for Box<T> {
    fn radius(&self, n: usize) -> usize {
        (**self).radius(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        (**self).compute(view)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::InLabel;

    fn dummy_view() -> BallView {
        BallView {
            n: 10,
            radius: 0,
            center: (3, InLabel(1)),
            left: vec![],
            right: vec![],
        }
    }

    #[test]
    fn fn_algorithm_delegates() {
        let alg = FnAlgorithm::new("echo-input", |_| 0, |v: &BallView| OutLabel(v.center.1 .0));
        assert_eq!(alg.radius(100), 0);
        assert_eq!(alg.name(), "echo-input");
        assert_eq!(alg.compute(&dummy_view()), OutLabel(1));
    }

    #[test]
    fn references_and_boxes_are_algorithms() {
        let alg = FnAlgorithm::new("zero", |_| 2, |_: &BallView| OutLabel(0));
        let by_ref: &dyn LocalAlgorithm = &alg;
        assert_eq!(by_ref.radius(5), 2);
        assert_eq!(alg.name(), "zero");
        let boxed: Box<dyn LocalAlgorithm> =
            Box::new(FnAlgorithm::new("one", |n| n, |_: &BallView| OutLabel(1)));
        assert_eq!(boxed.radius(7), 7);
        assert_eq!(boxed.compute(&dummy_view()), OutLabel(1));
        assert_eq!(boxed.name(), "one");
    }

    #[test]
    fn default_name() {
        struct Anon;
        impl LocalAlgorithm for Anon {
            fn radius(&self, _n: usize) -> usize {
                0
            }
            fn compute(&self, _view: &BallView) -> OutLabel {
                OutLabel(0)
            }
        }
        assert_eq!(Anon.name(), "unnamed");
    }
}
