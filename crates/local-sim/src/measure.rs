//! Measurement and validation helpers: locality curves and output validation
//! against a problem's verifier.

use crate::{LocalAlgorithm, Network, Result, SyncSimulator};
use lcl_problem::{Labeling, NormalizedLcl};

/// The iterated logarithm `log* n`: the number of times `log₂` must be applied
/// to `n` before the result drops to at most 1.
///
/// `log_star(1) = 0`, `log_star(2) = 1`, `log_star(16) = 3`,
/// `log_star(65536) = 4`.
pub fn log_star(n: usize) -> usize {
    let mut x = n as f64;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
        if count > 64 {
            break;
        }
    }
    count
}

/// One point of a locality curve: on networks of `n` nodes the algorithm used
/// views of radius `radius`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LocalityMeasurement {
    /// Number of nodes.
    pub n: usize,
    /// View radius (= number of LOCAL rounds) used by the algorithm.
    pub radius: usize,
}

/// Records the radius an algorithm requests across a sweep of network sizes.
/// This regenerates the "complexity landscape" series (`O(1)` stays flat,
/// `Θ(log* n)` grows with `log*`, `Θ(n)` grows linearly).
pub fn locality_curve<A: LocalAlgorithm + ?Sized>(
    algorithm: &A,
    sizes: &[usize],
) -> Vec<LocalityMeasurement> {
    sizes
        .iter()
        .map(|&n| LocalityMeasurement {
            n,
            radius: algorithm.radius(n),
        })
        .collect()
}

/// The outcome of validating an algorithm against a problem on a batch of
/// networks.
#[derive(Clone, Debug)]
pub enum ValidationOutcome {
    /// Every produced labeling was valid.
    AllValid {
        /// Number of networks checked.
        networks_checked: usize,
    },
    /// Some network received an invalid labeling.
    CounterExample {
        /// Index (within the supplied batch) of the offending network.
        network_index: usize,
        /// The invalid labeling the algorithm produced.
        labeling: Labeling,
        /// The nodes at which constraints were violated.
        violating_nodes: Vec<usize>,
    },
}

impl ValidationOutcome {
    /// `true` if no counterexample was found.
    pub fn is_valid(&self) -> bool {
        matches!(self, ValidationOutcome::AllValid { .. })
    }
}

/// Runs `algorithm` on every supplied network with the ball-view simulator and
/// checks each output against the problem's verifier.
///
/// # Errors
///
/// Propagates simulator errors (for example, a radius beyond the cap).
pub fn validate_algorithm<A: LocalAlgorithm + ?Sized>(
    problem: &NormalizedLcl,
    algorithm: &A,
    networks: &[Network],
) -> Result<ValidationOutcome> {
    let sim = SyncSimulator::new();
    for (idx, network) in networks.iter().enumerate() {
        let labeling = sim.run(network, algorithm)?;
        let report = problem.check(network.instance(), &labeling);
        if !report.is_valid() {
            return Ok(ValidationOutcome::CounterExample {
                network_index: idx,
                labeling,
                violating_nodes: report.violating_nodes(),
            });
        }
    }
    Ok(ValidationOutcome::AllValid {
        networks_checked: networks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BallView, FnAlgorithm};
    use lcl_problem::{Instance, OutLabel, Topology};

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert!(log_star(usize::MAX) <= 6);
    }

    #[test]
    fn locality_curves() {
        let constant = FnAlgorithm::new("c", |_| 3, |_: &BallView| OutLabel(0));
        let linear = FnAlgorithm::new("n", |n| n, |_: &BallView| OutLabel(0));
        let sizes = [4usize, 16, 256];
        let c = locality_curve(&constant, &sizes);
        assert!(c.iter().all(|m| m.radius == 3));
        let l = locality_curve(&linear, &sizes);
        assert_eq!(
            l[2],
            LocalityMeasurement {
                n: 256,
                radius: 256
            }
        );
    }

    fn two_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        b.build().unwrap()
    }

    #[test]
    fn validation_detects_counterexamples() {
        let p = two_coloring();
        // "Everyone outputs colour 1" is invalid for 2-coloring.
        let bad = FnAlgorithm::new("all-one", |_| 0, |_: &BallView| OutLabel(0));
        let nets = vec![
            Network::with_sequential_ids(Instance::from_indices(Topology::Cycle, &[0; 4])),
            Network::with_sequential_ids(Instance::from_indices(Topology::Cycle, &[0; 6])),
        ];
        let outcome = validate_algorithm(&p, &bad, &nets).unwrap();
        assert!(!outcome.is_valid());
        match outcome {
            ValidationOutcome::CounterExample {
                network_index,
                violating_nodes,
                ..
            } => {
                assert_eq!(network_index, 0);
                assert!(!violating_nodes.is_empty());
            }
            ValidationOutcome::AllValid { .. } => panic!("expected counterexample"),
        }
    }

    #[test]
    fn validation_accepts_correct_algorithm() {
        let p = two_coloring();
        // With sequential ids on an even cycle, colouring by id parity is valid.
        let parity = FnAlgorithm::new(
            "id-parity",
            |_| 0,
            |v: &BallView| OutLabel((v.center.0 % 2) as u16),
        );
        let nets = vec![Network::with_sequential_ids(Instance::from_indices(
            Topology::Cycle,
            &[0; 6],
        ))];
        let outcome = validate_algorithm(&p, &parity, &nets).unwrap();
        assert!(outcome.is_valid());
        match outcome {
            ValidationOutcome::AllValid { networks_checked } => assert_eq!(networks_checked, 1),
            ValidationOutcome::CounterExample { .. } => panic!("expected valid"),
        }
    }
}
