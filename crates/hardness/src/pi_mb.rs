//! The LCL family `Π_{M_B}` (§3.2): labels, constraints 1–12 and the good
//! input encoding of Definition 1 / Figure 1.

use lcl_lba::{Lba, Move, Outcome, StateId, TapeSymbol};
use lcl_problem::{InLabel, Instance, NormalizedLcl, OutLabel};
use std::fmt;

/// The secret stored at the first node of a good input (`φ ∈ {a, b}`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Secret {
    /// The symbol `a`.
    A,
    /// The symbol `b`.
    B,
}

impl fmt::Display for Secret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Secret::A => write!(f, "a"),
            Secret::B => write!(f, "b"),
        }
    }
}

/// Input labels of `Π_{M_B}` (§3.2.1). Their number does not depend on `B`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PiInput {
    /// `Start(φ)`: the secret at the first node.
    Start(Secret),
    /// `Separator`: separates two consecutive machine steps.
    Separator,
    /// `Tape(c, s, h)`: one tape cell of one step — content, state, head flag.
    Tape {
        /// Tape content `c ∈ {0, 1, L, R}`.
        content: TapeSymbol,
        /// The machine state `s` of the step.
        state: StateId,
        /// Whether the head is on this cell.
        head: bool,
    },
    /// `Empty`: a node that takes no part in the encoding.
    Empty,
}

impl fmt::Display for PiInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiInput::Start(s) => write!(f, "Start({s})"),
            PiInput::Separator => write!(f, "Sep"),
            PiInput::Tape {
                content,
                state,
                head,
            } => write!(f, "T({content},{state},{})", if *head { "H" } else { "-" }),
            PiInput::Empty => write!(f, "·"),
        }
    }
}

/// Output labels of `Π_{M_B}` (§3.2.3). The `Error⁰…Error⁵` families carry
/// counters bounded by `B + 2`, so their number is `Θ(B)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PiOutput {
    /// `Start(φ)`.
    Start(Secret),
    /// `Empty`.
    Empty,
    /// The generic error label.
    Error,
    /// `Error⁰(i)`, `0 ≤ i ≤ B + 1`: the machine is not correctly initialized.
    Error0(usize),
    /// `Error¹(i)`, `0 ≤ i ≤ B`: the tape length is wrong.
    Error1(usize),
    /// `Error²(x, i)`, `0 ≤ i ≤ B + 1`: the tape was copied incorrectly.
    Error2(TapeSymbol, usize),
    /// `Error³`: two adjacent nodes have inconsistent states.
    Error3,
    /// `Error⁴(state, content, i)`, `0 ≤ i ≤ B + 2`: the transition is encoded
    /// incorrectly (also covers the missing-head case).
    Error4(StateId, TapeSymbol, usize),
    /// `Error⁵(x)`, `x ∈ {0, 1}`: more than one head.
    Error5(bool),
}

impl PiOutput {
    /// The "error family" of the label: `Some(k)` for `Errorᵏ`, `None` for
    /// everything else (including the generic `Error`).
    pub fn error_family(&self) -> Option<usize> {
        match self {
            PiOutput::Error0(_) => Some(0),
            PiOutput::Error1(_) => Some(1),
            PiOutput::Error2(_, _) => Some(2),
            PiOutput::Error3 => Some(3),
            PiOutput::Error4(_, _, _) => Some(4),
            PiOutput::Error5(_) => Some(5),
            _ => None,
        }
    }
}

impl fmt::Display for PiOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiOutput::Start(s) => write!(f, "{s}"),
            PiOutput::Empty => write!(f, "·"),
            PiOutput::Error => write!(f, "E"),
            PiOutput::Error0(i) => write!(f, "E0({i})"),
            PiOutput::Error1(i) => write!(f, "E1({i})"),
            PiOutput::Error2(x, i) => write!(f, "E2({x},{i})"),
            PiOutput::Error3 => write!(f, "E3"),
            PiOutput::Error4(s, c, i) => write!(f, "E4({s},{c},{i})"),
            PiOutput::Error5(x) => write!(f, "E5({})", usize::from(*x)),
        }
    }
}

/// The LCL problem `Π_{M_B}`: an LBA together with a tape size `B`.
#[derive(Clone, Debug)]
pub struct PiMb {
    machine: Lba,
    tape_size: usize,
}

impl PiMb {
    /// Creates the problem for a machine and tape size `B ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `tape_size < 3`.
    pub fn new(machine: Lba, tape_size: usize) -> Self {
        assert!(tape_size >= 3, "the tape needs at least L, one cell, R");
        PiMb { machine, tape_size }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Lba {
        &self.machine
    }

    /// The tape size `B`.
    pub fn tape_size(&self) -> usize {
        self.tape_size
    }

    // ---------------------------------------------------------------------
    // Label enumeration (dense indices, for interoperability with `Instance`).
    // ---------------------------------------------------------------------

    /// All input labels in a fixed order.
    pub fn input_labels(&self) -> Vec<PiInput> {
        let mut labels = vec![
            PiInput::Start(Secret::A),
            PiInput::Start(Secret::B),
            PiInput::Separator,
            PiInput::Empty,
        ];
        for s in 0..self.machine.num_states() {
            for c in TapeSymbol::ALL {
                for head in [false, true] {
                    labels.push(PiInput::Tape {
                        content: c,
                        state: StateId(s as u16),
                        head,
                    });
                }
            }
        }
        labels
    }

    /// All output labels in a fixed order.
    pub fn output_labels(&self) -> Vec<PiOutput> {
        let b = self.tape_size;
        let mut labels = vec![
            PiOutput::Start(Secret::A),
            PiOutput::Start(Secret::B),
            PiOutput::Empty,
            PiOutput::Error,
            PiOutput::Error3,
            PiOutput::Error5(false),
            PiOutput::Error5(true),
        ];
        for i in 0..=b + 1 {
            labels.push(PiOutput::Error0(i));
        }
        for i in 0..=b {
            labels.push(PiOutput::Error1(i));
        }
        for x in TapeSymbol::ALL {
            for i in 0..=b + 1 {
                labels.push(PiOutput::Error2(x, i));
            }
        }
        for s in 0..self.machine.num_states() {
            for c in TapeSymbol::ALL {
                for i in 0..=b + 2 {
                    labels.push(PiOutput::Error4(StateId(s as u16), c, i));
                }
            }
        }
        labels
    }

    /// Dense index of an input label.
    ///
    /// # Panics
    ///
    /// Panics if the label is not a label of this problem.
    pub fn input_index(&self, label: PiInput) -> u16 {
        self.input_labels()
            .iter()
            .position(|&l| l == label)
            .expect("label belongs to the problem") as u16
    }

    /// Dense index of an output label.
    ///
    /// # Panics
    ///
    /// Panics if the label is not a label of this problem.
    pub fn output_index(&self, label: PiOutput) -> u16 {
        self.output_labels()
            .iter()
            .position(|&l| l == label)
            .expect("label belongs to the problem") as u16
    }

    /// Converts a sequence of `Π_{M_B}` inputs into an [`Instance`] over the
    /// dense input alphabet (a directed path).
    pub fn instance_from_inputs(&self, inputs: &[PiInput]) -> Instance {
        let table = self.input_labels();
        let indexed: Vec<InLabel> = inputs
            .iter()
            .map(|l| {
                InLabel::from_index(
                    table
                        .iter()
                        .position(|t| t == l)
                        .expect("label belongs to the problem"),
                )
            })
            .collect();
        Instance::path(indexed)
    }

    // ---------------------------------------------------------------------
    // Good inputs (Definition 1, Figure 1).
    // ---------------------------------------------------------------------

    /// Encodes the execution of the machine as a good input with the given
    /// secret, padded with `empty_padding` trailing `Empty` nodes.
    ///
    /// Returns `None` if the machine does not halt on a `B`-cell tape (good
    /// inputs only exist for halting machines).
    pub fn good_input(&self, secret: Secret, empty_padding: usize) -> Option<Vec<PiInput>> {
        let outcome = self.machine.run(self.tape_size, 50_000_000).ok()?;
        let Outcome::Halted { trace } = outcome else {
            return None;
        };
        let mut inputs = vec![PiInput::Start(secret)];
        for config in &trace {
            inputs.push(PiInput::Separator);
            for (j, &cell) in config.tape.iter().enumerate() {
                inputs.push(PiInput::Tape {
                    content: cell,
                    state: config.state,
                    head: config.head == j,
                });
            }
        }
        inputs.extend(std::iter::repeat_n(PiInput::Empty, empty_padding));
        Some(inputs)
    }

    /// The length of a good input (excluding padding): `1 + t·(B + 1)` where
    /// `t` is the number of configurations in the halting trace.
    ///
    /// Returns `None` if the machine loops.
    pub fn good_input_length(&self) -> Option<usize> {
        let outcome = self.machine.run(self.tape_size, 50_000_000).ok()?;
        outcome.steps().map(|t| 1 + t * (self.tape_size + 1))
    }

    // ---------------------------------------------------------------------
    // The verifier: constraints 1–12 of §3.2.4.
    // ---------------------------------------------------------------------

    /// Whether `(state, content, j)` denotes an "Error⁴ final node"
    /// (constraint 9, second bullet): `j = B` when the transition moves left,
    /// `j = B + 1` when it stays, `j = B + 2` when it moves right. For a final
    /// state (whose transition is undefined) we use the convention `j = B + 1`,
    /// consistently in the verifier and in the §3.3 solver.
    pub fn is_error4_final(&self, state: StateId, content: TapeSymbol, j: usize) -> bool {
        let b = self.tape_size;
        match self.machine.transition(state, content) {
            None => j == b + 1,
            Some(t) => match t.movement {
                Move::Left => j == b,
                Move::Stay => j == b + 1,
                Move::Right => j == b + 2,
            },
        }
    }

    /// Checks the constraints of one node given its own `(input, output)` and
    /// its predecessor's `(input, output)` (or `None` for the first node of
    /// the path).
    #[allow(clippy::too_many_lines)]
    pub fn node_ok(
        &self,
        pred: Option<(PiInput, PiOutput)>,
        own_input: PiInput,
        own_output: PiOutput,
    ) -> bool {
        let b = self.tape_size;
        let q0 = self.machine.initial_state();
        // Constraint 12: specific error families never mix.
        if let (Some(x), Some((_, pred_out))) = (own_output.error_family(), pred) {
            if let Some(y) = pred_out.error_family() {
                if x != y {
                    return false;
                }
            }
        }
        match own_output {
            // Constraint 2.
            PiOutput::Empty => own_input == PiInput::Empty,
            // Constraints 3 and 4.
            PiOutput::Start(phi) => {
                if pred.is_none() && own_input != PiInput::Start(phi) {
                    return false;
                }
                if let Some((_, PiOutput::Start(pred_phi))) = pred {
                    if pred_phi != phi {
                        return false;
                    }
                }
                true
            }
            // Constraint 5.
            PiOutput::Error0(j) => {
                if j > b + 1 {
                    return false;
                }
                if j == 0 {
                    pred.is_none()
                } else {
                    matches!(pred, Some((_, PiOutput::Error0(k))) if k + 1 == j)
                }
            }
            // Constraint 6.
            PiOutput::Error1(j) => {
                if j > b {
                    return false;
                }
                if j == 0 {
                    own_input == PiInput::Separator
                } else {
                    own_input != PiInput::Separator
                        && matches!(pred, Some((_, PiOutput::Error1(k))) if k + 1 == j)
                }
            }
            // Constraint 7.
            PiOutput::Error2(x, j) => {
                if j > b + 1 {
                    return false;
                }
                if j == 0 {
                    matches!(own_input, PiInput::Tape { content, head, .. } if !head && content == x)
                } else if j == b + 1 {
                    matches!(own_input, PiInput::Tape { content, .. } if content != x)
                } else {
                    matches!(pred, Some((_, PiOutput::Error2(y, k))) if y == x && k + 1 == j)
                }
            }
            // Constraint 8.
            PiOutput::Error3 => {
                let own_state = match own_input {
                    PiInput::Tape { state, .. } => state,
                    _ => return false,
                };
                match pred {
                    Some((PiInput::Tape { state, .. }, _)) => state != own_state,
                    _ => false,
                }
            }
            // Constraint 9.
            PiOutput::Error4(cur_state, tape_content, j) => {
                if j > b + 2 {
                    return false;
                }
                if j == 0 {
                    return matches!(
                        own_input,
                        PiInput::Tape { content, state, head }
                            if head && content == tape_content && state == cur_state
                    );
                }
                if self.is_error4_final(cur_state, tape_content, j) {
                    let transition = self.machine.transition(cur_state, tape_content);
                    let Some(t) = transition else {
                        // Final state: the claimed transition cannot exist.
                        return true;
                    };
                    return match own_input {
                        PiInput::Tape { state, head, .. } => state != t.next_state || !head,
                        _ => true,
                    };
                }
                matches!(
                    pred,
                    Some((_, PiOutput::Error4(s, c, k)))
                        if s == cur_state && c == tape_content && k + 1 == j
                )
            }
            // Constraint 10.
            PiOutput::Error5(x) => {
                let pred_is_error5 = matches!(pred, Some((_, PiOutput::Error5(_))));
                if !pred_is_error5 {
                    matches!(own_input, PiInput::Tape { head, .. } if head) && !x
                } else {
                    true
                }
            }
            // Constraint 11.
            PiOutput::Error => {
                let own_is_start = matches!(own_input, PiInput::Start(_));
                match pred {
                    None => !own_is_start,
                    Some((pred_in, pred_out)) => {
                        if own_is_start {
                            return true;
                        }
                        if pred_in == PiInput::Empty || pred_out == PiOutput::Empty {
                            return true;
                        }
                        if pred_out == PiOutput::Error {
                            return true;
                        }
                        match pred_out {
                            PiOutput::Error0(j) if j > 0 => {
                                if j == 1 {
                                    return pred_in != PiInput::Separator;
                                }
                                // j ≥ 2.
                                match pred_in {
                                    PiInput::Tape {
                                        content,
                                        state,
                                        head,
                                    } => {
                                        if j == 2 {
                                            content != TapeSymbol::LeftEnd || state != q0 || !head
                                        } else if j <= b {
                                            content != TapeSymbol::Zero || state != q0 || head
                                        } else {
                                            // j == b + 1
                                            content != TapeSymbol::RightEnd || state != q0 || head
                                        }
                                    }
                                    _ => true,
                                }
                            }
                            PiOutput::Error1(x) => {
                                (own_input == PiInput::Separator && x != b)
                                    || (own_input != PiInput::Separator && x == b)
                            }
                            PiOutput::Error2(_, j) => j == b + 1,
                            PiOutput::Error3 => true,
                            PiOutput::Error4(s, c, j) => self.is_error4_final(s, c, j),
                            PiOutput::Error5(x) => {
                                x && matches!(pred_in, PiInput::Tape { head, .. } if head)
                            }
                            _ => false,
                        }
                    }
                }
            }
        }
    }

    /// Verifies a complete output labeling of a path against constraints 1–12.
    /// Returns the indices of the violating nodes (empty = valid).
    pub fn violations(&self, inputs: &[PiInput], outputs: &[PiOutput]) -> Vec<usize> {
        let mut bad = Vec::new();
        if inputs.len() != outputs.len() {
            return (0..inputs.len().max(outputs.len())).collect();
        }
        for i in 0..inputs.len() {
            let pred = if i == 0 {
                None
            } else {
                Some((inputs[i - 1], outputs[i - 1]))
            };
            if !self.node_ok(pred, inputs[i], outputs[i]) {
                bad.push(i);
            }
        }
        bad
    }

    /// `true` if the labeling satisfies every constraint.
    pub fn is_valid(&self, inputs: &[PiInput], outputs: &[PiOutput]) -> bool {
        self.violations(inputs, outputs).is_empty()
    }

    // ---------------------------------------------------------------------
    // Conversion to a normalized problem (Lemma 2 enrichment).
    // ---------------------------------------------------------------------

    /// Converts `Π_{M_B}` into an equivalent [`NormalizedLcl`] on directed
    /// paths via the Lemma 2 move: the new output carries a copy of the input,
    /// the node constraint checks the copy, and the edge constraint evaluates
    /// the original verifier on the predecessor's carried pair and the node's
    /// carried pair.
    ///
    /// The conversion is exact at every node that has a predecessor: the edge
    /// constraint evaluates the original verifier on the two carried pairs.
    /// The "has no predecessor" clauses of constraints 3, 5 and 11 cannot be
    /// expressed in a node-only constraint, so they are *relaxed* at the first
    /// node of a path; the paper's §4 opening remark resolves this by encoding
    /// endpoint constraints next to a special input label (see
    /// `lcl_problem::lift_path_to_cycle`), and the dedicated verifier
    /// [`Self::is_valid`] remains the ground truth for `Π_{M_B}` itself.
    ///
    /// # Errors
    ///
    /// Propagates label-set construction errors.
    pub fn to_normalized(&self) -> lcl_problem::Result<NormalizedLcl> {
        let inputs = self.input_labels();
        let outputs = self.output_labels();
        let in_names: Vec<String> = inputs.iter().map(|l| l.to_string()).collect();
        let mut out_names = Vec::with_capacity(inputs.len() * outputs.len());
        for i in &inputs {
            for o in &outputs {
                out_names.push(format!("{i}|{o}"));
            }
        }
        let mut b = NormalizedLcl::builder(format!(
            "pi-mb({},B={})",
            self.machine.name(),
            self.tape_size
        ));
        b.input_labels(&in_names);
        b.output_labels(&out_names);
        let beta = outputs.len();
        // Node constraint: the carried input must match the real input and
        // the node must be acceptable with *some* predecessor or none; the
        // precise predecessor check happens on the edge. To keep the problem
        // equivalent we only require the carried copy here.
        for (ii, _i) in inputs.iter().enumerate() {
            for oo in 0..beta {
                b.allow_node_idx(ii as u16, (ii * beta + oo) as u16);
            }
        }
        // Edge constraint: original verifier with the predecessor pair.
        for (pi, p_in) in inputs.iter().enumerate() {
            for (po, p_out) in outputs.iter().enumerate() {
                for (ci, c_in) in inputs.iter().enumerate() {
                    for (co, c_out) in outputs.iter().enumerate() {
                        if self.node_ok(Some((*p_in, *p_out)), *c_in, *c_out) {
                            b.allow_edge_idx((pi * beta + po) as u16, (ci * beta + co) as u16);
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// Converts a `Π_{M_B}` output sequence into a
    /// [`Labeling`](lcl_problem::Labeling) over the normalized problem
    /// produced by [`Self::to_normalized`].
    pub fn normalized_labeling(
        &self,
        inputs: &[PiInput],
        outputs: &[PiOutput],
    ) -> lcl_problem::Labeling {
        let in_table = self.input_labels();
        let out_table = self.output_labels();
        let beta = out_table.len();
        let labels: Vec<OutLabel> = inputs
            .iter()
            .zip(outputs.iter())
            .map(|(i, o)| {
                let ii = in_table.iter().position(|t| t == i).expect("known input");
                let oo = out_table.iter().position(|t| t == o).expect("known output");
                OutLabel::from_index(ii * beta + oo)
            })
            .collect();
        lcl_problem::Labeling::new(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_lba::machines;

    fn small() -> PiMb {
        PiMb::new(machines::unary_counter(), 4)
    }

    #[test]
    fn label_sets_have_expected_sizes() {
        let p = small();
        let inputs = p.input_labels();
        let outputs = p.output_labels();
        // 4 fixed + 8·|Q| tape labels.
        assert_eq!(inputs.len(), 4 + 8 * p.machine().num_states());
        // Outputs grow linearly with B.
        let bigger = PiMb::new(machines::unary_counter(), 8);
        assert!(bigger.output_labels().len() > outputs.len());
        // Indices round-trip.
        for (i, &l) in inputs.iter().enumerate() {
            assert_eq!(p.input_index(l) as usize, i);
        }
        assert_eq!(p.output_index(PiOutput::Error) as usize, 3);
    }

    #[test]
    fn good_input_has_expected_shape() {
        let p = small();
        let input = p.good_input(Secret::A, 3).expect("unary counter halts");
        assert_eq!(input[0], PiInput::Start(Secret::A));
        assert_eq!(input[1], PiInput::Separator);
        // Blocks of B+1 nodes: Separator + B tape cells.
        let body = &input[1..input.len() - 3];
        assert_eq!(body.len() % (p.tape_size() + 1), 0);
        assert_eq!(
            input.len() - 3,
            p.good_input_length().expect("halting machine")
        );
        // First block encodes the initial configuration (L 0 … 0 R, q0, head on L).
        match input[2] {
            PiInput::Tape {
                content,
                state,
                head,
            } => {
                assert_eq!(content, TapeSymbol::LeftEnd);
                assert_eq!(state, p.machine().initial_state());
                assert!(head);
            }
            other => panic!("expected a tape label, got {other}"),
        }
        assert_eq!(*input.last().unwrap(), PiInput::Empty);
    }

    #[test]
    fn looping_machine_has_no_good_input() {
        let p = PiMb::new(machines::always_loop(), 4);
        assert!(p.good_input(Secret::A, 0).is_none());
        assert!(p.good_input_length().is_none());
    }

    #[test]
    fn all_start_output_is_valid_on_good_inputs() {
        let p = small();
        let input = p.good_input(Secret::B, 4).unwrap();
        let output: Vec<PiOutput> = input
            .iter()
            .map(|i| match i {
                PiInput::Empty => PiOutput::Empty,
                _ => PiOutput::Start(Secret::B),
            })
            .collect();
        assert!(
            p.is_valid(&input, &output),
            "{:?}",
            p.violations(&input, &output)
        );
    }

    #[test]
    fn wrong_secret_output_is_rejected() {
        let p = small();
        let input = p.good_input(Secret::A, 0).unwrap();
        let output: Vec<PiOutput> = input.iter().map(|_| PiOutput::Start(Secret::B)).collect();
        assert!(!p.is_valid(&input, &output));
        // Mixing a and b along the path is also rejected (constraint 4).
        let mut mixed: Vec<PiOutput> = input.iter().map(|_| PiOutput::Start(Secret::A)).collect();
        let last = mixed.len() - 1;
        mixed[last] = PiOutput::Start(Secret::B);
        assert!(!p.is_valid(&input, &mixed));
    }

    #[test]
    fn empty_output_requires_empty_input() {
        let p = small();
        let input = vec![PiInput::Empty, PiInput::Separator];
        let ok = vec![PiOutput::Empty, PiOutput::Error];
        // The second node outputs Error with pred input Empty: allowed
        // (constraint 11, third bullet).
        assert!(p.is_valid(&input, &ok));
        let bad = vec![PiOutput::Empty, PiOutput::Empty];
        assert!(!p.is_valid(&input, &bad));
    }

    #[test]
    fn error_chains_are_not_acceptable_on_good_inputs() {
        // §3.4: on a good input no specific error chain can be completed.
        // We check a representative family: try to start an Error² chain at
        // every possible position of a good input and complete it greedily;
        // the verifier must reject every attempt.
        let p = small();
        let input = p.good_input(Secret::A, 0).unwrap();
        let b = p.tape_size();
        let n = input.len();
        for start in 0..n.saturating_sub(b + 2) {
            // The chain claims content x at its start.
            let x = match input[start] {
                PiInput::Tape { content, head, .. } if !head => content,
                _ => continue,
            };
            let mut output: Vec<PiOutput> = (0..n)
                .map(|i| {
                    if i < start {
                        PiOutput::Start(Secret::A)
                    } else if i <= start + b + 1 {
                        PiOutput::Error2(x, i - start)
                    } else {
                        PiOutput::Error
                    }
                })
                .collect();
            // Adjust: positions before the chain keep Start(a) which is fine.
            if start == 0 {
                output[0] = PiOutput::Error2(x, 0);
            }
            assert!(
                !p.is_valid(&input, &output),
                "an Error² chain starting at {start} must not be acceptable on a good input"
            );
        }
    }

    #[test]
    fn error12_constraint_families_do_not_mix() {
        let p = small();
        let input = vec![PiInput::Separator, PiInput::Separator];
        let mixed = vec![PiOutput::Error1(0), PiOutput::Error0(1)];
        assert!(!p.is_valid(&input, &mixed));
    }

    #[test]
    fn normalized_problem_accepts_translated_labelings() {
        let p = small();
        let normalized = p.to_normalized().unwrap();
        let input = p.good_input(Secret::A, 2).unwrap();
        let output: Vec<PiOutput> = input
            .iter()
            .map(|i| match i {
                PiInput::Empty => PiOutput::Empty,
                _ => PiOutput::Start(Secret::A),
            })
            .collect();
        let instance = p.instance_from_inputs(&input);
        let labeling = p.normalized_labeling(&input, &output);
        assert!(normalized.is_valid(&instance, &labeling));
        // A corrupted translation (wrong carried input) is rejected.
        let mut wrong = labeling.clone();
        *wrong.output_mut(1) = OutLabel(0);
        assert!(!normalized.is_valid(&instance, &wrong));
    }

    #[test]
    fn display_impls() {
        assert_eq!(PiInput::Separator.to_string(), "Sep");
        assert_eq!(PiOutput::Error3.to_string(), "E3");
        assert!(PiOutput::Error2(TapeSymbol::One, 4)
            .to_string()
            .contains("E2"));
        assert_eq!(Secret::A.to_string(), "a");
        let p = small();
        assert_eq!(p.tape_size(), 4);
        assert_eq!(p.machine().name(), "unary-counter");
    }
}
