//! The `O(B · T)` solver for `Π_{M_B}` (§3.3): the prover/disprover case
//! analysis that outputs `Start(φ)` on good inputs and locally checkable
//! error chains on corrupted inputs (Figure 2).
//!
//! The solver is implemented as a whole-path computation — exactly what every
//! node computes once it has gathered its `T' = 2 + (B + 1)·T` neighbourhood —
//! and always produces an output satisfying constraints 1–12. Its case
//! analysis follows §3.3:
//!
//! 1. a `Start` label away from the first node (case 1),
//! 2. a corrupted initial configuration (`Error⁰`, case 2),
//! 3. a missing or premature separator (`Error¹`, cases 3–4),
//! 4. a mis-copied tape cell (`Error²`, case 5, Figure 2),
//! 5. inconsistent states inside a block (`Error³`, case 6),
//! 6. a wrongly encoded transition or missing head, including execution
//!    continuing past the final state (`Error⁴`, case 7),
//! 7. more than one head in a block (`Error⁵`, case 8).
//!
//! When no error is *provable* the solver outputs `Start(φ)` everywhere (and
//! `Empty` on empty nodes), which is always acceptable.

use crate::pi_mb::{PiInput, PiMb, PiOutput, Secret};
use lcl_lba::{Move, TapeSymbol};

/// What the solver found and where.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Finding {
    /// No provable error; output `Start(φ)` / `Empty` everywhere.
    Clean,
    /// All nodes output the generic `Error` (the first node's input is not a
    /// `Start` label).
    AllError,
    /// `Start(φ)` before `from`, generic `Error` from `from` onwards.
    ErrorFrom { from: usize },
    /// An `Error⁰` chain on `0..=to`, generic `Error` afterwards.
    Error0 { to: usize },
    /// An `Error¹` chain on `from..=to`, `Start` before, `Error` after.
    Error1 { from: usize, to: usize },
    /// An `Error²` chain on `from..=to` claiming content `x`.
    Error2 {
        from: usize,
        to: usize,
        x: TapeSymbol,
    },
    /// A single `Error³` at `at`.
    Error3 { at: usize },
    /// An `Error⁴` chain on `from..=to` carrying the head's `(state, content)`.
    Error4 {
        from: usize,
        to: usize,
        state: lcl_lba::StateId,
        content: TapeSymbol,
    },
    /// An `Error⁵` pair of markers: `Error⁵(0)` at `first`, `Error⁵(1)` on
    /// `first+1..=second`, `Error` afterwards.
    Error5 { first: usize, second: usize },
}

/// The ideal initial block of a good input: `Separator`, then the initial
/// configuration `(L, 0, …, 0, R)` in state `q0` with the head on `L`.
fn ideal_initial_block(problem: &PiMb) -> Vec<PiInput> {
    let b = problem.tape_size();
    let q0 = problem.machine().initial_state();
    let mut block = vec![PiInput::Separator];
    for cell in 0..b {
        let content = if cell == 0 {
            TapeSymbol::LeftEnd
        } else if cell == b - 1 {
            TapeSymbol::RightEnd
        } else {
            TapeSymbol::Zero
        };
        block.push(PiInput::Tape {
            content,
            state: q0,
            head: cell == 0,
        });
    }
    block
}

#[allow(clippy::needless_range_loop)] // dense index tables
fn find_first_provable_error(problem: &PiMb, inputs: &[PiInput]) -> Finding {
    let b = problem.tape_size();
    let n = inputs.len();
    if n == 0 {
        return Finding::Clean;
    }
    if !matches!(inputs[0], PiInput::Start(_)) {
        return Finding::AllError;
    }
    let initial_block = ideal_initial_block(problem);
    let mut j = 1usize;
    while j < n {
        if inputs[j] == PiInput::Empty {
            // The encoding stops here; any later non-empty nodes are covered
            // by generic errors justified by the empty predecessor.
            let next_non_empty = (j + 1..n).find(|&i| inputs[i] != PiInput::Empty);
            return match next_non_empty {
                Some(from) => Finding::ErrorFrom { from },
                None => Finding::Clean,
            };
        }
        // Case 1: a Start label in the middle.
        if matches!(inputs[j], PiInput::Start(_)) {
            return Finding::ErrorFrom { from: j };
        }
        // Case 2: deviation inside the initial block.
        if j <= b + 1 {
            if inputs[j] != initial_block[j - 1] {
                return Finding::Error0 { to: j };
            }
            j += 1;
            continue;
        }
        let r = (j - 1) % (b + 1); // 0 = separator position, 1..=b = tape cells
        if r == 0 {
            // A separator is expected here.
            if inputs[j] != PiInput::Separator {
                // Case 3: the tape is too long.
                return Finding::Error1 {
                    from: j - (b + 1),
                    to: j - 1,
                };
            }
            j += 1;
            continue;
        }
        // A tape cell is expected here.
        match inputs[j] {
            PiInput::Separator => {
                // Case 4: the tape is too short.
                return Finding::Error1 {
                    from: j - r,
                    to: j - 1,
                };
            }
            PiInput::Tape {
                content,
                state,
                head,
            } => {
                // Case 5: the cell was copied incorrectly from the previous
                // block (only cells that were not under the head are copied).
                if let PiInput::Tape {
                    content: prev_content,
                    head: prev_head,
                    ..
                } = inputs[j - (b + 1)]
                {
                    if !prev_head && prev_content != content {
                        return Finding::Error2 {
                            from: j - (b + 1),
                            to: j,
                            x: prev_content,
                        };
                    }
                }
                // Case 6: inconsistent states inside the block.
                if r >= 2 {
                    if let PiInput::Tape {
                        state: prev_state, ..
                    } = inputs[j - 1]
                    {
                        if prev_state != state {
                            return Finding::Error3 { at: j };
                        }
                    }
                }
                // Case 8: a second head inside the same block.
                if head {
                    let block_start = j - r;
                    for k in (block_start + 1)..j {
                        if let PiInput::Tape { head: true, .. } = inputs[k] {
                            return Finding::Error5 {
                                first: k,
                                second: j,
                            };
                        }
                    }
                }
                // Case 7: the transition is encoded incorrectly — checked at
                // the position where the previous block's head lands.
                let prev_block_start = j - r - (b + 1);
                for cell in 0..b {
                    let k = prev_block_start + 1 + cell;
                    let PiInput::Tape {
                        content: head_content,
                        state: head_state,
                        head: true,
                    } = inputs[k]
                    else {
                        continue;
                    };
                    let transition = problem.machine().transition(head_state, head_content);
                    let offset = match transition.map(|t| t.movement) {
                        Some(Move::Left) => b,
                        Some(Move::Stay) | None => b + 1,
                        Some(Move::Right) => b + 2,
                    };
                    if k + offset != j {
                        continue;
                    }
                    let provable = match transition {
                        // Execution continuing past the final state is always
                        // an error.
                        None => true,
                        Some(t) => state != t.next_state || !head,
                    };
                    if provable {
                        return Finding::Error4 {
                            from: k,
                            to: j,
                            state: head_state,
                            content: head_content,
                        };
                    }
                    break;
                }
            }
            _ => unreachable!("Start and Empty are handled above"),
        }
        j += 1;
    }
    Finding::Clean
}

/// Solves `Π_{M_B}` on a directed path with the given inputs: returns an
/// output labeling satisfying constraints 1–12 (§3.3's algorithm, run
/// centrally).
pub fn solve_pi_mb(problem: &PiMb, inputs: &[PiInput]) -> Vec<PiOutput> {
    let n = inputs.len();
    let secret = match inputs.first() {
        Some(PiInput::Start(s)) => *s,
        _ => Secret::A,
    };
    let start_or_empty = |i: usize| {
        if inputs[i] == PiInput::Empty {
            PiOutput::Empty
        } else {
            PiOutput::Start(secret)
        }
    };
    let error_or_empty = |i: usize| {
        if inputs[i] == PiInput::Empty {
            PiOutput::Empty
        } else {
            PiOutput::Error
        }
    };
    let finding = find_first_provable_error(problem, inputs);
    (0..n)
        .map(|i| match &finding {
            Finding::Clean => start_or_empty(i),
            Finding::AllError => error_or_empty(i),
            Finding::ErrorFrom { from } => {
                if i < *from {
                    start_or_empty(i)
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error0 { to } => {
                if i <= *to {
                    PiOutput::Error0(i)
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error1 { from, to } => {
                if i < *from {
                    start_or_empty(i)
                } else if i <= *to {
                    PiOutput::Error1(i - from)
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error2 { from, to, x } => {
                if i < *from {
                    start_or_empty(i)
                } else if i <= *to {
                    PiOutput::Error2(*x, i - from)
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error3 { at } => {
                if i < *at {
                    start_or_empty(i)
                } else if i == *at {
                    PiOutput::Error3
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error4 {
                from,
                to,
                state,
                content,
            } => {
                if i < *from {
                    start_or_empty(i)
                } else if i <= *to {
                    PiOutput::Error4(*state, *content, i - from)
                } else {
                    error_or_empty(i)
                }
            }
            Finding::Error5 { first, second } => {
                if i < *first {
                    start_or_empty(i)
                } else if i == *first {
                    PiOutput::Error5(false)
                } else if i <= *second {
                    PiOutput::Error5(true)
                } else {
                    error_or_empty(i)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_lba::machines;
    use lcl_lba::StateId;

    fn problem() -> PiMb {
        PiMb::new(machines::unary_counter(), 4)
    }

    fn assert_solved(problem: &PiMb, inputs: &[PiInput]) -> Vec<PiOutput> {
        let outputs = solve_pi_mb(problem, inputs);
        assert_eq!(outputs.len(), inputs.len());
        let violations = problem.violations(inputs, &outputs);
        assert!(
            violations.is_empty(),
            "solver output violates constraints at {violations:?}\ninputs: {}\noutputs: {}",
            inputs
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            outputs
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        );
        outputs
    }

    #[test]
    fn good_input_gets_all_start() {
        let p = problem();
        let inputs = p.good_input(Secret::B, 5).unwrap();
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs.iter().zip(&inputs).all(|(o, i)| match i {
            PiInput::Empty => *o == PiOutput::Empty,
            _ => *o == PiOutput::Start(Secret::B),
        }));
    }

    #[test]
    fn non_start_first_node_gets_all_error() {
        let p = problem();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        inputs[0] = PiInput::Separator;
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs.iter().all(|o| *o == PiOutput::Error));
    }

    #[test]
    fn figure_2_tape_copy_error_produces_error2_chain() {
        let p = problem();
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Corrupt a copied (non-head) cell in the second block: find a cell in
        // block 2 whose previous-block counterpart has no head and flip it.
        let second_block_first_cell = 1 + (b + 1) + 1;
        let mut corrupted_at = None;
        for j in second_block_first_cell..second_block_first_cell + b {
            if let PiInput::Tape {
                content,
                state,
                head,
            } = inputs[j]
            {
                let prev = inputs[j - (b + 1)];
                if let PiInput::Tape { head: false, .. } = prev {
                    let flipped = if content == TapeSymbol::Zero {
                        TapeSymbol::One
                    } else {
                        TapeSymbol::Zero
                    };
                    inputs[j] = PiInput::Tape {
                        content: flipped,
                        state,
                        head,
                    };
                    corrupted_at = Some(j);
                    break;
                }
            }
        }
        let corrupted_at = corrupted_at.expect("a copyable cell exists");
        let outputs = assert_solved(&p, &inputs);
        // The chain ends exactly at the corrupted node with index B+1.
        assert!(matches!(outputs[corrupted_at], PiOutput::Error2(_, idx) if idx == b + 1));
        assert!(matches!(
            outputs[corrupted_at - (b + 1)],
            PiOutput::Error2(_, 0)
        ));
        assert_eq!(outputs[corrupted_at + 1], PiOutput::Error);
    }

    #[test]
    fn corrupted_initial_block_produces_error0_chain() {
        let p = problem();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Break the initial configuration: claim the head is missing.
        inputs[2] = PiInput::Tape {
            content: TapeSymbol::LeftEnd,
            state: p.machine().initial_state(),
            head: false,
        };
        let outputs = assert_solved(&p, &inputs);
        assert_eq!(outputs[0], PiOutput::Error0(0));
        assert_eq!(outputs[2], PiOutput::Error0(2));
        assert_eq!(outputs[3], PiOutput::Error);
    }

    #[test]
    fn missing_separator_produces_error1_chain() {
        let p = problem();
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Replace the second separator by a tape cell: the tape looks too long.
        let second_separator = 1 + (b + 1);
        inputs[second_separator] = PiInput::Tape {
            content: TapeSymbol::Zero,
            state: p.machine().initial_state(),
            head: false,
        };
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs.iter().any(|o| matches!(o, PiOutput::Error1(_))));
    }

    #[test]
    fn premature_separator_produces_error1_chain() {
        let p = problem();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Replace a mid-block tape cell of the second block by a separator.
        let b = p.tape_size();
        let pos = 1 + (b + 1) + 2;
        inputs[pos] = PiInput::Separator;
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs.iter().any(|o| matches!(o, PiOutput::Error1(_))));
    }

    #[test]
    fn inconsistent_states_produce_error3() {
        let p = problem();
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Change the state of the third cell of the second block only.
        let pos = 1 + (b + 1) + 3;
        if let PiInput::Tape { content, head, .. } = inputs[pos] {
            inputs[pos] = PiInput::Tape {
                content,
                head,
                state: StateId(1),
            };
        }
        // Ensure this actually differs from its neighbour's state.
        let outputs = assert_solved(&p, &inputs);
        assert!(
            outputs.iter().any(|o| matches!(o, PiOutput::Error3))
                || outputs
                    .iter()
                    .any(|o| matches!(o, PiOutput::Error4(_, _, _))),
            "a state corruption is provable via Error3 or Error4: {outputs:?}"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // dense index tables
    fn wrong_transition_produces_error4_chain() {
        let p = problem();
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Remove the head from the whole second block: the transition target
        // cell then has head = false, which is provable via Error⁴.
        let start = 1 + (b + 1) + 1;
        for j in start..start + b {
            if let PiInput::Tape { content, state, .. } = inputs[j] {
                inputs[j] = PiInput::Tape {
                    content,
                    state,
                    head: false,
                };
            }
        }
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs
            .iter()
            .any(|o| matches!(o, PiOutput::Error4(_, _, _))));
    }

    #[test]
    fn two_heads_produce_error5() {
        let p = problem();
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Add a second head to the last cell of the second block.
        let pos = 1 + (b + 1) + b;
        if let PiInput::Tape { content, state, .. } = inputs[pos] {
            inputs[pos] = PiInput::Tape {
                content,
                state,
                head: true,
            };
        }
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs.iter().any(|o| matches!(o, PiOutput::Error5(_))));
    }

    #[test]
    fn start_label_in_the_middle_is_an_error() {
        let p = problem();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        let pos = inputs.len() / 2;
        inputs[pos] = PiInput::Start(Secret::B);
        let outputs = assert_solved(&p, &inputs);
        assert_eq!(outputs[pos], PiOutput::Error);
        assert_eq!(outputs[pos - 1], PiOutput::Start(Secret::A));
    }

    #[test]
    fn truncated_encodings_and_gaps_are_handled() {
        let p = problem();
        let inputs = p.good_input(Secret::A, 0).unwrap();
        // A prefix of a good input is fine (everyone outputs Start).
        let prefix = &inputs[..inputs.len() / 2];
        assert_solved(&p, prefix);
        // An Empty gap in the middle, followed by more encoding.
        let mut gapped = inputs.clone();
        let pos = gapped.len() / 2;
        gapped[pos] = PiInput::Empty;
        assert_solved(&p, &gapped);
    }

    #[test]
    fn execution_past_the_final_state_is_an_error() {
        let p = PiMb::new(machines::immediate_halt(), 4);
        let b = p.tape_size();
        let mut inputs = p.good_input(Secret::A, 0).unwrap();
        // Append one more (bogus) block after the halting configuration.
        inputs.push(PiInput::Separator);
        for cell in 0..b {
            let content = if cell == 0 {
                TapeSymbol::LeftEnd
            } else if cell == b - 1 {
                TapeSymbol::RightEnd
            } else {
                TapeSymbol::Zero
            };
            inputs.push(PiInput::Tape {
                content,
                state: p.machine().final_state(),
                head: cell == 0,
            });
        }
        let outputs = assert_solved(&p, &inputs);
        assert!(outputs
            .iter()
            .any(|o| matches!(o, PiOutput::Error4(_, _, _))));
    }

    #[test]
    fn randomized_corruptions_always_get_valid_outputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = problem();
        let base = p.good_input(Secret::A, 3).unwrap();
        let machine_states = p.machine().num_states();
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..200 {
            let mut inputs = base.clone();
            let corruptions = rng.gen_range(1..4);
            for _ in 0..corruptions {
                let pos = rng.gen_range(0..inputs.len());
                inputs[pos] = match rng.gen_range(0..5) {
                    0 => PiInput::Separator,
                    1 => PiInput::Empty,
                    2 => PiInput::Start(Secret::B),
                    3 => PiInput::Tape {
                        content: TapeSymbol::ALL[rng.gen_range(0..4)],
                        state: StateId(rng.gen_range(0..machine_states) as u16),
                        head: rng.gen_bool(0.3),
                    },
                    _ => PiInput::Tape {
                        content: TapeSymbol::One,
                        state: StateId(0),
                        head: true,
                    },
                };
            }
            assert_solved(&p, &inputs);
        }
    }
}
