//! The lift from consistently oriented paths to undirected paths and cycles
//! (§3.7): orientation labels `{0, 1, 2}` are added to the input, must be
//! copied to the output, and nodes may output an error where the orientation
//! is inconsistent.
//!
//! An undirected verifier looks at both neighbours; we therefore express the
//! lifted problem as a radius-1 [`WindowLcl`] whose windows are unordered in
//! the sense that the verifier recovers the direction from the copied
//! orientation labels, exactly as described in the paper.

use lcl_problem::{InLabel, NormalizedLcl, OutLabel, Result, Window, WindowLcl};

/// Index arithmetic for the lifted label sets.
///
/// Input `(a, d)` where `a` is the original input and `d ∈ {0,1,2}` the
/// orientation counter; output `(d, v)` where `v` is either an original output
/// or the error label `E` (encoded as index `β`).
fn lifted_input(a: usize, d: usize) -> u16 {
    (a * 3 + d) as u16
}

fn lifted_output(d: usize, v: usize, beta: usize) -> u16 {
    (d * (beta + 1) + v) as u16
}

/// Lifts a problem on consistently oriented paths to undirected paths/cycles
/// (§3.7). The new input alphabet is `Σ_in × {0, 1, 2}`, the new output
/// alphabet is `{0, 1, 2} × (Σ_out ∪ {E})`; the verifier checks that the
/// orientation counter is copied, and
///
/// * where the orientation counters increase consistently (mod 3), the
///   original node/edge constraints hold between the node and its
///   predecessor;
/// * where they do not, the node may output `E` ("treat the place where the
///   orientation is inconsistent as a place where the path ends").
///
/// # Errors
///
/// Propagates construction errors.
pub fn undirected_lift(problem: &NormalizedLcl) -> Result<WindowLcl> {
    let alpha = problem.num_inputs();
    let beta = problem.num_outputs();
    let mut b = WindowLcl::builder(format!("{}-undirected", problem.name()), 1);
    let mut in_names = Vec::with_capacity(alpha * 3);
    for a in 0..alpha {
        for d in 0..3 {
            in_names.push(format!("{}·{}", problem.input_alphabet().name(a), d));
        }
    }
    let mut out_names = Vec::with_capacity(3 * (beta + 1));
    for d in 0..3 {
        for v in 0..beta {
            out_names.push(format!("{}·{}", d, problem.output_alphabet().name(v)));
        }
        out_names.push(format!("{}·E", d));
    }
    b.input_labels(&in_names);
    b.output_labels(&out_names);

    // Decode helpers for window cells.
    let decode_in = |l: InLabel| (l.index() / 3, l.index() % 3);
    let decode_out = |l: OutLabel| (l.index() / (beta + 1), l.index() % (beta + 1));

    let cell_ok = |cells: &[(InLabel, OutLabel)], center: usize| -> bool {
        let (a_c, d_in) = decode_in(cells[center].0);
        let (d_out, v) = decode_out(cells[center].1);
        // The orientation counter must be copied from input to output.
        if d_in != d_out {
            return false;
        }
        // Find the predecessor: the neighbour whose copied counter is one less
        // (mod 3). With both neighbours visible, at most one qualifies.
        let mut pred: Option<usize> = None;
        let mut inconsistent = false;
        for (idx, cell) in cells.iter().enumerate() {
            if idx == center {
                continue;
            }
            let (_, nd) = decode_out(cell.1);
            if (nd + 1) % 3 == d_in {
                if pred.is_some() {
                    inconsistent = true;
                }
                pred = Some(idx);
            } else if (d_in + 1) % 3 == nd {
                // successor: fine
            } else {
                inconsistent = true;
            }
        }
        if v == beta {
            // The error label is allowed only where the orientation really is
            // inconsistent (or at a window that does not see both neighbours —
            // handled by the boundary windows below).
            return inconsistent;
        }
        // Original node constraint.
        if !problem.node_ok(InLabel::from_index(a_c), OutLabel::from_index(v)) {
            return false;
        }
        // Original edge constraint towards the predecessor, if it exists and
        // did not output the error label.
        if let Some(p) = pred {
            let (_, pv) = decode_out(cells[p].1);
            if pv != beta && !problem.edge_ok(OutLabel::from_index(pv), OutLabel::from_index(v)) {
                return false;
            }
        }
        true
    };

    b.allow_full_windows_by(|cells| cell_ok(cells, 1));
    b.allow_boundary_windows_by(|center, cells| {
        // Endpoint nodes of an undirected path: same rules, with the missing
        // neighbour imposing no constraint.
        let (a_c, d_in) = decode_in(cells[center].0);
        let (d_out, v) = decode_out(cells[center].1);
        if d_in != d_out {
            return false;
        }
        if v == beta {
            return true; // an endpoint may always declare the path ended
        }
        if !problem.node_ok(InLabel::from_index(a_c), OutLabel::from_index(v)) {
            return false;
        }
        for (idx, cell) in cells.iter().enumerate() {
            if idx == center {
                continue;
            }
            let (_, nd) = decode_out(cell.1);
            let (_, nv) = decode_out(cell.1);
            if (nd + 1) % 3 == d_in && nv != beta {
                let _ = cell;
                if !problem.edge_ok(OutLabel::from_index(nv), OutLabel::from_index(v)) {
                    return false;
                }
            }
        }
        true
    });
    b.build()
}

/// Encodes an oriented instance (a directed path/cycle over the original
/// input alphabet) as an undirected-lift instance by attaching the
/// orientation counters `0, 1, 2, 0, …` (§3.7).
pub fn orient_instance(
    problem: &NormalizedLcl,
    instance: &lcl_problem::Instance,
) -> lcl_problem::Instance {
    let _ = problem;
    let inputs: Vec<InLabel> = instance
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, l)| InLabel(lifted_input(l.index(), i % 3)))
        .collect();
    match instance.topology() {
        lcl_problem::Topology::Cycle => lcl_problem::Instance::cycle(inputs),
        lcl_problem::Topology::Path => lcl_problem::Instance::path(inputs),
    }
}

/// Encodes a labeling of the oriented instance as a labeling of the lifted
/// instance (copying the orientation counters).
pub fn orient_labeling(
    problem: &NormalizedLcl,
    labeling: &lcl_problem::Labeling,
) -> lcl_problem::Labeling {
    let beta = problem.num_outputs();
    let outputs: Vec<OutLabel> = labeling
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, l)| OutLabel(lifted_output(i % 3, l.index(), beta)))
        .collect();
    lcl_problem::Labeling::new(outputs)
}

/// Convenience re-export of the window type for downstream users building
/// custom lifted windows in tests.
pub type LiftedWindow = Window;

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::{Instance, Labeling, Topology};

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn lift_has_expected_alphabets() {
        let p = three_coloring();
        let lifted = undirected_lift(&p).unwrap();
        assert_eq!(lifted.input_alphabet().len(), 3);
        assert_eq!(lifted.output_alphabet().len(), 12);
        assert_eq!(lifted.radius(), 1);
        assert!(lifted.num_allowed_windows() > 0);
    }

    #[test]
    fn oriented_solutions_remain_valid_after_lifting() {
        let p = three_coloring();
        let lifted = undirected_lift(&p).unwrap();
        // A 6-cycle, consistently oriented; the orientation counters are
        // 0,1,2,0,1,2 which is consistent all the way around.
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let coloring = Labeling::from_indices(&[0, 1, 2, 0, 1, 2]);
        assert!(p.is_valid(&inst, &coloring));
        let lifted_inst = orient_instance(&p, &inst);
        let lifted_out = orient_labeling(&p, &coloring);
        assert!(
            lifted.is_valid(&lifted_inst, &lifted_out),
            "{}",
            lifted.check(&lifted_inst, &lifted_out)
        );
        // Dropping the orientation copy breaks validity.
        let mut bad = lifted_out.clone();
        *bad.output_mut(0) = OutLabel(lifted_output(1, 0, p.num_outputs()));
        assert!(!lifted.is_valid(&lifted_inst, &bad));
    }

    #[test]
    fn improper_colorings_stay_invalid() {
        let p = three_coloring();
        let lifted = undirected_lift(&p).unwrap();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let bad = Labeling::from_indices(&[0, 0, 2, 0, 1, 2]);
        assert!(!p.is_valid(&inst, &bad));
        let lifted_inst = orient_instance(&p, &inst);
        let lifted_bad = orient_labeling(&p, &bad);
        assert!(!lifted.is_valid(&lifted_inst, &lifted_bad));
    }

    #[test]
    fn error_labels_require_inconsistent_orientation() {
        let p = three_coloring();
        let lifted = undirected_lift(&p).unwrap();
        // Consistent orientation: an error output in the middle is rejected.
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let lifted_inst = orient_instance(&p, &inst);
        let coloring = Labeling::from_indices(&[0, 1, 2, 0, 1, 2]);
        let mut with_error = orient_labeling(&p, &coloring);
        *with_error.output_mut(2) = OutLabel(lifted_output(2, p.num_outputs(), p.num_outputs()));
        assert!(!lifted.is_valid(&lifted_inst, &with_error));
    }
}
