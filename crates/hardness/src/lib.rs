//! # lcl-hardness
//!
//! The PSPACE-hardness machinery of Section 3 of *"The distributed complexity
//! of locally checkable problems on paths is decidable"* (PODC 2019):
//!
//! * [`pi_mb`] — the LCL family `Π_{M_B}` (§3.2): input/output labels, the
//!   locally checkable constraints 1–12, and the encoding of an LBA execution
//!   as a path input (Definition 1, Figure 1);
//! * [`upper_bound`] — the `O(B · T)` solver of §3.3 (the prover/disprover
//!   case analysis producing `Start(φ)` on good inputs and error chains like
//!   Figure 2 on corrupted inputs);
//! * [`normalize`] — β-normalization (§3.5, Lemma 3): binary input encoding
//!   with the block layout of Figure 3, plus Theorem 4's size accounting;
//! * [`undirected`] — the lift from directed to undirected paths/cycles
//!   (§3.7): orientation labels in the input, copied to the output;
//! * [`tree_encoding`] — encoding input labels as attached trees (§3.8):
//!   `Enc`/`Dec` of bit strings as degree-3 rooted trees and the construction
//!   of the modified graph `G*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod normalize;
pub mod pi_mb;
pub mod tree_encoding;
pub mod undirected;
pub mod upper_bound;

pub use normalize::{beta_normalize, BetaNormalized};
pub use pi_mb::{PiInput, PiMb, PiOutput, Secret};
pub use tree_encoding::{decode_tree, encode_bits, InputTree, LabeledGraph};
pub use undirected::undirected_lift;
pub use upper_bound::solve_pi_mb;
