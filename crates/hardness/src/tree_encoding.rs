//! Encoding input labels as attached trees (§3.8): the `Enc`/`Dec` functions
//! for `2^k`-bit strings, and the construction of the modified graph `G*` in
//! which every node of a labeled graph `G` carries its input label as a small
//! degree-3 rooted tree.

use std::collections::HashMap;

/// A rooted tree stored as parent/children arrays (node 0 is the root).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputTree {
    /// `parent[v]` is the parent of `v` (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// `children[v]` lists the children of `v`, in insertion order.
    pub children: Vec<Vec<usize>>,
}

impl InputTree {
    fn new() -> Self {
        InputTree {
            parent: vec![None],
            children: vec![vec![]],
        }
    }

    fn add_child(&mut self, parent: usize) -> usize {
        let v = self.parent.len();
        self.parent.push(Some(parent));
        self.children.push(vec![]);
        self.children[parent].push(v);
        v
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the tree has no nodes (never the case for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Degree of a node (children + parent).
    pub fn degree(&self, v: usize) -> usize {
        self.children[v].len() + usize::from(self.parent[v].is_some())
    }

    /// Depth of the deepest node.
    pub fn depth(&self) -> usize {
        fn rec(t: &InputTree, v: usize) -> usize {
            t.children[v]
                .iter()
                .map(|&c| 1 + rec(t, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, 0)
    }
}

/// `Enc(S)` for a bit string of length `2^k` (§3.8): a full binary tree of
/// depth `k` whose left edges are subdivided, with two children attached to
/// every leaf and two extra grandchildren when the corresponding bit is 1.
pub fn encode_bits(bits: &[bool]) -> InputTree {
    assert!(
        bits.len().is_power_of_two(),
        "Enc is defined for strings of length 2^k"
    );
    let k = bits.len().trailing_zeros() as usize;
    let mut tree = InputTree::new();
    // Build the subdivided full binary tree and collect the leaves in in-order.
    let mut leaves = Vec::with_capacity(bits.len());
    build(&mut tree, 0, k, &mut leaves);
    fn build(tree: &mut InputTree, v: usize, depth: usize, leaves: &mut Vec<usize>) {
        if depth == 0 {
            leaves.push(v);
            return;
        }
        // Left child, reached through a subdivision node w.
        let w = tree.add_child(v);
        let left = tree.add_child(w);
        build(tree, left, depth - 1, leaves);
        // Right child, attached directly.
        let right = tree.add_child(v);
        build(tree, right, depth - 1, leaves);
    }
    // Attach the bit gadgets to the leaves (in-order = left to right).
    for (leaf, &bit) in leaves.iter().zip(bits.iter()) {
        let x = tree.add_child(*leaf);
        let y = tree.add_child(*leaf);
        if bit {
            tree.add_child(x);
            tree.add_child(y);
        }
    }
    tree
}

/// `Dec(T)`: recovers the bit string from a tree produced by [`encode_bits`].
///
/// Returns `None` if the tree is not a valid encoding.
pub fn decode_tree(tree: &InputTree) -> Option<Vec<bool>> {
    // Walk down: a node is an internal tree node if it has exactly two
    // children one of which is a subdivision node (single-child) — the
    // subdivision child leads to the left subtree. A node is a "bit leaf" if
    // its two children have degree 1 or 2 towards below (0 or 1 children).
    fn rec(tree: &InputTree, v: usize, out: &mut Vec<bool>) -> Option<()> {
        let kids = &tree.children[v];
        if kids.len() != 2 {
            return None;
        }
        let (a, b) = (kids[0], kids[1]);
        let a_kids = tree.children[a].len();
        let b_kids = tree.children[b].len();
        // Bit leaf: both children are the x/y gadget nodes with 0 or 1 children.
        let is_gadget = |c: usize| {
            tree.children[c].len() <= 1
                && tree.children[c]
                    .iter()
                    .all(|&g| tree.children[g].is_empty())
        };
        if is_gadget(a)
            && is_gadget(b)
            && a_kids == b_kids
            && tree.children[a]
                .iter()
                .chain(tree.children[b].iter())
                .all(|&g| tree.children[g].is_empty())
        {
            // Could still be an internal node whose subtrees look tiny; the
            // construction guarantees internal nodes have a subdivision child
            // with exactly one child that itself branches, so this is safe for
            // trees produced by `encode_bits`.
            out.push(a_kids == 1);
            return Some(());
        }
        // Internal node: the subdivision child has exactly one child (the left
        // subtree root); the other child is the right subtree root.
        let (sub, right) = if a_kids == 1 { (a, b) } else { (b, a) };
        if tree.children[sub].len() != 1 {
            return None;
        }
        let left = tree.children[sub][0];
        rec(tree, left, out)?;
        rec(tree, right, out)
    }
    let mut out = Vec::new();
    rec(tree, 0, &mut out)?;
    if out.len().is_power_of_two() {
        Some(out)
    } else {
        None
    }
}

/// A small labeled graph (adjacency lists + one input label index per node),
/// used to demonstrate the `G → G*` construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabeledGraph {
    /// Adjacency lists.
    pub adj: Vec<Vec<usize>>,
    /// Input label of each node.
    pub label: Vec<usize>,
}

impl LabeledGraph {
    /// Creates a graph with `n` isolated nodes carrying the given labels.
    pub fn new(labels: Vec<usize>) -> Self {
        LabeledGraph {
            adj: vec![vec![]; labels.len()],
            label: labels,
        }
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.adj[u].push(v);
        self.adj[v].push(u);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Builds `G*` (§3.8): attaches to every node the tree encoding of its
    /// label, written with `2^k` bits where `k = ⌈log log |Σ_in|⌉` (at least
    /// one bit). Returns the new graph together with, for every original node,
    /// the index of the root of its attached tree.
    pub fn attach_label_trees(&self, alphabet_size: usize) -> (LabeledGraph, Vec<usize>) {
        let mut k = 0usize;
        while (1usize << (1usize << k)) < alphabet_size {
            k += 1;
        }
        let bits_len = 1usize << k;
        let mut g = LabeledGraph {
            adj: self.adj.clone(),
            label: vec![0; self.len()],
        };
        let mut roots = Vec::with_capacity(self.len());
        for v in 0..self.len() {
            let mut bits = vec![false; bits_len];
            for (i, bit) in bits.iter_mut().enumerate() {
                *bit = (self.label[v] >> (bits_len - 1 - i)) & 1 == 1;
            }
            let tree = encode_bits(&bits);
            // Append the tree's nodes.
            let offset = g.adj.len();
            let mut map = HashMap::new();
            for t in 0..tree.len() {
                map.insert(t, offset + t);
                g.adj.push(vec![]);
                g.label.push(0);
            }
            for t in 0..tree.len() {
                if let Some(p) = tree.parent[t] {
                    let (a, b) = (map[&p], map[&t]);
                    g.adj[a].push(b);
                    g.adj[b].push(a);
                }
            }
            g.add_edge(v, offset);
            roots.push(offset);
        }
        (g, roots)
    }

    /// Recovers the label of every original node of a graph produced by
    /// [`Self::attach_label_trees`], by decoding the attached trees.
    pub fn recover_labels(
        original_len: usize,
        gstar: &LabeledGraph,
        roots: &[usize],
    ) -> Vec<Option<usize>> {
        (0..original_len)
            .map(|v| {
                let root = roots[v];
                // Rebuild the subtree reachable from the root without going
                // back into the original node v.
                let mut tree = InputTree::new();
                let mut map = HashMap::new();
                map.insert(root, 0usize);
                let mut stack = vec![(root, v)];
                while let Some((node, from)) = stack.pop() {
                    for &next in &gstar.adj[node] {
                        if next == from || map.contains_key(&next) {
                            continue;
                        }
                        let parent_id = map[&node];
                        let id = tree.add_child(parent_id);
                        map.insert(next, id);
                        stack.push((next, node));
                    }
                }
                decode_tree(&tree).map(|bits| {
                    bits.iter()
                        .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enc_dec_roundtrip_all_two_bit_strings() {
        for code in 0..4usize {
            let bits = vec![code & 2 != 0, code & 1 != 0];
            let tree = encode_bits(&bits);
            assert!(tree.depth() <= 2 * (1 + 1) + 1);
            assert!((0..tree.len()).all(|v| tree.degree(v) <= 3));
            assert_eq!(decode_tree(&tree), Some(bits));
        }
    }

    #[test]
    fn enc_dec_roundtrip_four_bit_strings() {
        for code in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| (code >> (3 - i)) & 1 == 1).collect();
            let tree = encode_bits(&bits);
            assert!((0..tree.len()).all(|v| tree.degree(v) <= 3), "max degree 3");
            assert_eq!(decode_tree(&tree), Some(bits), "code {code}");
        }
    }

    #[test]
    fn malformed_trees_are_rejected() {
        let mut t = InputTree::new();
        t.add_child(0);
        assert_eq!(decode_tree(&t), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn gstar_construction_recovers_labels() {
        // A labeled 4-cycle with labels from an alphabet of size 4.
        let mut g = LabeledGraph::new(vec![0, 3, 2, 1]);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        assert_eq!(g.max_degree(), 2);
        let (gstar, roots) = g.attach_label_trees(4);
        assert!(gstar.len() > g.len());
        assert!(gstar.max_degree() <= 3, "∆(G*) = max(3, ∆(G)+1)");
        let recovered = LabeledGraph::recover_labels(g.len(), &gstar, &roots);
        assert_eq!(
            recovered,
            vec![Some(0), Some(3), Some(2), Some(1)],
            "Theorem 6: the input labels are recoverable from G*"
        );
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = encode_bits(&[true, false, true]);
    }
}
