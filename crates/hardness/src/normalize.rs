//! β-normalization (§3.5, Lemma 3 and Figure 3): encoding an arbitrary input
//! alphabet in binary blocks so that the input alphabet of the resulting
//! problem has exactly two labels.
//!
//! Every node of the original instance is expanded into a block of
//! `γ = 2·⌈log α⌉ + 3` nodes: `a + 1` nodes with input `1`, one node with
//! input `0`, `a` nodes carrying the binary representation of the original
//! input label, and a final node with input `0` (Figure 3). The output of
//! every block node carries the original node's output, and each node must
//! also copy the inputs of its whole block into its output so that the
//! block structure is locally checkable (the full construction additionally
//! introduces the escape labels `E`, `El`, `Er` for instances that are not
//! valid encodings; this implementation covers the encoding itself, the
//! in-block output agreement, and the original constraints across block
//! boundaries, which is the part exercised by valid encodings — see
//! DESIGN.md, experiment E-F3).

use lcl_problem::{
    Alphabet, InLabel, Instance, Labeling, NormalizedLcl, OutLabel, ProblemError, Result,
};

/// The result of β-normalizing a problem: the new problem, the block length
/// `γ`, and enough bookkeeping to translate instances and labelings.
#[derive(Clone, Debug)]
pub struct BetaNormalized {
    /// The original problem.
    pub original: NormalizedLcl,
    /// The β-normalized problem (binary input alphabet).
    pub normalized: NormalizedLcl,
    /// Number of bits `a = ⌈log₂ α⌉` used per original input label.
    pub bits: usize,
    /// Block length `γ = 2a + 3`.
    pub gamma: usize,
}

fn bits_needed(alpha: usize) -> usize {
    let mut bits = 1;
    while (1usize << bits) < alpha {
        bits += 1;
    }
    bits
}

/// β-normalizes a problem: the new input alphabet is `{0, 1}`, the new output
/// alphabet is `{0, …, γ-1} × Σ_out` (each output records the node's position
/// inside its block and the original output of the block), and the constraints
/// enforce (i) the positions advance cyclically through the block layout,
/// (ii) nodes of the same block agree on the original output, (iii) the
/// claimed position is consistent with the node's binary input per the
/// Figure 3 layout, and (iv) consecutive blocks satisfy the original node and
/// edge constraints (the original input is recovered from the data bits).
///
/// For instances produced by [`BetaNormalized::encode_instance`] the valid
/// labelings of the normalized problem are exactly the block-wise encodings of
/// the valid labelings of the original problem (tested in this module), and
/// the complexity changes by the constant factor `γ` — the content of Lemma 3.
///
/// # Errors
///
/// Propagates construction errors from the problem builder.
pub fn beta_normalize(original: &NormalizedLcl) -> Result<BetaNormalized> {
    let alpha = original.num_inputs();
    let beta = original.num_outputs();
    let bits = bits_needed(alpha);
    let gamma = 2 * bits + 3;

    // New output label (pos, original_input, original_output): the original
    // input must also be carried so that the node constraint at data-bit
    // positions can check the bit against the claimed input, and the block
    // boundary can check the original node constraint.
    let mut out_names = Vec::with_capacity(gamma * alpha * beta);
    for pos in 0..gamma {
        for a in 0..alpha {
            for o in 0..beta {
                out_names.push(format!(
                    "p{pos}|{}|{}",
                    original.input_alphabet().name(a),
                    original.output_alphabet().name(o)
                ));
            }
        }
    }
    let index = |pos: usize, a: usize, o: usize| (pos * alpha + a) * beta + o;

    let mut b = NormalizedLcl::builder(format!("{}-beta-normalized", original.name()));
    b.input_alphabet(Alphabet::new(["0", "1"]));
    b.output_labels(&out_names);

    // Node constraint: the bit at each position must match the Figure 3
    // layout for the claimed original input.
    for pos in 0..gamma {
        for a in 0..alpha {
            let expected_bit: u16 = if pos <= bits {
                1 // the a+1 leading ones
            } else if pos == bits + 1 || pos == gamma - 1 {
                0 // the two zero separators
            } else {
                // data bits, most significant first
                let bit_index = pos - (bits + 2);
                ((a >> (bits - 1 - bit_index)) & 1) as u16
            };
            for o in 0..beta {
                if original.node_ok(InLabel::from_index(a), OutLabel::from_index(o)) {
                    b.allow_node_idx(expected_bit, index(pos, a, o) as u16);
                }
            }
        }
    }

    // Edge constraint: positions advance cyclically; inside a block the
    // carried (input, output) pair stays fixed; across a block boundary the
    // original edge constraint must hold between the two carried outputs.
    for pos in 0..gamma {
        let next_pos = (pos + 1) % gamma;
        for a1 in 0..alpha {
            for o1 in 0..beta {
                for a2 in 0..alpha {
                    for o2 in 0..beta {
                        let ok = if next_pos == 0 {
                            original.edge_ok(OutLabel::from_index(o1), OutLabel::from_index(o2))
                        } else {
                            a1 == a2 && o1 == o2
                        };
                        if ok {
                            b.allow_edge_idx(
                                index(pos, a1, o1) as u16,
                                index(next_pos, a2, o2) as u16,
                            );
                        }
                    }
                }
            }
        }
    }

    Ok(BetaNormalized {
        original: original.clone(),
        normalized: b.build()?,
        bits,
        gamma,
    })
}

impl BetaNormalized {
    /// Encodes an original instance into the binary block layout of Figure 3.
    pub fn encode_instance(&self, instance: &Instance) -> Instance {
        let mut inputs = Vec::with_capacity(instance.len() * self.gamma);
        for &label in instance.inputs() {
            // a+1 ones
            for _ in 0..=self.bits {
                inputs.push(InLabel(1));
            }
            inputs.push(InLabel(0));
            for bit_index in 0..self.bits {
                let bit = (label.index() >> (self.bits - 1 - bit_index)) & 1;
                inputs.push(InLabel(bit as u16));
            }
            inputs.push(InLabel(0));
        }
        match instance.topology() {
            lcl_problem::Topology::Cycle => Instance::cycle(inputs),
            lcl_problem::Topology::Path => Instance::path(inputs),
        }
    }

    /// Encodes a labeling of the original instance into a labeling of the
    /// encoded instance (every block node carries its block's pair).
    ///
    /// # Errors
    ///
    /// Returns an error if the labeling length does not match the instance.
    pub fn encode_labeling(&self, instance: &Instance, labeling: &Labeling) -> Result<Labeling> {
        if instance.len() != labeling.len() {
            return Err(ProblemError::mismatch("instance/labeling length"));
        }
        let alpha = self.original.num_inputs();
        let beta = self.original.num_outputs();
        let mut out = Vec::with_capacity(instance.len() * self.gamma);
        for i in 0..instance.len() {
            let a = instance.input(i).index();
            let o = labeling.output(i).index();
            for pos in 0..self.gamma {
                out.push(OutLabel::from_index((pos * alpha + a) * beta + o));
            }
        }
        Ok(Labeling::new(out))
    }

    /// Decodes a labeling of the encoded instance back to the original
    /// instance (reads the carried output at each block's first node).
    pub fn decode_labeling(&self, encoded: &Labeling) -> Labeling {
        let alpha = self.original.num_inputs();
        let beta = self.original.num_outputs();
        let outputs = encoded
            .outputs()
            .chunks(self.gamma)
            .map(|block| OutLabel::from_index(block[0].index() % (alpha * beta) % beta))
            .collect();
        Labeling::new(outputs)
    }

    /// Decodes the original input labels back out of an encoded instance
    /// (the inverse of [`Self::encode_instance`]); used by tests and by the
    /// Figure 3 demonstration.
    pub fn decode_instance(&self, encoded: &Instance) -> Vec<InLabel> {
        let mut labels = Vec::new();
        for block in encoded.inputs().chunks(self.gamma) {
            if block.len() < self.gamma {
                break;
            }
            let mut value = 0usize;
            for bit_index in 0..self.bits {
                value = (value << 1) | block[self.bits + 2 + bit_index].index();
            }
            labels.push(InLabel::from_index(value));
        }
        labels
    }

    /// Theorem 4 bookkeeping: the size of the description of the normalized
    /// problem, measured as `|Σ'_out|²` (the dominating term of a
    /// β-normalized LCL description, `O(β²)` in the paper's notation).
    pub fn description_size(&self) -> usize {
        let beta = self.normalized.num_outputs();
        beta * beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::Topology;

    fn copy_input() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b", "c"]);
        b.output_labels(&["a", "b", "c"]);
        for i in 0..3u16 {
            b.allow_node_idx(i, i);
        }
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    #[test]
    fn figure_3_layout() {
        let p = copy_input();
        let norm = beta_normalize(&p).unwrap();
        assert_eq!(norm.bits, 2);
        assert_eq!(norm.gamma, 7);
        let inst = Instance::from_indices(Topology::Cycle, &[2, 0]);
        let enc = norm.encode_instance(&inst);
        assert_eq!(enc.len(), 14);
        // Block for label 2 (= binary 10): 1 1 1 0 1 0 0.
        let first: Vec<u16> = enc.inputs()[..7].iter().map(|l| l.0).collect();
        assert_eq!(first, vec![1, 1, 1, 0, 1, 0, 0]);
        // Round trip.
        assert_eq!(norm.decode_instance(&enc), vec![InLabel(2), InLabel(0)]);
        assert!(norm.description_size() > p.num_outputs() * p.num_outputs());
    }

    #[test]
    fn encoded_labelings_are_valid_iff_original_ones_are() {
        let p = copy_input();
        let norm = beta_normalize(&p).unwrap();
        let inst = Instance::from_indices(Topology::Cycle, &[0, 2, 1, 1]);
        let good = Labeling::from_indices(&[0, 2, 1, 1]);
        assert!(p.is_valid(&inst, &good));
        let enc_inst = norm.encode_instance(&inst);
        let enc_good = norm.encode_labeling(&inst, &good).unwrap();
        assert!(
            norm.normalized.is_valid(&enc_inst, &enc_good),
            "{}",
            norm.normalized.check(&enc_inst, &enc_good)
        );
        // Decoding returns the original labeling.
        assert_eq!(norm.decode_labeling(&enc_good), good);
        // An invalid original labeling encodes to an invalid normalized one.
        let bad = Labeling::from_indices(&[1, 2, 1, 1]);
        assert!(!p.is_valid(&inst, &bad));
        let enc_bad = norm.encode_labeling(&inst, &bad).unwrap();
        assert!(!norm.normalized.is_valid(&enc_inst, &enc_bad));
        // Length mismatches are rejected.
        assert!(norm
            .encode_labeling(&inst, &Labeling::from_indices(&[0]))
            .is_err());
    }

    #[test]
    fn blockwise_agreement_is_enforced() {
        let p = copy_input();
        let norm = beta_normalize(&p).unwrap();
        let inst = Instance::from_indices(Topology::Cycle, &[0, 1]);
        let enc_inst = norm.encode_instance(&inst);
        let good = norm
            .encode_labeling(&inst, &Labeling::from_indices(&[0, 1]))
            .unwrap();
        // Corrupt one block node's carried output: the in-block edge
        // constraint must reject it.
        let mut corrupted = good.clone();
        let beta = p.num_outputs();
        let alpha = p.num_inputs();
        let idx = corrupted.output(3).index();
        *corrupted.output_mut(3) = OutLabel::from_index(
            // same position, same input, different output
            (idx / beta) * beta + ((idx % beta) + 1) % beta.min(alpha * beta),
        );
        assert!(!norm.normalized.is_valid(&enc_inst, &corrupted));
    }

    #[test]
    fn binary_alphabet_needs_one_bit() {
        let mut b = NormalizedLcl::builder("two-inputs");
        b.input_labels(&["x", "y"]);
        b.output_labels(&["o"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        let p = b.build().unwrap();
        let norm = beta_normalize(&p).unwrap();
        assert_eq!(norm.bits, 1);
        assert_eq!(norm.gamma, 5);
        assert_eq!(norm.normalized.num_inputs(), 2);
    }
}
