//! Canonical LBAs used throughout the repository.
//!
//! * [`unary_counter`] — the machine of the paper's Figure 1: it fills the
//!   tape with `1`s one cell per sweep, halting after `Θ(B²)` steps.
//! * [`binary_counter`] — the machine behind Theorem 4: it increments a
//!   binary counter until overflow, halting after `2^Θ(B)` steps.
//! * [`always_loop`] — never halts (its `Π_{M_B}` problem has complexity
//!   `Θ(n)`).
//! * [`immediate_halt`] — halts in one step (its `Π_{M_B}` problem has the
//!   smallest possible constant complexity).

use crate::machine::{Lba, Move, TapeSymbol};

use TapeSymbol::{LeftEnd, One, RightEnd, Zero};

/// A machine that halts immediately, whatever it reads.
pub fn immediate_halt() -> Lba {
    let mut b = Lba::builder("immediate-halt");
    let q0 = b.state("q0");
    let qf = b.state("qf");
    b.initial(q0).final_state(qf);
    for sym in TapeSymbol::ALL {
        b.rule(q0, sym, qf, sym, Move::Stay);
    }
    b.build().expect("immediate-halt is well-formed")
}

/// A machine that loops forever in its initial configuration.
pub fn always_loop() -> Lba {
    let mut b = Lba::builder("always-loop");
    let q0 = b.state("q0");
    let qf = b.state("qf");
    b.initial(q0).final_state(qf);
    for sym in TapeSymbol::ALL {
        b.rule(q0, sym, q0, sym, Move::Stay);
    }
    b.build().expect("always-loop is well-formed")
}

/// The unary counter of Figure 1: repeatedly sweeps right to the first `0`,
/// replaces it by `1` and returns to the left marker; halts when the sweep
/// reaches `R`. Runs for `Θ(B²)` steps on a tape of `B` cells.
pub fn unary_counter() -> Lba {
    let mut b = Lba::builder("unary-counter");
    let q0 = b.state("q0"); // sweep right looking for a 0
    let q1 = b.state("q1"); // return to the left marker
    let qf = b.state("qf");
    b.initial(q0).final_state(qf);
    b.rule(q0, LeftEnd, q0, LeftEnd, Move::Right);
    b.rule(q0, One, q0, One, Move::Right);
    b.rule(q0, Zero, q1, One, Move::Left);
    b.rule(q0, RightEnd, qf, RightEnd, Move::Stay);
    b.rule(q1, One, q1, One, Move::Left);
    b.rule(q1, Zero, q1, Zero, Move::Left);
    b.rule(q1, LeftEnd, q0, LeftEnd, Move::Right);
    b.rule(q1, RightEnd, q1, RightEnd, Move::Left);
    b.build().expect("unary-counter is well-formed")
}

/// The binary counter behind Theorem 4: the data cells hold a binary number
/// (least-significant bit next to `L`); the machine increments it until the
/// carry overflows past `R`, i.e. after `2^{B-2}` increments. Runs for
/// `2^Θ(B)` steps on a tape of `B` cells.
pub fn binary_counter() -> Lba {
    let mut b = Lba::builder("binary-counter");
    let inc = b.state("inc"); // propagate the increment / carry to the right
    let ret = b.state("ret"); // walk back to the left marker
    let qf = b.state("qf");
    b.initial(inc).final_state(qf);
    b.rule(inc, LeftEnd, inc, LeftEnd, Move::Right);
    b.rule(inc, Zero, ret, One, Move::Left);
    b.rule(inc, One, inc, Zero, Move::Right);
    b.rule(inc, RightEnd, qf, RightEnd, Move::Stay);
    b.rule(ret, Zero, ret, Zero, Move::Left);
    b.rule(ret, One, ret, One, Move::Left);
    b.rule(ret, LeftEnd, inc, LeftEnd, Move::Right);
    b.rule(ret, RightEnd, ret, RightEnd, Move::Left);
    b.build().expect("binary-counter is well-formed")
}

/// All canonical machines with their names, for data-driven tests and
/// benchmark sweeps.
pub fn all_machines() -> Vec<Lba> {
    vec![
        immediate_halt(),
        always_loop(),
        unary_counter(),
        binary_counter(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    #[test]
    fn all_machines_are_well_formed() {
        let machines = all_machines();
        assert_eq!(machines.len(), 4);
        for m in &machines {
            assert!(m.num_states() >= 2);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn halting_behaviour_matches_expectations() {
        assert!(immediate_halt().halts(5).unwrap());
        assert!(!always_loop().halts(5).unwrap());
        assert!(unary_counter().halts(6).unwrap());
        assert!(binary_counter().halts(6).unwrap());
    }

    #[test]
    fn binary_counter_counts_through_all_values() {
        // With 3 data cells the counter must pass through 8 increments; the
        // trace should contain a configuration whose data cells read 1 0 1
        // (value 5, LSB first).
        let m = binary_counter();
        let out = m.run(5, 1_000_000).unwrap();
        let Outcome::Halted { trace } = out else {
            panic!("halts")
        };
        let mut seen_five = false;
        for c in &trace {
            let bits: Vec<u8> = c.tape[1..4]
                .iter()
                .map(|s| match s {
                    TapeSymbol::One => 1,
                    _ => 0,
                })
                .collect();
            if bits == vec![1, 0, 1] {
                seen_five = true;
            }
        }
        assert!(seen_five, "the counter must pass through value 5");
    }

    #[test]
    fn unary_counter_monotone_progress() {
        let m = unary_counter();
        let Outcome::Halted { trace } = m.run(7, 100_000).unwrap() else {
            panic!("halts")
        };
        let mut last_ones = 0usize;
        for c in &trace {
            let ones = c.tape.iter().filter(|&&s| s == TapeSymbol::One).count();
            assert!(ones >= last_ones, "ones never decrease");
            last_ones = last_ones.max(ones);
        }
        assert_eq!(last_ones, 5, "all data cells end as 1");
    }
}
