//! Machine descriptions: states, tape symbols, transition functions.

use std::error::Error as StdError;
use std::fmt;

/// The tape alphabet `Γ` of the paper's LBAs: the integers 0 and 1 plus the
/// boundary markers `L` and `R` (§3.1).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TapeSymbol {
    /// The integer 0.
    Zero,
    /// The integer 1.
    One,
    /// The left boundary marker `L`.
    LeftEnd,
    /// The right boundary marker `R`.
    RightEnd,
}

impl TapeSymbol {
    /// All four symbols, in a fixed order used for dense indexing.
    pub const ALL: [TapeSymbol; 4] = [
        TapeSymbol::Zero,
        TapeSymbol::One,
        TapeSymbol::LeftEnd,
        TapeSymbol::RightEnd,
    ];

    /// Dense index of the symbol (0..4).
    pub fn index(self) -> usize {
        match self {
            TapeSymbol::Zero => 0,
            TapeSymbol::One => 1,
            TapeSymbol::LeftEnd => 2,
            TapeSymbol::RightEnd => 3,
        }
    }

    /// The symbol with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 4`.
    pub fn from_index(index: usize) -> Self {
        TapeSymbol::ALL[index]
    }
}

impl fmt::Display for TapeSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TapeSymbol::Zero => "0",
            TapeSymbol::One => "1",
            TapeSymbol::LeftEnd => "L",
            TapeSymbol::RightEnd => "R",
        };
        write!(f, "{s}")
    }
}

/// Identifier of a machine state.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u16);

impl StateId {
    /// Dense index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Head movement of a transition: the paper's `{−, ←, →}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// `−`: the head stays.
    Stay,
    /// `←`: the head moves one cell to the left.
    Left,
    /// `→`: the head moves one cell to the right.
    Right,
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Move::Stay => "−",
            Move::Left => "←",
            Move::Right => "→",
        };
        write!(f, "{s}")
    }
}

/// One entry of the transition function:
/// `δ(state, symbol) = (next_state, written_symbol, movement)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The state the machine moves to.
    pub next_state: StateId,
    /// The symbol written at the head position.
    pub write: TapeSymbol,
    /// How the head moves.
    pub movement: Move,
}

/// Errors produced when constructing or running LBAs.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LbaError {
    /// The machine has no states.
    NoStates,
    /// A state index is out of range.
    BadState {
        /// The offending state index.
        state: usize,
        /// The number of states.
        num_states: usize,
    },
    /// A transition is missing for a non-final state and a reachable symbol.
    MissingTransition {
        /// The state whose transition is missing.
        state: StateId,
        /// The symbol read.
        symbol: TapeSymbol,
    },
    /// The tape size is too small (at least 3 cells are needed: `L`, one data
    /// cell, `R`).
    TapeTooSmall {
        /// The requested tape size.
        tape: usize,
    },
    /// A transition would move the head off the tape.
    HeadOutOfBounds {
        /// The step number at which this happened.
        step: usize,
    },
    /// The execution exceeded the caller-provided step budget without halting
    /// or provably looping.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for LbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbaError::NoStates => write!(f, "machine has no states"),
            LbaError::BadState { state, num_states } => {
                write!(f, "state {state} out of range (machine has {num_states})")
            }
            LbaError::MissingTransition { state, symbol } => {
                write!(f, "missing transition for ({state}, {symbol})")
            }
            LbaError::TapeTooSmall { tape } => {
                write!(
                    f,
                    "tape of size {tape} is too small (need at least 3 cells)"
                )
            }
            LbaError::HeadOutOfBounds { step } => {
                write!(f, "head moved off the tape at step {step}")
            }
            LbaError::BudgetExceeded { budget } => {
                write!(f, "execution exceeded the budget of {budget} steps")
            }
        }
    }
}

impl StdError for LbaError {}

/// A linear bounded automaton `M = (Q, q_0, q_f, Γ, δ)` as in §3.1.
///
/// The transition function is total on `(Q \ {q_f}) × Γ`; the tape size `B`
/// is supplied at execution time (the machine text itself does not depend on
/// `B`, which is what makes the PSPACE-hardness reduction work).
#[derive(Clone, Debug)]
pub struct Lba {
    name: String,
    state_names: Vec<String>,
    initial: StateId,
    finals: StateId,
    /// Dense `num_states × 4` table of transitions (entries for the final
    /// state are `None`).
    delta: Vec<Option<Transition>>,
}

impl Lba {
    /// Starts building a machine.
    pub fn builder(name: impl Into<String>) -> LbaBuilder {
        LbaBuilder::new(name)
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// The initial state `q_0`.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The final state `q_f`.
    pub fn final_state(&self) -> StateId {
        self.finals
    }

    /// The name of a state.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.state_names[state.index()]
    }

    /// The transition `δ(state, symbol)`, or `None` for the final state.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of range.
    pub fn transition(&self, state: StateId, symbol: TapeSymbol) -> Option<Transition> {
        self.delta[state.index() * 4 + symbol.index()]
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} states)", self.name, self.num_states())
    }
}

/// Builder for [`Lba`].
#[derive(Clone, Debug)]
pub struct LbaBuilder {
    name: String,
    state_names: Vec<String>,
    initial: Option<usize>,
    finals: Option<usize>,
    rules: Vec<(usize, TapeSymbol, usize, TapeSymbol, Move)>,
}

impl LbaBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        LbaBuilder {
            name: name.into(),
            state_names: Vec::new(),
            initial: None,
            finals: None,
            rules: Vec::new(),
        }
    }

    /// Adds a state and returns its index.
    pub fn state(&mut self, name: impl Into<String>) -> usize {
        self.state_names.push(name.into());
        self.state_names.len() - 1
    }

    /// Marks the initial state.
    pub fn initial(&mut self, state: usize) -> &mut Self {
        self.initial = Some(state);
        self
    }

    /// Marks the final state.
    pub fn final_state(&mut self, state: usize) -> &mut Self {
        self.finals = Some(state);
        self
    }

    /// Adds the transition `δ(state, read) = (next, write, movement)`.
    pub fn rule(
        &mut self,
        state: usize,
        read: TapeSymbol,
        next: usize,
        write: TapeSymbol,
        movement: Move,
    ) -> &mut Self {
        self.rules.push((state, read, next, write, movement));
        self
    }

    /// Builds and validates the machine.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no states, a referenced state is out of
    /// range, or a non-final state lacks a transition for some symbol.
    pub fn build(&self) -> Result<Lba, LbaError> {
        if self.state_names.is_empty() {
            return Err(LbaError::NoStates);
        }
        let n = self.state_names.len();
        let check = |s: usize| {
            if s >= n {
                Err(LbaError::BadState {
                    state: s,
                    num_states: n,
                })
            } else {
                Ok(())
            }
        };
        let initial = self.initial.unwrap_or(0);
        check(initial)?;
        let finals = self.finals.unwrap_or(n - 1);
        check(finals)?;
        let mut delta = vec![None; n * 4];
        for &(state, read, next, write, movement) in &self.rules {
            check(state)?;
            check(next)?;
            delta[state * 4 + read.index()] = Some(Transition {
                next_state: StateId(next as u16),
                write,
                movement,
            });
        }
        // Totality on non-final states.
        for s in 0..n {
            if s == finals {
                continue;
            }
            for sym in TapeSymbol::ALL {
                if delta[s * 4 + sym.index()].is_none() {
                    return Err(LbaError::MissingTransition {
                        state: StateId(s as u16),
                        symbol: sym,
                    });
                }
            }
        }
        Ok(Lba {
            name: self.name.clone(),
            state_names: self.state_names.clone(),
            initial: StateId(initial as u16),
            finals: StateId(finals as u16),
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_indexing_roundtrip() {
        for s in TapeSymbol::ALL {
            assert_eq!(TapeSymbol::from_index(s.index()), s);
        }
        assert_eq!(TapeSymbol::LeftEnd.to_string(), "L");
        assert_eq!(TapeSymbol::Zero.to_string(), "0");
    }

    #[test]
    fn display_impls() {
        assert_eq!(StateId(3).to_string(), "q3");
        assert_eq!(Move::Left.to_string(), "←");
        assert_eq!(Move::Stay.to_string(), "−");
        assert_eq!(Move::Right.to_string(), "→");
    }

    #[test]
    fn builder_requires_states_and_totality() {
        assert_eq!(
            Lba::builder("empty").build().unwrap_err(),
            LbaError::NoStates
        );
        let mut b = Lba::builder("partial");
        let q0 = b.state("q0");
        let qf = b.state("qf");
        b.initial(q0).final_state(qf);
        b.rule(q0, TapeSymbol::LeftEnd, qf, TapeSymbol::LeftEnd, Move::Stay);
        let err = b.build().unwrap_err();
        assert!(matches!(err, LbaError::MissingTransition { .. }));
        // Complete the machine.
        for sym in [TapeSymbol::Zero, TapeSymbol::One, TapeSymbol::RightEnd] {
            b.rule(q0, sym, qf, sym, Move::Stay);
        }
        let m = b.build().unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.initial_state(), StateId(0));
        assert_eq!(m.final_state(), StateId(1));
        assert_eq!(m.state_name(StateId(1)), "qf");
        assert!(m.transition(StateId(1), TapeSymbol::Zero).is_none());
        assert!(m.transition(StateId(0), TapeSymbol::Zero).is_some());
        assert!(m.to_string().contains("partial"));
    }

    #[test]
    fn builder_rejects_bad_state_indices() {
        let mut b = Lba::builder("bad");
        let q0 = b.state("q0");
        b.initial(q0).final_state(7);
        let err = b.build().unwrap_err();
        assert!(matches!(err, LbaError::BadState { state: 7, .. }));
    }

    #[test]
    fn error_display() {
        assert!(LbaError::TapeTooSmall { tape: 2 }.to_string().contains("2"));
        assert!(LbaError::BudgetExceeded { budget: 9 }
            .to_string()
            .contains("9"));
        assert!(LbaError::HeadOutOfBounds { step: 4 }
            .to_string()
            .contains("4"));
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<LbaError>();
    }
}
