//! # lcl-lba
//!
//! Linear bounded automata (LBA), the computational substrate of the paper's
//! PSPACE-hardness construction (§3.1).
//!
//! An LBA is a Turing machine whose tape has a fixed size `B`; the first and
//! last cells are marked with the special symbols `L` and `R` and the machine
//! can recognize them. The paper encodes the *execution trace* of an LBA as
//! the input labeling of a path (§3.2.2), and builds an LCL problem `Π_{M_B}`
//! whose distributed complexity depends on whether the machine halts — this
//! crate provides the machines, their execution, and the halting/looping
//! analysis that the `lcl-hardness` crate builds upon.
//!
//! # Example
//!
//! ```
//! use lcl_lba::{machines, Outcome};
//!
//! let machine = machines::binary_counter();
//! let outcome = machine.run(6, 1_000_000).expect("valid machine and tape size");
//! match outcome {
//!     Outcome::Halted { trace } => assert!(trace.len() > 16, "2^(B-2) increments"),
//!     _ => panic!("the binary counter halts"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod execution;
mod machine;
pub mod machines;

pub use execution::{Config, Outcome};
pub use machine::{Lba, LbaBuilder, LbaError, Move, StateId, TapeSymbol, Transition};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LbaError>;
