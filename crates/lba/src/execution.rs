//! Executing an LBA on its bounded tape: traces, halting and loop detection.

use crate::machine::{Lba, LbaError, Move, StateId, TapeSymbol};
use std::collections::HashSet;
use std::fmt;

/// One configuration (the paper's `step_i = (state_i, tape_i, head_i)`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// The machine state.
    pub state: StateId,
    /// The whole tape, including the `L`/`R` boundary markers.
    pub tape: Vec<TapeSymbol>,
    /// The head position (an index into `tape`).
    pub head: usize,
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.state)?;
        for (i, s) in self.tape.iter().enumerate() {
            if i == self.head {
                write!(f, "({s})")?;
            } else {
                write!(f, "{s}")?;
            }
        }
        write!(f, "]")
    }
}

/// The outcome of running an LBA on a tape of a given size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The machine reached its final state. The trace contains every
    /// configuration from the initial one to the halting one, in order — the
    /// paper's execution `(step_1, …, step_t)`.
    Halted {
        /// The full execution trace.
        trace: Vec<Config>,
    },
    /// The machine revisited a configuration, hence runs forever.
    Loops {
        /// Number of steps executed before the repetition was detected.
        steps_until_repeat: usize,
    },
}

impl Outcome {
    /// `true` if the machine halted.
    pub fn halted(&self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }

    /// The number of steps `t` of the execution (`trace.len()` for halting
    /// runs), or `None` for looping runs.
    pub fn steps(&self) -> Option<usize> {
        match self {
            Outcome::Halted { trace } => Some(trace.len()),
            Outcome::Loops { .. } => None,
        }
    }
}

impl Lba {
    /// The initial configuration on a tape of `tape_size` cells:
    /// `(L, 0, …, 0, R)` with the head on the first cell and the machine in
    /// its initial state (§3.1).
    ///
    /// # Errors
    ///
    /// Returns an error if `tape_size < 3`.
    pub fn initial_config(&self, tape_size: usize) -> Result<Config, LbaError> {
        if tape_size < 3 {
            return Err(LbaError::TapeTooSmall { tape: tape_size });
        }
        let mut tape = vec![TapeSymbol::Zero; tape_size];
        tape[0] = TapeSymbol::LeftEnd;
        tape[tape_size - 1] = TapeSymbol::RightEnd;
        Ok(Config {
            state: self.initial_state(),
            tape,
            head: 0,
        })
    }

    /// Performs one step from a configuration.
    ///
    /// Returns `Ok(None)` if the configuration is already in the final state.
    ///
    /// # Errors
    ///
    /// Returns an error if a transition is missing or the head would leave the
    /// tape.
    pub fn step(&self, config: &Config, step_index: usize) -> Result<Option<Config>, LbaError> {
        if config.state == self.final_state() {
            return Ok(None);
        }
        let read = config.tape[config.head];
        let t = self
            .transition(config.state, read)
            .ok_or(LbaError::MissingTransition {
                state: config.state,
                symbol: read,
            })?;
        let mut tape = config.tape.clone();
        tape[config.head] = t.write;
        let head = match t.movement {
            Move::Stay => config.head,
            Move::Left => config
                .head
                .checked_sub(1)
                .ok_or(LbaError::HeadOutOfBounds { step: step_index })?,
            Move::Right => {
                let h = config.head + 1;
                if h >= tape.len() {
                    return Err(LbaError::HeadOutOfBounds { step: step_index });
                }
                h
            }
        };
        Ok(Some(Config {
            state: t.next_state,
            tape,
            head,
        }))
    }

    /// Runs the machine on a tape of `tape_size` cells, starting from the
    /// canonical initial tape `(L, 0, …, 0, R)`.
    ///
    /// Looping is detected exactly, by recording visited configurations (the
    /// configuration space of an LBA is finite). `max_steps` bounds the work;
    /// it should be at least the size of the configuration space to guarantee
    /// a definite answer.
    ///
    /// # Errors
    ///
    /// Returns [`LbaError::BudgetExceeded`] if `max_steps` steps were executed
    /// without halting or repeating, and propagates machine errors.
    pub fn run(&self, tape_size: usize, max_steps: usize) -> Result<Outcome, LbaError> {
        let mut config = self.initial_config(tape_size)?;
        let mut seen: HashSet<Config> = HashSet::new();
        let mut trace = vec![config.clone()];
        seen.insert(config.clone());
        for step_index in 0..max_steps {
            match self.step(&config, step_index)? {
                None => return Ok(Outcome::Halted { trace }),
                Some(next) => {
                    if seen.contains(&next) {
                        return Ok(Outcome::Loops {
                            steps_until_repeat: step_index + 1,
                        });
                    }
                    seen.insert(next.clone());
                    trace.push(next.clone());
                    config = next;
                }
            }
        }
        // One more check: the final configuration may already be halting.
        if config.state == self.final_state() {
            return Ok(Outcome::Halted { trace });
        }
        Err(LbaError::BudgetExceeded { budget: max_steps })
    }

    /// Convenience: does the machine halt on a tape of `tape_size` cells?
    ///
    /// Uses a step budget proportional to the configuration-space size, so the
    /// answer is always definite for the machines used in this repository.
    ///
    /// # Errors
    ///
    /// Propagates machine errors; returns [`LbaError::BudgetExceeded`] only if
    /// the configuration space is astronomically large.
    pub fn halts(&self, tape_size: usize) -> Result<bool, LbaError> {
        // |Q| · B · |Γ|^(B-2) bounds the number of configurations reachable
        // from the canonical initial tape (the boundary markers never change).
        let configs = self
            .num_states()
            .saturating_mul(tape_size)
            .saturating_mul(4usize.saturating_pow(tape_size.saturating_sub(2) as u32))
            .saturating_add(16);
        let budget = configs.min(50_000_000);
        Ok(self.run(tape_size, budget)?.halted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn initial_config_shape() {
        let m = machines::immediate_halt();
        let c = m.initial_config(5).unwrap();
        assert_eq!(c.tape.len(), 5);
        assert_eq!(c.tape[0], TapeSymbol::LeftEnd);
        assert_eq!(c.tape[4], TapeSymbol::RightEnd);
        assert_eq!(c.tape[2], TapeSymbol::Zero);
        assert_eq!(c.head, 0);
        assert!(m.initial_config(2).is_err());
        assert!(c.to_string().contains("(L)"));
    }

    #[test]
    fn immediate_halt_halts_in_one_step() {
        let m = machines::immediate_halt();
        let out = m.run(5, 100).unwrap();
        assert!(out.halted());
        assert_eq!(out.steps(), Some(2)); // initial config + halting config
    }

    #[test]
    fn always_loop_is_detected() {
        let m = machines::always_loop();
        let out = m.run(6, 10_000).unwrap();
        assert!(!out.halted());
        assert_eq!(out.steps(), None);
        assert!(matches!(out, Outcome::Loops { steps_until_repeat } if steps_until_repeat <= 20));
        assert!(!m.halts(6).unwrap());
    }

    #[test]
    fn unary_counter_halts_in_quadratic_time() {
        let m = machines::unary_counter();
        for tape in 4..9usize {
            let out = m.run(tape, 100_000).unwrap();
            let steps = out.steps().expect("unary counter halts");
            let b = tape - 2; // number of data cells
            assert!(steps >= b * b / 2, "tape {tape}: {steps} steps");
            assert!(steps <= 4 * b * b + 8 * b + 8, "tape {tape}: {steps} steps");
            // The final tape is all ones between the markers.
            if let Outcome::Halted { trace } = out {
                let last = trace.last().unwrap();
                assert!(last.tape[1..tape - 1].iter().all(|&s| s == TapeSymbol::One));
            }
        }
        assert!(m.halts(5).unwrap());
    }

    #[test]
    fn binary_counter_halts_in_exponential_time() {
        let m = machines::binary_counter();
        let mut prev_steps = 0usize;
        for tape in 4..9usize {
            let out = m.run(tape, 10_000_000).unwrap();
            let steps = out.steps().expect("binary counter halts");
            let b = tape - 2;
            assert!(
                steps >= (1usize << b),
                "tape {tape}: only {steps} steps, expected ≥ 2^{b}"
            );
            assert!(steps > prev_steps, "steps must grow with the tape");
            prev_steps = steps;
        }
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let m = machines::binary_counter();
        assert!(matches!(
            m.run(8, 3),
            Err(LbaError::BudgetExceeded { budget: 3 })
        ));
    }

    #[test]
    fn trace_consistency() {
        // Every consecutive pair of trace configurations must be related by
        // one machine step — this is exactly the property the LCL encoding
        // checks (§3.2.2).
        let m = machines::unary_counter();
        if let Outcome::Halted { trace } = m.run(6, 100_000).unwrap() {
            for (i, pair) in trace.windows(2).enumerate() {
                let next = m.step(&pair[0], i).unwrap().expect("not yet final");
                assert_eq!(next, pair[1], "step {i}");
            }
        } else {
            panic!("unary counter halts");
        }
    }
}
