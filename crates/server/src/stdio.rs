//! The stdio front-end: the same NDJSON frames over any reader/writer pair.
//!
//! This is the `lcl-serve --stdio` pipe mode
//! (`echo '{"v":1,…}' | lcl-serve --stdio`), and doubles as the in-memory
//! harness the protocol-robustness tests drive with `io::Cursor`.

use crate::frame::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
use crate::service::{Service, StreamFrame};
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Serves frames from `input` until EOF, writing one terminal response line
/// per frame to `output` — preceded by its intermediate chunk frames for
/// `solve_stream`, each flushed as it is produced, so a pipe consumer sees
/// labeling progress with O(chunk) buffering. Oversized and malformed
/// frames get structured error replies; only I/O errors abort the loop.
///
/// Hot `classify` hits take the same zero-serialization fast lane as the
/// TCP backends (`Service::splice_line`): the cached payload bytes are
/// spliced around the request id straight into `output`, so the cache
/// tallies (and the wire bytes) are identical whichever front-end served
/// the workload. Terminal envelopes off the slow path serialize into one
/// scratch buffer reused across frames.
///
/// # Errors
///
/// Propagates read/write failures on the underlying streams.
pub fn serve_stdio(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    service.metrics().set_backend("stdio");
    let mut scratch = String::new();
    loop {
        let line = match read_frame(&mut input, MAX_FRAME_BYTES)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized { discarded, started } => {
                scratch.clear();
                service
                    .reject_oversized_at(discarded, started)
                    .into_json()
                    .write_json_string(&mut scratch);
                write_frame(&mut output, &scratch)?;
                output.flush()?;
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        if let Some((_, frame, trace)) = service.splice_line(&line, started) {
            match frame {
                StreamFrame::Spliced(spliced) => spliced.write_to(&mut output)?,
                StreamFrame::Final(reply) => write_frame(&mut output, &reply)?,
                StreamFrame::Chunk(_) => unreachable!("classify never streams"),
            }
            output.flush()?;
            if let Some(trace) = trace {
                trace.finish_written();
            }
            continue;
        }
        // Chunk frames are written through the sink in order; the first
        // write failure stops the stream and is reported once the terminal
        // envelope comes back.
        let mut chunk_error: Option<io::Error> = None;
        let mut emit =
            |frame: String| match write_frame(&mut output, &frame).and_then(|()| output.flush()) {
                Ok(()) => true,
                Err(e) => {
                    chunk_error = Some(e);
                    false
                }
            };
        let (envelope, trace) = service.handle_line_traced(&line, &mut emit);
        scratch.clear();
        envelope.into_json().write_json_string(&mut scratch);
        if let Some(trace) = &trace {
            trace.mark_serialized();
        }
        if let Some(e) = chunk_error {
            return Err(e);
        }
        write_frame(&mut output, &scratch)?;
        output.flush()?;
        if let Some(trace) = trace {
            trace.finish_written();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_paths::problem::json::JsonValue;
    use lcl_paths::problem::{RequestEnvelope, ResponseEnvelope};
    use lcl_paths::{problems, Engine};

    #[test]
    fn stdio_round_trips_frames() {
        let service = Service::new(Engine::builder().parallelism(1).build());
        let classify = RequestEnvelope::new(
            1,
            "classify",
            JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]),
        )
        .to_json_string();
        let input = format!("{classify}\n\n{{\"v\":1,\"id\":2,\"kind\":\"health\"}}\n");
        let mut output = Vec::new();
        serve_stdio(&service, input.as_bytes(), &mut output).unwrap();

        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "blank frame produces no reply");
        let first = ResponseEnvelope::from_json_str(lines[0]).unwrap();
        assert_eq!(first.id, Some(1));
        assert!(first.is_ok());
        let second = ResponseEnvelope::from_json_str(lines[1]).unwrap();
        assert_eq!(second.id, Some(2));
        assert!(second.is_ok());
    }

    #[test]
    fn stdio_spliced_replies_match_fresh_serialization() {
        let service = Service::new(Engine::builder().parallelism(1).build());
        let classify = |id: i64| {
            RequestEnvelope::new(
                id,
                "classify",
                JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]),
            )
            .to_json_string()
        };
        // Frame 1 is the cold miss, frame 2 attaches the reply bytes, frame
        // 3 is a pure bytes hit — all three must print identically modulo
        // the id.
        let input = format!("{}\n{}\n{}\n", classify(1), classify(2), classify(3));
        let mut output = Vec::new();
        serve_stdio(&service, input.as_bytes(), &mut output).unwrap();

        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1].replace("\"id\":2", "\"id\":1"),
            lines[0],
            "spliced reply must differ from the fresh one only in the id"
        );
        assert_eq!(lines[2].replace("\"id\":3", "\"id\":1"), lines[0]);
        assert_eq!(service.metrics().spliced_frames(), 2);
        assert_eq!(service.engine().cache_stats().bytes_hits, 1);
        assert_eq!(service.engine().cache_stats().bytes_misses, 1);
    }
}
