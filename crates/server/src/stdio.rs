//! The stdio front-end: the same NDJSON frames over any reader/writer pair.
//!
//! This is the `lcl-serve --stdio` pipe mode
//! (`echo '{"v":1,…}' | lcl-serve --stdio`), and doubles as the in-memory
//! harness the protocol-robustness tests drive with `io::Cursor`.

use crate::frame::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
use crate::service::Service;
use std::io::{self, BufRead, Write};

/// Serves frames from `input` until EOF, writing one terminal response line
/// per frame to `output` — preceded by its intermediate chunk frames for
/// `solve_stream`, each flushed as it is produced, so a pipe consumer sees
/// labeling progress with O(chunk) buffering. Oversized and malformed
/// frames get structured error replies; only I/O errors abort the loop.
///
/// # Errors
///
/// Propagates read/write failures on the underlying streams.
pub fn serve_stdio(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    service.metrics().set_backend("stdio");
    loop {
        let (reply, trace) = match read_frame(&mut input, MAX_FRAME_BYTES)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized { discarded, started } => (
                service
                    .reject_oversized_at(discarded, started)
                    .to_json_string(),
                None,
            ),
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                // Chunk frames are written through the sink in order; the
                // first write failure stops the stream and is reported once
                // the terminal envelope comes back.
                let mut chunk_error: Option<io::Error> = None;
                let mut emit = |frame: String| match write_frame(&mut output, &frame)
                    .and_then(|()| output.flush())
                {
                    Ok(()) => true,
                    Err(e) => {
                        chunk_error = Some(e);
                        false
                    }
                };
                let (envelope, trace) = service.handle_line_traced(&line, &mut emit);
                let reply = envelope.into_json_string();
                if let Some(trace) = &trace {
                    trace.mark_serialized();
                }
                if let Some(e) = chunk_error {
                    return Err(e);
                }
                (reply, trace)
            }
        };
        write_frame(&mut output, &reply)?;
        output.flush()?;
        if let Some(trace) = trace {
            trace.finish_written();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_paths::problem::json::JsonValue;
    use lcl_paths::problem::{RequestEnvelope, ResponseEnvelope};
    use lcl_paths::{problems, Engine};

    #[test]
    fn stdio_round_trips_frames() {
        let service = Service::new(Engine::builder().parallelism(1).build());
        let classify = RequestEnvelope::new(
            1,
            "classify",
            JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]),
        )
        .to_json_string();
        let input = format!("{classify}\n\n{{\"v\":1,\"id\":2,\"kind\":\"health\"}}\n");
        let mut output = Vec::new();
        serve_stdio(&service, input.as_bytes(), &mut output).unwrap();

        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "blank frame produces no reply");
        let first = ResponseEnvelope::from_json_str(lines[0]).unwrap();
        assert_eq!(first.id, Some(1));
        assert!(first.is_ok());
        let second = ResponseEnvelope::from_json_str(lines[1]).unwrap();
        assert_eq!(second.id, Some(2));
        assert!(second.is_ok());
    }
}
