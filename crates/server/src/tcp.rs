//! The TCP front-end: a listener with one handler thread per connection and
//! graceful shutdown.
//!
//! Threads are per-*connection*, never per-*request*: each accepted socket
//! gets one long-lived handler that reads NDJSON frames in a loop and writes
//! one response line per frame, while all classification CPU runs on the
//! engine's persistent worker pool. [`ServerHandle::shutdown`] stops the
//! accept loop, unblocks every open connection (by shutting its socket down)
//! and joins all threads before returning.

use crate::frame::{read_frame, Frame, MAX_FRAME_BYTES};
use crate::service::Service;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Shared shutdown/bookkeeping state of a running server.
#[derive(Debug)]
struct ServerState {
    shutdown: AtomicBool,
    /// Clones of every open connection's stream, so shutdown can unblock
    /// readers; handlers deregister themselves on exit (keyed by a
    /// connection sequence number).
    connections: Mutex<HashMap<u64, TcpStream>>,
    connection_seq: AtomicU64,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            connection_seq: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        }
    }
}

/// A bound TCP server, not yet accepting connections.
///
/// Bind to port `0` for an ephemeral loopback port (tests, benches, the
/// `--smoke` mode); then either [`Server::start`] a background accept loop
/// with a graceful-shutdown handle, or [`Server::run`] it on the calling
/// thread (the `lcl-serve --addr` path).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Binds the listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(service: Arc<Service>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The actually bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the accept loop on a background thread and returns the handle
    /// used for graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn and socket-name failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let state = Arc::new(ServerState::new());
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("lcl-server-accept".into())
            .spawn(move || accept_loop(self.listener, self.service, accept_state))?;
        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// Runs the accept loop on the calling thread; returns only once the
    /// process-external side closes the listener (never, in practice — this
    /// is the foreground `lcl-serve --addr` mode, ended by killing the
    /// process).
    pub fn run(self) {
        accept_loop(self.listener, self.service, Arc::new(ServerState::new()));
    }
}

/// Handle to a server started with [`Server::start`]: exposes the bound
/// address and performs graceful shutdown (on [`ServerHandle::shutdown`] or
/// drop).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully shuts the server down: stops accepting, unblocks and joins
    /// every connection handler, joins the accept thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock handlers parked in read().
        for (_, stream) in self
            .state
            .connections
            .lock()
            .expect("connections lock")
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<Service>, state: Arc<ServerState>) {
    for incoming in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else {
            // Transient accept failures (fd exhaustion, aborted handshakes)
            // must not busy-spin the loop at 100% CPU.
            thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        // One small response frame per request: Nagle would stall every
        // round-trip against delayed ACKs.
        let _ = stream.set_nodelay(true);
        let id = state.connection_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state
                .connections
                .lock()
                .expect("connections lock")
                .insert(id, clone);
        }
        // Shutdown may have raced us between accept() and the registration
        // above — it set the flag, then drained a registry we were not in
        // yet. Re-checking after registering closes that window: if the flag
        // is set now, the drain either already closed our entry or never
        // will, so close the socket ourselves and stop.
        if state.shutdown.load(Ordering::SeqCst) {
            if let Some(conn) = state
                .connections
                .lock()
                .expect("connections lock")
                .remove(&id)
            {
                let _ = conn.shutdown(Shutdown::Both);
            }
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        let service = Arc::clone(&service);
        let conn_state = Arc::clone(&state);
        let spawned = thread::Builder::new()
            .name(format!("lcl-server-conn-{id}"))
            .spawn(move || {
                handle_connection(stream, &service);
                // Deregister so the registry does not grow (and hold fds)
                // for the server's whole lifetime.
                conn_state
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&id);
            });
        let mut handlers = state.handlers.lock().expect("handlers lock");
        if let Ok(handle) = spawned {
            handlers.push(handle);
        }
        // Reap finished handlers so the list stays bounded by the number of
        // concurrently open connections.
        let mut live = Vec::with_capacity(handlers.len());
        for handle in handlers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        *handlers = live;
    }
    let handlers: Vec<_> = state
        .handlers
        .lock()
        .expect("handlers lock")
        .drain(..)
        .collect();
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: one response line per request frame, until EOF or
/// an I/O error. Oversized and malformed frames get structured error replies
/// and do NOT close the connection.
fn handle_connection(stream: TcpStream, service: &Service) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(Frame::Oversized { discarded }) => {
                let reply = service.reject_oversized(discarded).to_json_string();
                if write_line(&mut writer, &reply).is_err() {
                    break;
                }
            }
            Ok(Frame::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let reply = service.handle_line_string(&line);
                if write_line(&mut writer, &reply).is_err() {
                    break;
                }
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
