//! The TCP front-end: a listener with pipelined per-connection handlers and
//! graceful shutdown.
//!
//! Threads are per-*connection*, never per-*request*: each accepted socket
//! gets a **reader** (the handler thread itself) and a **writer** thread.
//! The reader parses NDJSON frames and dispatches each request into the
//! engine's worker pool immediately ([`Service::dispatch_line`]), without
//! waiting for the reply — so one connection can keep up to
//! [`Server::max_inflight`] requests in flight at once (an exact bound: the
//! reader takes an `InflightWindow` slot before dispatching, the writer
//! returns it after writing the reply back). Replies may complete out of
//! order on the pool, but the writer resolves them **in request order**
//! through the in-order queue between the two threads, which is the
//! protocol's per-connection ordering guarantee. When the window is full
//! the reader blocks before dispatching the next frame, turning the bound
//! into plain TCP backpressure.
//!
//! [`ServerHandle::shutdown`] stops the accept loop, unblocks every open
//! connection (by shutting its socket down) and joins all threads before
//! returning.

use crate::frame::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
use crate::service::{PendingResponse, Service};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

/// Default bound on a connection's pipelined in-flight window (requests
/// dispatched but not yet written back), tunable per server with
/// [`Server::max_inflight`] / `lcl-serve --max-inflight`.
pub const DEFAULT_MAX_INFLIGHT: usize = 32;

/// Shared shutdown/bookkeeping state of a running server.
#[derive(Debug)]
struct ServerState {
    shutdown: AtomicBool,
    /// Clones of every open connection's stream, so shutdown can unblock
    /// readers; handlers deregister themselves on exit (keyed by a
    /// connection sequence number).
    connections: Mutex<HashMap<u64, TcpStream>>,
    connection_seq: AtomicU64,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            connection_seq: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        }
    }
}

/// A bound TCP server, not yet accepting connections.
///
/// Bind to port `0` for an ephemeral loopback port (tests, benches, the
/// `--smoke` mode); then either [`Server::start`] a background accept loop
/// with a graceful-shutdown handle, or [`Server::run`] it on the calling
/// thread (the `lcl-serve --addr` path).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    max_inflight: usize,
}

impl Server {
    /// Binds the listener. The pipelined in-flight window defaults to
    /// [`DEFAULT_MAX_INFLIGHT`]; see [`Server::max_inflight`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(service: Arc<Service>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            max_inflight: DEFAULT_MAX_INFLIGHT,
        })
    }

    /// Sets the per-connection in-flight window: how many requests one
    /// connection may have dispatched (queued or computing on the pool, or
    /// awaiting their turn at the writer) before its reader stops pulling
    /// frames. Clamped to at least 1; `1` degenerates to lock-step
    /// dispatch. Applies to connections accepted after the call.
    pub fn max_inflight(mut self, window: usize) -> Server {
        self.max_inflight = window.max(1);
        self
    }

    /// The actually bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the accept loop on a background thread and returns the handle
    /// used for graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn and socket-name failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let state = Arc::new(ServerState::new());
        let accept_state = Arc::clone(&state);
        let max_inflight = self.max_inflight;
        let accept = thread::Builder::new()
            .name("lcl-server-accept".into())
            .spawn(move || accept_loop(self.listener, self.service, accept_state, max_inflight))?;
        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// Runs the accept loop on the calling thread; returns only once the
    /// process-external side closes the listener (never, in practice — this
    /// is the foreground `lcl-serve --addr` mode, ended by killing the
    /// process).
    pub fn run(self) {
        accept_loop(
            self.listener,
            self.service,
            Arc::new(ServerState::new()),
            self.max_inflight,
        );
    }
}

/// Handle to a server started with [`Server::start`]: exposes the bound
/// address and performs graceful shutdown (on [`ServerHandle::shutdown`] or
/// drop).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully shuts the server down: stops accepting, unblocks and joins
    /// every connection handler, joins the accept thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock handlers parked in read().
        for (_, stream) in self
            .state
            .connections
            .lock()
            .expect("connections lock")
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    state: Arc<ServerState>,
    max_inflight: usize,
) {
    for incoming in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else {
            // Transient accept failures (fd exhaustion, aborted handshakes)
            // must not busy-spin the loop at 100% CPU.
            thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        // One small response frame per request: Nagle would stall every
        // round-trip against delayed ACKs.
        let _ = stream.set_nodelay(true);
        let id = state.connection_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state
                .connections
                .lock()
                .expect("connections lock")
                .insert(id, clone);
        }
        // Shutdown may have raced us between accept() and the registration
        // above — it set the flag, then drained a registry we were not in
        // yet. Re-checking after registering closes that window: if the flag
        // is set now, the drain either already closed our entry or never
        // will, so close the socket ourselves and stop.
        if state.shutdown.load(Ordering::SeqCst) {
            if let Some(conn) = state
                .connections
                .lock()
                .expect("connections lock")
                .remove(&id)
            {
                let _ = conn.shutdown(Shutdown::Both);
            }
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        let service = Arc::clone(&service);
        let conn_state = Arc::clone(&state);
        let spawned = thread::Builder::new()
            .name(format!("lcl-server-conn-{id}"))
            .spawn(move || {
                handle_connection(stream, &service, id, max_inflight);
                // Deregister so the registry does not grow (and hold fds)
                // for the server's whole lifetime.
                conn_state
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&id);
            });
        let mut handlers = state.handlers.lock().expect("handlers lock");
        if let Ok(handle) = spawned {
            handlers.push(handle);
        }
        // Reap finished handlers so the list stays bounded by the number of
        // concurrently open connections.
        let mut live = Vec::with_capacity(handlers.len());
        for handle in handlers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        *handlers = live;
    }
    let handlers: Vec<_> = state
        .handlers
        .lock()
        .expect("handlers lock")
        .drain(..)
        .collect();
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One entry in a connection's in-order reply queue: the reply itself, or
/// the handle it will arrive on once its pool job finishes.
enum PendingReply {
    /// Produced on the reader thread (only oversized-frame rejections).
    Ready(String),
    /// Parsing/computing on the worker pool.
    Deferred(PendingResponse),
}

/// The exact per-connection in-flight accounting: one slot per request that
/// has been dispatched (or enqueued as a ready reply) and not yet *written*
/// back. The reader acquires before dispatching, the writer releases after
/// writing, so at no instant do more than `capacity` requests of one
/// connection exist anywhere in the pipeline — which is precisely the
/// `--max-inflight` contract in `docs/PROTOCOL.md`, and what makes
/// `--max-inflight 1` genuine lock-step.
struct InflightWindow {
    used: Mutex<WindowState>,
    changed: Condvar,
    capacity: usize,
}

struct WindowState {
    used: usize,
    /// Set by the writer on exit so a reader parked in `acquire` wakes up
    /// instead of waiting on slots that will never be released.
    closed: bool,
}

impl InflightWindow {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(InflightWindow {
            used: Mutex::new(WindowState {
                used: 0,
                closed: false,
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.used
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until a slot is free and takes it; `false` once the window is
    /// closed (the writer is gone, so the connection is over).
    fn acquire(&self) -> bool {
        let mut state = self.lock();
        while state.used >= self.capacity && !state.closed {
            state = self
                .changed
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if state.closed {
            return false;
        }
        state.used += 1;
        true
    }

    /// Returns a slot (the reply was written back).
    fn release(&self) {
        self.lock().used -= 1;
        self.changed.notify_one();
    }

    /// Wakes any parked reader permanently; slots stop mattering.
    fn close(&self) {
        self.lock().closed = true;
        self.changed.notify_all();
    }
}

/// Serves one connection, pipelined: this thread reads frames and
/// dispatches each into the worker pool, a paired writer thread emits the
/// replies in request order, and an [`InflightWindow`] bounds how many
/// requests are dispatched-but-unwritten — when the window is full the
/// reader stops pulling frames, which backpressures the peer through TCP.
/// Oversized and malformed frames get structured error replies and do NOT
/// close the connection; the stream ends on EOF or an I/O error, after the
/// window drains.
fn handle_connection(stream: TcpStream, service: &Arc<Service>, id: u64, max_inflight: usize) {
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let window = InflightWindow::new(max_inflight);
    let (ordered_tx, ordered_rx) = mpsc::channel::<PendingReply>();
    let writer_window = Arc::clone(&window);
    let Ok(writer) = thread::Builder::new()
        .name(format!("lcl-server-conn-{id}-writer"))
        .spawn(move || write_loop(writer_stream, ordered_rx, &writer_window))
    else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(frame) => frame,
        };
        if matches!(&frame, Frame::Line(line) if line.trim().is_empty()) {
            continue;
        }
        // Take a window slot BEFORE dispatching, so the bound holds exactly;
        // blocks while the window is full (that is the backpressure), wakes
        // as the writer drains it, gives up when the writer died.
        if !window.acquire() {
            break;
        }
        let pending = match frame {
            Frame::Oversized { discarded } => {
                PendingReply::Ready(service.reject_oversized(discarded).into_json_string())
            }
            Frame::Line(line) => PendingReply::Deferred(service.dispatch_line(line)),
            Frame::Eof => unreachable!("handled above"),
        };
        // The queue itself is unbounded (the window is the bound) and only
        // disconnects when the writer died; then the read side ends too.
        if ordered_tx.send(pending).is_err() {
            break;
        }
    }
    // Closing the queue lets the writer drain the remaining window and exit;
    // join it so the connection's registry entry outlives all its I/O.
    drop(ordered_tx);
    let _ = writer.join();
}

/// The writer half of a pipelined connection: resolves queued replies in
/// request order, writes one frame each and releases the reply's window
/// slot. Flushes when no further reply is instantly available — so bursts
/// of ready replies coalesce into few syscalls, but an already-written
/// reply is never held back while the next request is still computing.
fn write_loop(
    stream: TcpStream,
    ordered_rx: mpsc::Receiver<PendingReply>,
    window: &InflightWindow,
) {
    let mut writer = BufWriter::new(stream);
    let mut lookahead: Option<PendingReply> = None;
    loop {
        let pending = match lookahead.take() {
            Some(pending) => pending,
            None => match ordered_rx.recv() {
                Ok(pending) => pending,
                Err(_) => break, // reader closed the queue and nothing is left
            },
        };
        let line = match pending {
            PendingReply::Ready(line) => line,
            PendingReply::Deferred(mut pending) => match pending.try_wait() {
                Some(line) => line,
                None => {
                    // The head-of-line job is still computing: everything
                    // written so far must reach the peer before we park.
                    if writer.flush().is_err() {
                        break;
                    }
                    pending.wait()
                }
            },
        };
        if write_frame(&mut writer, &line).is_err() {
            break;
        }
        window.release();
        match ordered_rx.try_recv() {
            Ok(next) => lookahead = Some(next), // more to write: delay the flush
            Err(mpsc::TryRecvError::Empty) => {
                if writer.flush().is_err() {
                    break;
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                break;
            }
        }
    }
    // Final flush for whatever the break left buffered, then wake a reader
    // parked on a full window; with the queue disconnected it exits instead
    // of waiting for slots that will never free.
    let _ = writer.flush();
    window.close();
}
