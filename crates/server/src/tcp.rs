//! The TCP front-end: a listener with two interchangeable connection
//! backends and graceful shutdown.
//!
//! * [`Backend::Reactor`] (Linux, the default there) — a single
//!   epoll-driven event loop serves **every** connection on a fixed thread
//!   budget: one reactor thread plus the engine's worker pool, whatever the
//!   connection count (see [`crate::reactor`](self)'s module docs in
//!   `reactor/mod.rs`).
//! * [`Backend::Threads`] (portable fallback) — each accepted socket gets a
//!   **reader** thread (parses NDJSON frames and dispatches each into the
//!   worker pool immediately) and a **writer** thread (resolves replies in
//!   request order). Two OS threads per connection: fine for hundreds of
//!   sockets, the reason the reactor exists for thousands.
//!
//! Both backends implement the identical `docs/PROTOCOL.md` v1.1 contract:
//! every frame produces one reply, replies arrive in request order per
//! connection, at most [`Server::max_inflight`] requests per connection are
//! dispatched-but-unwritten at once (a full window stops the reads — plain
//! TCP backpressure), and [`Server::max_conns`] bounds how many connections
//! are served at all (the excess is closed at accept).
//!
//! [`ServerHandle::shutdown`] stops the accept loop **via an eventfd
//! wakeup** — not by dialing its own listen address, so shutdown works even
//! when the listener's address is not connectable from here — then unblocks
//! every open connection and joins all threads before returning.

use crate::frame::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
use crate::service::{PendingResponse, Service, StreamFrame};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

#[cfg(target_os = "linux")]
use crate::reactor::{Control, Reactor};

/// Default bound on a connection's pipelined in-flight window (requests
/// dispatched but not yet written back), tunable per server with
/// [`Server::max_inflight`] / `lcl-serve --max-inflight`.
pub const DEFAULT_MAX_INFLIGHT: usize = 32;

/// Environment variable consulted by [`Backend::from_env_or_platform`] (and
/// therefore by [`Server::bind`]'s default): set it to `reactor` or
/// `threads` to pick the connection backend without touching code — this is
/// how CI runs the server test suites once per backend.
pub const BACKEND_ENV_VAR: &str = "LCL_SERVER_BACKEND";

/// How a server multiplexes its connections onto OS threads. The wire
/// protocol is identical either way; see the module docs for the trade-off.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Backend {
    /// One epoll event loop for all connections (Linux only). Thread budget:
    /// 1 reactor thread + the worker pool, independent of connection count.
    Reactor,
    /// Two threads (reader + writer) per connection. Portable, but caps the
    /// practical connection count at hundreds.
    Threads,
}

impl Backend {
    /// The stable name used by `--backend` and [`BACKEND_ENV_VAR`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reactor => "reactor",
            Backend::Threads => "threads",
        }
    }

    /// Parses a [`Backend::name`].
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "reactor" => Some(Backend::Reactor),
            "threads" => Some(Backend::Threads),
            _ => None,
        }
    }

    /// Whether this backend can run on the current platform.
    pub fn available(self) -> bool {
        match self {
            Backend::Reactor => cfg!(target_os = "linux"),
            Backend::Threads => true,
        }
    }

    /// The platform default: the reactor where epoll exists (Linux), the
    /// thread backend everywhere else.
    pub fn platform_default() -> Backend {
        if Backend::Reactor.available() {
            Backend::Reactor
        } else {
            Backend::Threads
        }
    }

    /// The default backend honoring the [`BACKEND_ENV_VAR`] override when it
    /// names an available backend; [`Backend::platform_default`] otherwise.
    pub fn from_env_or_platform() -> Backend {
        if let Ok(name) = std::env::var(BACKEND_ENV_VAR) {
            if let Some(backend) = Backend::from_name(name.trim()) {
                if backend.available() {
                    return backend;
                }
            }
        }
        Backend::platform_default()
    }

    /// This backend when available on the current platform, the portable
    /// thread backend otherwise.
    fn resolve(self) -> Backend {
        if self.available() {
            self
        } else {
            Backend::Threads
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The portable stand-in for [`crate::reactor::Control`] on platforms
/// without eventfd: the shutdown flag alone. The nonblocking accept loop
/// polls it on a short interval instead of being woken.
#[cfg(not(target_os = "linux"))]
#[derive(Debug)]
pub(crate) struct Control {
    shutdown: std::sync::atomic::AtomicBool,
}

#[cfg(not(target_os = "linux"))]
impl Control {
    pub(crate) fn new() -> io::Result<Arc<Control>> {
        Ok(Arc::new(Control {
            shutdown: std::sync::atomic::AtomicBool::new(false),
        }))
    }

    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Bookkeeping of the thread backend: open-connection registry (so shutdown
/// can unblock parked readers) and handler join handles.
#[derive(Debug)]
struct ServerState {
    /// Clones of every open connection's stream, so shutdown can unblock
    /// readers; handlers deregister themselves on exit (keyed by a
    /// connection sequence number).
    connections: Mutex<HashMap<u64, TcpStream>>,
    connection_seq: AtomicU64,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// *This server's* open-connection count, the `max_conns` basis — the
    /// `ServerMetrics` gauge would conflate several servers sharing one
    /// `Service` (the reactor likewise counts only its own connections).
    open: AtomicU64,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            connections: Mutex::new(HashMap::new()),
            connection_seq: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
            open: AtomicU64::new(0),
        }
    }
}

/// A bound TCP server, not yet accepting connections.
///
/// Bind to port `0` for an ephemeral loopback port (tests, benches, the
/// `--smoke` mode); then either [`Server::start`] a background accept loop
/// with a graceful-shutdown handle, or [`Server::run`] it on the calling
/// thread (the `lcl-serve --addr` path).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    max_inflight: usize,
    max_conns: usize,
    backend: Backend,
}

impl Server {
    /// Binds the listener. The pipelined in-flight window defaults to
    /// [`DEFAULT_MAX_INFLIGHT`], the connection count is unbounded
    /// ([`Server::max_conns`]) and the backend defaults to
    /// [`Backend::from_env_or_platform`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(service: Arc<Service>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            max_conns: usize::MAX,
            backend: Backend::from_env_or_platform(),
        })
    }

    /// Sets the per-connection in-flight window: how many requests one
    /// connection may have dispatched (queued or computing on the pool, or
    /// awaiting their turn at the writer) before its reads stop. Clamped to
    /// at least 1; `1` degenerates to lock-step dispatch. Applies to
    /// connections accepted after the call.
    pub fn max_inflight(mut self, window: usize) -> Server {
        self.max_inflight = window.max(1);
        self
    }

    /// Caps how many connections are served simultaneously: a connection
    /// accepted past the cap is closed immediately (reject-with-close) and
    /// counted under `server.connections.rejected` in the `stats` reply.
    /// This bounds the server's fd usage — and, on the thread backend, its
    /// thread usage — under connection floods. Clamped to at least 1.
    pub fn max_conns(mut self, cap: usize) -> Server {
        self.max_conns = cap.max(1);
        self
    }

    /// Selects the connection backend. [`Backend::Reactor`] on a platform
    /// without epoll falls back to [`Backend::Threads`] at start.
    pub fn backend(mut self, backend: Backend) -> Server {
        self.backend = backend;
        self
    }

    /// The actually bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the serving loop (reactor, or thread-backend accept loop) on a
    /// background thread and returns the handle used for graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn, socket-name and (reactor) epoll/eventfd
    /// setup failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.service
            .metrics()
            .set_backend(self.backend.resolve().name());
        let control = Control::new()?;
        #[cfg(target_os = "linux")]
        if self.backend.resolve() == Backend::Reactor {
            let reactor = Reactor::new(
                self.listener,
                self.service,
                Arc::clone(&control),
                self.max_inflight,
                self.max_conns,
            )?;
            let main = thread::Builder::new()
                .name("lcl-server-reactor".into())
                .spawn(move || {
                    // A mid-service epoll failure is fatal and cannot be
                    // surfaced through the handle; at least say so.
                    if let Err(e) = reactor.run() {
                        eprintln!("lcl-server: reactor event loop failed: {e}");
                    }
                })?;
            return Ok(ServerHandle {
                addr,
                control,
                main: Some(main),
                thread_state: None,
            });
        }
        // Nonblocking accepts + an explicit wait let shutdown interrupt the
        // loop without the old trick of dialing the listen address. Done
        // here so a failure surfaces to the caller instead of producing a
        // server that looks started but serves nothing.
        self.listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState::new());
        let accept_state = Arc::clone(&state);
        let accept_control = Arc::clone(&control);
        let max_inflight = self.max_inflight;
        let max_conns = self.max_conns;
        let main = thread::Builder::new()
            .name("lcl-server-accept".into())
            .spawn(move || {
                accept_loop(
                    self.listener,
                    self.service,
                    accept_state,
                    accept_control,
                    max_inflight,
                    max_conns,
                )
            })?;
        Ok(ServerHandle {
            addr,
            control,
            main: Some(main),
            thread_state: Some(state),
        })
    }

    /// Runs the serving loop on the calling thread; returns only on a fatal
    /// setup error (this is the foreground `lcl-serve --addr` mode, ended by
    /// killing the process).
    ///
    /// # Errors
    ///
    /// Propagates listener-setup and (reactor) epoll/eventfd failures.
    pub fn run(self) -> io::Result<()> {
        self.service
            .metrics()
            .set_backend(self.backend.resolve().name());
        let control = Control::new()?;
        #[cfg(target_os = "linux")]
        if self.backend.resolve() == Backend::Reactor {
            return Reactor::new(
                self.listener,
                self.service,
                control,
                self.max_inflight,
                self.max_conns,
            )?
            .run();
        }
        self.listener.set_nonblocking(true)?;
        accept_loop(
            self.listener,
            self.service,
            Arc::new(ServerState::new()),
            control,
            self.max_inflight,
            self.max_conns,
        );
        Ok(())
    }
}

/// Handle to a server started with [`Server::start`]: exposes the bound
/// address and performs graceful shutdown (on [`ServerHandle::shutdown`] or
/// drop).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    control: Arc<Control>,
    main: Option<thread::JoinHandle<()>>,
    /// Thread backend only: the open-connection registry to unblock.
    thread_state: Option<Arc<ServerState>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully shuts the server down: stops accepting, unblocks and joins
    /// every connection handler, joins the serving thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(main) = self.main.take() else {
            return;
        };
        // Sets the flag and wakes the loop through the eventfd (Linux) or
        // the accept poll interval (elsewhere) — never by connecting to the
        // listen address.
        self.control.trigger_shutdown();
        // Thread backend: unblock handlers parked in read().
        if let Some(state) = &self.thread_state {
            for (_, stream) in state.connections.lock().expect("connections lock").drain() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let _ = main.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Parks the thread-backend accept loop until the listener is ready (or a
/// shutdown wakeup arrives). On Linux this is an epoll wait on the listener
/// and the control eventfd; elsewhere it degrades to a short sleep, which
/// bounds both accept latency and shutdown latency at the poll interval.
#[cfg(target_os = "linux")]
struct AcceptWaiter {
    epoll: Option<crate::reactor::AcceptPoll>,
}

#[cfg(target_os = "linux")]
impl AcceptWaiter {
    fn new(listener: &TcpListener, control: &Control) -> AcceptWaiter {
        AcceptWaiter {
            epoll: crate::reactor::AcceptPoll::new(listener, control).ok(),
        }
    }

    fn wait(&mut self) {
        match &mut self.epoll {
            Some(poll) => poll.wait(),
            None => thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[cfg(not(target_os = "linux"))]
struct AcceptWaiter;

#[cfg(not(target_os = "linux"))]
impl AcceptWaiter {
    fn new(_listener: &TcpListener, _control: &Control) -> AcceptWaiter {
        AcceptWaiter
    }

    fn wait(&mut self) {
        thread::sleep(Duration::from_millis(10));
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    state: Arc<ServerState>,
    control: Arc<Control>,
    max_inflight: usize,
    max_conns: usize,
) {
    // The caller already flipped the listener nonblocking; accepts plus an
    // explicit wait let shutdown interrupt the loop without the old trick
    // of dialing the listen address.
    let mut waiter = AcceptWaiter::new(&listener, &control);
    loop {
        if control.shutdown_requested() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                waiter.wait();
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failures (fd exhaustion, aborted
                // handshakes) must not busy-spin the loop at 100% CPU.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if state.open.load(Ordering::Relaxed) >= max_conns as u64 {
            service.metrics().connection_rejected();
            drop(stream); // reject-with-close
            continue;
        }
        // The accepted socket must block again: the reader/writer threads
        // park on it by design.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // One small response frame per request: Nagle would stall every
        // round-trip against delayed ACKs.
        let _ = stream.set_nodelay(true);
        let id = state.connection_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state
                .connections
                .lock()
                .expect("connections lock")
                .insert(id, clone);
        }
        // Shutdown may have raced us between accept() and the registration
        // above — it set the flag, then drained a registry we were not in
        // yet. Re-checking after registering closes that window: if the flag
        // is set now, the drain either already closed our entry or never
        // will, so close the socket ourselves and stop.
        if control.shutdown_requested() {
            if let Some(conn) = state
                .connections
                .lock()
                .expect("connections lock")
                .remove(&id)
            {
                let _ = conn.shutdown(Shutdown::Both);
            }
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        service.metrics().connection_opened();
        state.open.fetch_add(1, Ordering::Relaxed);
        let conn_service = Arc::clone(&service);
        let conn_state = Arc::clone(&state);
        let spawned = thread::Builder::new()
            .name(format!("lcl-server-conn-{id}"))
            .spawn(move || {
                handle_connection(stream, &conn_service, id, max_inflight);
                // Deregister so the registry does not grow (and hold fds)
                // for the server's whole lifetime.
                conn_state
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&id);
                conn_state.open.fetch_sub(1, Ordering::Relaxed);
                conn_service.metrics().connection_closed();
            });
        let mut handlers = state.handlers.lock().expect("handlers lock");
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(_) => {
                state.open.fetch_sub(1, Ordering::Relaxed);
                service.metrics().connection_closed();
            }
        }
        // Reap finished handlers so the list stays bounded by the number of
        // concurrently open connections.
        let mut live = Vec::with_capacity(handlers.len());
        for handle in handlers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        *handlers = live;
    }
    let handlers: Vec<_> = state
        .handlers
        .lock()
        .expect("handlers lock")
        .drain(..)
        .collect();
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One entry in a connection's in-order reply queue: the reply itself, or
/// the handle it will arrive on once its pool job finishes. Shared by both
/// backends — the thread backend moves these through a channel to the
/// writer thread, the reactor keeps them in the connection's state machine.
pub(crate) enum PendingReply {
    /// Produced without a pool job (only oversized-frame rejections).
    Ready(String),
    /// Parsing/computing on the worker pool.
    Deferred(PendingResponse),
}

/// The exact per-connection in-flight accounting: one slot per request that
/// has been dispatched (or enqueued as a ready reply) and not yet *written*
/// back. The reader acquires before dispatching, the writer releases after
/// writing, so at no instant do more than `capacity` requests of one
/// connection exist anywhere in the pipeline — which is precisely the
/// `--max-inflight` contract in `docs/PROTOCOL.md`, and what makes
/// `--max-inflight 1` genuine lock-step.
struct InflightWindow {
    used: Mutex<WindowState>,
    changed: Condvar,
    capacity: usize,
}

struct WindowState {
    used: usize,
    /// Set by the writer on exit so a reader parked in `acquire` wakes up
    /// instead of waiting on slots that will never be released.
    closed: bool,
}

impl InflightWindow {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(InflightWindow {
            used: Mutex::new(WindowState {
                used: 0,
                closed: false,
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.used
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until a slot is free and takes it; `false` once the window is
    /// closed (the writer is gone, so the connection is over).
    fn acquire(&self) -> bool {
        let mut state = self.lock();
        while state.used >= self.capacity && !state.closed {
            state = self
                .changed
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if state.closed {
            return false;
        }
        state.used += 1;
        true
    }

    /// Returns a slot (the reply was written back).
    fn release(&self) {
        self.lock().used -= 1;
        self.changed.notify_one();
    }

    /// Wakes any parked reader permanently; slots stop mattering.
    fn close(&self) {
        self.lock().closed = true;
        self.changed.notify_all();
    }
}

/// Serves one connection, pipelined: this thread reads frames and
/// dispatches each into the worker pool, a paired writer thread emits the
/// replies in request order, and an [`InflightWindow`] bounds how many
/// requests are dispatched-but-unwritten — when the window is full the
/// reader stops pulling frames, which backpressures the peer through TCP.
/// Oversized and malformed frames get structured error replies and do NOT
/// close the connection; the stream ends on EOF or an I/O error, after the
/// window drains.
fn handle_connection(stream: TcpStream, service: &Arc<Service>, id: u64, max_inflight: usize) {
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let peer = stream.peer_addr().ok().map(|addr| addr.ip());
    let window = InflightWindow::new(max_inflight);
    let (ordered_tx, ordered_rx) = mpsc::channel::<PendingReply>();
    let writer_window = Arc::clone(&window);
    let Ok(writer) = thread::Builder::new()
        .name(format!("lcl-server-conn-{id}-writer"))
        .spawn(move || write_loop(writer_stream, ordered_rx, &writer_window))
    else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(frame) => frame,
        };
        if matches!(&frame, Frame::Line(line) if line.trim().is_empty()) {
            continue;
        }
        // Take a window slot BEFORE dispatching, so the bound holds exactly;
        // blocks while the window is full (that is the backpressure), wakes
        // as the writer drains it, gives up when the writer died.
        if !window.acquire() {
            break;
        }
        let pending = match frame {
            Frame::Oversized { discarded, started } => PendingReply::Ready(
                service
                    .reject_oversized_at(discarded, started)
                    .into_json_string(),
            ),
            Frame::Line(line) => PendingReply::Deferred(service.dispatch_line_from(line, peer)),
            Frame::Eof => unreachable!("handled above"),
        };
        // The queue itself is unbounded (the window is the bound) and only
        // disconnects when the writer died; then the read side ends too.
        if ordered_tx.send(pending).is_err() {
            break;
        }
    }
    // Closing the queue lets the writer drain the remaining window and exit;
    // join it so the connection's registry entry outlives all its I/O.
    drop(ordered_tx);
    let _ = writer.join();
}

/// The writer half of a pipelined connection: resolves queued replies in
/// request order, writes one frame each and releases the reply's window
/// slot. Flushes when no further reply is instantly available — so bursts
/// of ready replies coalesce into few syscalls, but an already-written
/// reply is never held back while the next request is still computing.
///
/// A deferred reply may be a *stream*: its handle yields zero or more chunk
/// frames before the terminal envelope. Chunks are written and flushed as
/// they arrive — the peer sees labeling progress while the job is still
/// producing — and the window slot is released only at the terminal frame,
/// so a streaming request occupies exactly one in-flight slot end to end.
fn write_loop(
    stream: TcpStream,
    ordered_rx: mpsc::Receiver<PendingReply>,
    window: &InflightWindow,
) {
    let mut writer = BufWriter::new(stream);
    let mut lookahead: Option<PendingReply> = None;
    'conn: loop {
        let pending = match lookahead.take() {
            Some(pending) => pending,
            None => match ordered_rx.recv() {
                Ok(pending) => pending,
                Err(_) => break, // reader closed the queue and nothing is left
            },
        };
        let (terminal, trace) = match pending {
            PendingReply::Ready(line) => (StreamFrame::Final(line), None),
            PendingReply::Deferred(mut pending) => loop {
                let frame = match pending.try_frame() {
                    Some(frame) => frame,
                    None => {
                        // The head-of-line job is still computing: everything
                        // written so far must reach the peer before we park.
                        if writer.flush().is_err() {
                            break 'conn;
                        }
                        pending.wait_frame()
                    }
                };
                match frame {
                    StreamFrame::Chunk(line) => {
                        // A write failure drops the handle, which closes the
                        // frame channel and aborts the producing job.
                        if write_frame(&mut writer, &line).is_err() || writer.flush().is_err() {
                            break 'conn;
                        }
                    }
                    terminal => break (terminal, pending.take_trace()),
                }
            },
        };
        // A spliced reply streams its pieces (head, id, cached payload
        // bytes, tail) straight into the buffered writer — no per-frame
        // `String` is ever assembled on this thread.
        let wrote = match &terminal {
            StreamFrame::Final(line) => write_frame(&mut writer, line),
            StreamFrame::Spliced(spliced) => spliced.write_to(&mut writer),
            StreamFrame::Chunk(_) => unreachable!("chunks are written in the resolve loop"),
        };
        if wrote.is_err() {
            break;
        }
        // The write stage ends when the terminal frame enters the socket
        // buffer; the coalescing flush below is batching policy, not part
        // of this request's latency.
        if let Some(trace) = trace {
            trace.finish_written();
        }
        window.release();
        match ordered_rx.try_recv() {
            Ok(next) => lookahead = Some(next), // more to write: delay the flush
            Err(mpsc::TryRecvError::Empty) => {
                if writer.flush().is_err() {
                    break;
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                break;
            }
        }
    }
    // Final flush for whatever the break left buffered, then wake a reader
    // parked on a full window; with the queue disconnected it exits instead
    // of waiting for slots that will never free.
    let _ = writer.flush();
    window.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip_and_platform_default_is_available() {
        for backend in [Backend::Reactor, Backend::Threads] {
            assert_eq!(Backend::from_name(backend.name()), Some(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!(Backend::from_name("neither"), None);
        assert!(Backend::platform_default().available());
        assert!(Backend::Threads.resolve().available());
        assert!(Backend::Reactor.resolve().available());
        #[cfg(target_os = "linux")]
        assert_eq!(Backend::platform_default(), Backend::Reactor);
    }
}
