//! Id-splicing for the zero-serialization classify fast lane.
//!
//! A hot `classify` hit serves pre-serialized reply-payload bytes cached
//! next to the verdict ([`Engine::cached_reply`]); the request id echo is
//! the only byte that differs between two hits on the same problem. This
//! module owns that byte-level decomposition of the success envelope,
//!
//! ```text
//! {"id":<id>,"kind":"classify","ok":true,"payload":<cached bytes>}
//! ```
//!
//! so the backends can assemble a reply frame from three constant pieces
//! plus the shared payload, without building a [`JsonValue`] tree or
//! serializing anything: the thread backend streams the pieces straight
//! into its buffered writer, the reactor enqueues the shared payload as a
//! borrowed output segment for its vectored writes. The decomposition is
//! pinned byte-identical to the canonical serializer
//! ([`ResponseEnvelope::ok`]) by the tests below — splicing is invisible on
//! the wire.
//!
//! [`Engine::cached_reply`]: lcl_paths::Engine::cached_reply
//! [`JsonValue`]: lcl_paths::problem::json::JsonValue
//! [`ResponseEnvelope::ok`]: lcl_paths::problem::ResponseEnvelope::ok

use std::io::{self, Write};
use std::sync::Arc;

/// The bytes of a success envelope before the id: `{"id":`.
const HEAD: &[u8] = b"{\"id\":";

/// The bytes between the id and the payload. The canonical serializer
/// prints object keys sorted, so for a success envelope the id is always
/// followed by exactly `,"kind":"classify","ok":true,"payload":`.
const MID: &[u8] = b",\"kind\":\"classify\",\"ok\":true,\"payload\":";

/// The bytes after the payload, newline terminator included: the envelope's
/// closing brace plus the NDJSON frame separator.
pub(crate) const FRAME_TAIL: &[u8] = b"}\n";

/// A `classify` reply assembled from cached payload bytes plus the request
/// id — the terminal frame of the zero-serialization fast lane, carried by
/// [`StreamFrame::Spliced`](crate::StreamFrame::Spliced).
///
/// The payload bytes are shared (`Arc<[u8]>`) with the engine's reply-bytes
/// cache; materializing the frame is an id-format plus a memcpy (or, on the
/// reactor backend, no copy at all — the payload is written from the cache
/// entry by `writev`). [`SplicedReply::to_frame_string`] produces the exact
/// line the canonical serializer would have produced.
#[derive(Clone, Debug)]
pub struct SplicedReply {
    id: i64,
    payload: Arc<[u8]>,
}

impl SplicedReply {
    /// Wraps cached payload bytes for the given request id.
    pub(crate) fn new(id: i64, payload: Arc<[u8]>) -> Self {
        SplicedReply { id, payload }
    }

    /// The shared payload bytes (the serialized `{"verdict":…}` document).
    pub(crate) fn payload(&self) -> &Arc<[u8]> {
        &self.payload
    }

    /// Everything before the payload — `{"id":<id>,"kind":…,"payload":` —
    /// as one owned buffer. The reactor pairs this with a borrowed payload
    /// segment and [`FRAME_TAIL`].
    pub(crate) fn head_bytes(&self) -> Vec<u8> {
        // HEAD + up to 20 id bytes ("-9223372036854775808") + MID.
        let mut head = Vec::with_capacity(HEAD.len() + 20 + MID.len());
        head.extend_from_slice(HEAD);
        write!(head, "{}", self.id).expect("writing to a Vec cannot fail");
        head.extend_from_slice(MID);
        head
    }

    /// Writes the full wire frame (newline included) into `w`. This is the
    /// thread backend's path: the pieces stream into the connection's
    /// buffered writer with no per-frame `String`.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O error, exactly like writing a
    /// pre-serialized line would.
    pub(crate) fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(HEAD)?;
        write!(w, "{}", self.id)?;
        w.write_all(MID)?;
        w.write_all(&self.payload)?;
        w.write_all(FRAME_TAIL)
    }

    /// Materializes the reply as the serialized envelope line (without the
    /// newline terminator), byte-identical to what
    /// [`ResponseEnvelope::ok`](lcl_paths::problem::ResponseEnvelope::ok)
    /// would have printed. For embedders consuming
    /// [`PendingResponse::wait`](crate::PendingResponse::wait) and tests;
    /// the connection backends write the pieces directly instead.
    pub fn to_frame_string(&self) -> String {
        let mut out = self.head_bytes();
        out.extend_from_slice(&self.payload);
        out.push(b'}');
        String::from_utf8(out).expect("cached payload is serialized JSON, hence UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_paths::problem::json::JsonValue;
    use lcl_paths::problem::ResponseEnvelope;

    fn payload() -> JsonValue {
        JsonValue::object([(
            "verdict",
            JsonValue::object([
                ("complexity", JsonValue::Str("log-star".to_string())),
                ("problem_name", JsonValue::Str("3-coloring".to_string())),
            ]),
        )])
    }

    fn spliced(id: i64) -> SplicedReply {
        SplicedReply::new(id, payload().to_json_string().into_bytes().into())
    }

    fn canonical(id: i64) -> String {
        ResponseEnvelope::ok(id, "classify", payload()).into_json_string()
    }

    #[test]
    fn spliced_frames_match_the_canonical_serializer_for_extreme_ids() {
        for id in [0, 7, -1, 42, i64::MAX, i64::MIN] {
            assert_eq!(spliced(id).to_frame_string(), canonical(id), "id {id}");
        }
    }

    #[test]
    fn write_to_streams_the_same_bytes_plus_the_newline() {
        for id in [3, -9000, i64::MAX] {
            let mut wire = Vec::new();
            spliced(id).write_to(&mut wire).unwrap();
            assert_eq!(wire, format!("{}\n", canonical(id)).into_bytes());
        }
    }

    #[test]
    fn head_payload_tail_segments_concatenate_to_the_wire_frame() {
        let reply = spliced(1234);
        let mut wire = reply.head_bytes();
        wire.extend_from_slice(reply.payload());
        wire.extend_from_slice(FRAME_TAIL);
        assert_eq!(wire, format!("{}\n", canonical(1234)).into_bytes());
    }
}
